//! The `eden-lint` binary: scans the workspace and reports invariant
//! violations. Exit code 0 when every finding is suppressed (or none
//! exist), 1 when unsuppressed findings remain, 2 on usage/IO errors.
//!
//! ```text
//! cargo run -p eden-lint                  # human-readable report
//! cargo run -p eden-lint -- --json        # machine-readable (ci.sh archives it)
//! cargo run -p eden-lint -- --root DIR    # scan another workspace root
//! cargo run -p eden-lint -- --dot FILE    # also write the lock graph as DOT
//! cargo run -p eden-lint -- --explain R   # a rule's rationale + escape hatch
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use eden_lint::{analyze_workspace, Rule};

fn main() -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut dot: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("eden-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--dot" => match args.next() {
                Some(path) => dot = Some(PathBuf::from(path)),
                None => {
                    eprintln!("eden-lint: --dot requires an output path");
                    return ExitCode::from(2);
                }
            },
            "--explain" => {
                let Some(name) = args.next() else {
                    eprintln!(
                        "eden-lint: --explain requires a rule name ({})",
                        rule_list()
                    );
                    return ExitCode::from(2);
                };
                let Some(rule) = Rule::from_name(&name) else {
                    eprintln!("eden-lint: unknown rule `{name}` (rules: {})", rule_list());
                    return ExitCode::from(2);
                };
                println!("{}\n\n{}", rule.name(), rule.explanation());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                eprintln!("usage: eden-lint [--json] [--root DIR] [--dot FILE] [--explain RULE]");
                eprintln!("rules: {}", rule_list());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("eden-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let analysis = match analyze_workspace(&root) {
        Ok(analysis) => analysis,
        Err(e) => {
            eprintln!("eden-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let report = &analysis.report;

    if let Some(path) = dot {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, &analysis.lock_dot) {
            eprintln!("eden-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if json {
        print!("{}", report.to_json());
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        println!(
            "eden-lint: {} file(s), {} finding(s) ({} suppressed)",
            report.files_scanned,
            report.findings.len(),
            report.findings.iter().filter(|f| f.suppressed).count()
        );
        for (rule, (open, suppressed)) in report.counts() {
            println!("  {rule}: {open} unsuppressed, {suppressed} suppressed");
        }
    }

    if report.unsuppressed().count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn rule_list() -> String {
    Rule::ALL
        .iter()
        .map(|r| r.name())
        .collect::<Vec<_>>()
        .join(", ")
}
