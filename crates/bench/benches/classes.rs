//! E2 macro-benchmark: batch completion under different invocation-class
//! limits (each iteration runs the full 16-client batch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eden_bench::exp_e2_classes::throughput_for_limit;

fn bench_class_limits(c: &mut Criterion) {
    let mut group = c.benchmark_group("class_limit_batch");
    for limit in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(limit), &limit, |b, &limit| {
            b.iter(|| throughput_for_limit(limit))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_class_limits
}
criterion_main!(benches);
