/root/repo/target/debug/deps/model-e745216381dcae40.d: crates/core/tests/model.rs Cargo.toml

/root/repo/target/debug/deps/libmodel-e745216381dcae40.rmeta: crates/core/tests/model.rs Cargo.toml

crates/core/tests/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
