//! Figure 1, executable: node machines plus a file-server node on one
//! local network.
//!
//! §3: "By late 1981 we expect to have five fully-configured prototype
//! node machines in operation, one of which will be configured with a
//! 300 megabyte disk to act as a file server. The five nodes will be
//! interconnected by an Ethernet."

use eden::apps::{with_apps, CounterType};
use eden::efs::Efs;
use eden::kernel::Cluster;
use eden::transport::{LatencyModel, MeshOptions};
use eden::wire::Value;

/// The 1981 prototype configuration: five nodes, LAN-shaped latency,
/// disk-backed checkpoints on every node (node 4 acts as file server).
fn prototype_cluster(dir: &std::path::Path) -> Cluster {
    with_apps(
        Cluster::builder()
            .nodes(5)
            .mesh(MeshOptions {
                latency: LatencyModel::lan_10mbps(),
                loss_probability: 0.0,
                seed: 1981,
            })
            .disk_stores(dir),
    )
    .build()
}

#[test]
fn five_node_prototype_with_file_server() {
    let dir = std::env::temp_dir().join(format!("eden-fig1-{}", std::process::id()));
    let cluster = prototype_cluster(&dir);

    // The file server (node 4) hosts EFS; every workstation mounts it.
    let efs = Efs::format(cluster.node(4).clone()).unwrap();
    for i in 0..4 {
        let ws = Efs::mount(cluster.node(i).clone(), efs.root());
        ws.write(
            &format!("/home/user{i}/hello"),
            format!("from node {i}").as_bytes(),
        )
        .unwrap();
    }
    // Everyone sees everyone's files.
    for reader in 0..4 {
        let ws = Efs::mount(cluster.node(reader).clone(), efs.root());
        for writer in 0..4 {
            let data = ws.read(&format!("/home/user{writer}/hello")).unwrap();
            assert_eq!(&data[..], format!("from node {writer}").as_bytes());
        }
    }

    // A ring of cross-node invocations: object i lives on node i and is
    // invoked by node (i+1) % 5 — every node both serves and requests.
    let caps: Vec<_> = (0..5)
        .map(|i| {
            cluster
                .node(i)
                .create_object(CounterType::NAME, &[Value::I64(0)])
                .unwrap()
        })
        .collect();
    for round in 1..=3i64 {
        for (i, cap) in caps.iter().enumerate() {
            let invoker = (i + 1) % 5;
            let out = cluster
                .node(invoker)
                .invoke(*cap, "add", &[Value::I64(1)])
                .unwrap();
            assert_eq!(out, vec![Value::I64(round)]);
        }
    }
    for node in cluster.nodes() {
        let m = node.metrics();
        assert!(
            m.remote_invocations_served >= 3,
            "{:?} must have served the ring",
            node.node_id()
        );
        assert!(
            m.remote_invocations_sent >= 3,
            "{:?} must have requested around the ring",
            node.node_id()
        );
    }

    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_server_state_survives_reboot() {
    // The disk is the point of the file-server node: kill the whole
    // cluster, boot a fresh one over the same logs, and the filesystem
    // is still there.
    let dir = std::env::temp_dir().join(format!("eden-fig1-reboot-{}", std::process::id()));
    let root;
    {
        let cluster = prototype_cluster(&dir);
        let efs = Efs::format(cluster.node(4).clone()).unwrap();
        efs.write("/durable/data", b"survives reboot").unwrap();
        root = efs.root();
        cluster.shutdown();
    }
    {
        let cluster = prototype_cluster(&dir);
        let efs = Efs::mount(cluster.node(0).clone(), root);
        assert_eq!(&efs.read("/durable/data").unwrap()[..], b"survives reboot");
        cluster.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
}
