/root/repo/target/debug/examples/mobile_calendar-6b33a4c516a9b531.d: examples/mobile_calendar.rs Cargo.toml

/root/repo/target/debug/examples/libmobile_calendar-6b33a4c516a9b531.rmeta: examples/mobile_calendar.rs Cargo.toml

examples/mobile_calendar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
