//! CRC-32 (IEEE 802.3) for checkpoint record integrity.
//!
//! The disk store guards every record with the same polynomial the
//! Ethernet frame check sequence uses (0x04C11DB7, reflected 0xEDB88320) —
//! fitting, given Eden's network (§3). Implemented locally to keep the
//! dependency set minimal; verified against published test vectors.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// Computes the CRC-32 of `data`.
///
/// # Examples
///
/// ```
/// assert_eq!(eden_store::crc::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = u32::MAX;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// An incremental CRC-32 hasher for multi-part records.
#[derive(Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh computation.
    pub fn new() -> Self {
        Crc32 { state: u32::MAX }
    }

    /// Feeds `data` into the computation.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = (self.state >> 8) ^ t[((self.state ^ b as u32) & 0xff) as usize];
        }
    }

    /// Finishes and returns the checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"some checkpoint record payload";
        let mut h = Crc32::new();
        h.update(&data[..7]);
        h.update(&data[7..]);
        assert_eq!(h.finish(), crc32(data));
    }

    proptest! {
        #[test]
        fn any_split_matches_one_shot(data in proptest::collection::vec(0u8.., 0..512), split in 0usize..512) {
            let split = split.min(data.len());
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finish(), crc32(&data));
        }

        #[test]
        fn single_bit_flips_change_the_crc(data in proptest::collection::vec(0u8.., 1..256), bit in 0usize..2048) {
            let mut flipped = data.clone();
            let bit = bit % (data.len() * 8);
            flipped[bit / 8] ^= 1 << (bit % 8);
            prop_assert_ne!(crc32(&flipped), crc32(&data));
        }
    }
}
