/root/repo/target/debug/deps/failover-b91e01f750dbc6ab.d: tests/failover.rs Cargo.toml

/root/repo/target/debug/deps/libfailover-b91e01f750dbc6ab.rmeta: tests/failover.rs Cargo.toml

tests/failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
