//! eden-directory: gossip membership + the sharded location directory.
//!
//! The paper's kernel locates objects with a hint cache backed by a
//! cluster-wide broadcast (`WhereIs`), which costs O(nodes) messages per
//! miss and floors failover latency at the locate window. This crate
//! supplies the scalable replacement, in two layers:
//!
//! * [`Membership`] — a SWIM-style gossiper (ping / ping-req probes,
//!   piggybacked alive/suspect/dead rumors, incarnation numbers) so
//!   dead-holder detection is push-based instead of timeout-based;
//! * [`HashRing`] + [`DirectoryShard`] — every object name maps to a *home
//!   node* on a consistent-hash ring over the live membership; move,
//!   reincarnate and checkpoint events register the current holder at the
//!   home node, so a locate miss asks one node instead of all of them.
//!
//! [`DirectoryService`] composes the layers behind a single deterministic,
//! thread-free state machine: every entry point takes `now` and returns
//! the frames to transmit, so the kernel's receive loop drives it and
//! tests can single-step time. Directory answers are hints in Lampson's
//! sense — the invocation verifies them, the broadcast remains as a
//! compat fallback — so no distributed agreement is needed anywhere.

#![forbid(unsafe_code)]

pub mod membership;
pub mod ring;
pub mod shard;

use std::time::Instant;

use eden_capability::{NodeId, ObjName};
use eden_wire::{DirRegisterKind, DirState, MemberStatus, MemberUpdate, Message};

pub use membership::{GossipConfig, GossipOutput, MemberEvent, Membership};
pub use ring::HashRing;
pub use shard::{DirEntry, DirectoryShard};

/// Frames to send, liveness events to act on, and whether the ring moved.
#[derive(Debug, Default)]
pub struct DirOutput {
    /// Unicast frames to transmit, as `(destination, message)` pairs.
    pub msgs: Vec<(NodeId, Message)>,
    /// Liveness transitions observed while processing.
    pub events: Vec<MemberEvent>,
    /// True when the member set changed and the hash ring was rebuilt;
    /// the kernel re-registers its locally held objects in response.
    pub topology_changed: bool,
}

/// One node's membership view, hash ring, and directory shard.
#[derive(Debug)]
pub struct DirectoryService {
    membership: Membership,
    ring: HashRing,
    shard: DirectoryShard,
}

impl DirectoryService {
    /// Boots the service with every mesh peer presumed alive.
    pub fn new(self_id: NodeId, peers: &[NodeId], cfg: GossipConfig, now: Instant) -> Self {
        let membership = Membership::new(self_id, peers, cfg, now);
        let ring = HashRing::new(&membership.non_dead_view());
        DirectoryService {
            membership,
            ring,
            shard: DirectoryShard::default(),
        }
    }

    /// Advances gossip timers; call at least once per protocol period.
    pub fn tick(&mut self, now: Instant) -> DirOutput {
        let out = self.membership.tick(now);
        self.finish(out)
    }

    /// Handles an inbound [`Message::GossipPing`].
    pub fn handle_ping(
        &mut self,
        from: NodeId,
        seq: u64,
        reply_to: NodeId,
        updates: &[MemberUpdate],
        now: Instant,
    ) -> DirOutput {
        let out = self
            .membership
            .handle_ping(from, seq, reply_to, updates, now);
        self.finish(out)
    }

    /// Handles an inbound [`Message::GossipAck`].
    pub fn handle_ack(
        &mut self,
        from: NodeId,
        seq: u64,
        updates: &[MemberUpdate],
        now: Instant,
    ) -> DirOutput {
        let out = self.membership.handle_ack(from, seq, updates, now);
        self.finish(out)
    }

    /// Handles an inbound [`Message::GossipPingReq`].
    pub fn handle_ping_req(
        &mut self,
        from: NodeId,
        seq: u64,
        target: NodeId,
        reply_to: NodeId,
        updates: &[MemberUpdate],
        now: Instant,
    ) -> DirOutput {
        let out = self
            .membership
            .handle_ping_req(from, seq, target, reply_to, updates, now);
        self.finish(out)
    }

    /// Records a registration. Applied to the local shard when this node
    /// is the name's home; otherwise returns the frame to forward (the
    /// registrant's ring may be stale). Never forwards back to `from`, so
    /// two nodes with momentarily divergent rings cannot ping-pong.
    pub fn handle_register(
        &mut self,
        from: NodeId,
        name: ObjName,
        holder: NodeId,
        kind: DirRegisterKind,
    ) -> Option<(NodeId, Message)> {
        let self_id = self.membership.self_id();
        match self.ring.home(name) {
            Some(home) if home != self_id && home != from => {
                Some((home, Message::DirRegister { name, holder, kind }))
            }
            _ => {
                self.apply_register(name, holder, kind);
                None
            }
        }
    }

    /// Applies a registration to the local shard unconditionally (used
    /// when this node is, or must act as, the home).
    pub fn apply_register(&mut self, name: ObjName, holder: NodeId, kind: DirRegisterKind) {
        match kind {
            DirRegisterKind::Active => self.shard.register_active(name, holder),
            DirRegisterKind::Checkpoint => self.shard.register_checkpoint(name, holder),
            DirRegisterKind::Drop => self.shard.drop_active(name, holder),
        }
    }

    /// Answers a locate query from the local shard, filtered through the
    /// current liveness view (suspects are withheld, dead holders fall
    /// back to a live checksite).
    pub fn answer_query(&self, name: ObjName) -> (Option<NodeId>, DirState) {
        self.shard
            .lookup(name, |node| self.membership.status_of(node))
    }

    /// The believed home node of `name` on the current ring.
    pub fn home(&self, name: ObjName) -> Option<NodeId> {
        self.ring.home(name)
    }

    /// The believed liveness of `node`.
    pub fn status_of(&self, node: NodeId) -> MemberStatus {
        self.membership.status_of(node)
    }

    /// How many peers a broadcast can expect answers from (non-dead).
    pub fn expected_responders(&self) -> usize {
        self.membership.expected_responders()
    }

    /// The full membership view for scrapes: `(node, status, incarnation)`.
    pub fn snapshot(&self) -> Vec<(NodeId, MemberStatus, u64)> {
        self.membership.snapshot()
    }

    /// Entries homed at this node (observability).
    pub fn shard_len(&self) -> usize {
        self.shard.len()
    }

    /// Applies liveness events to the ring and shard: rebuilds the ring
    /// when the member set changes, purges registrations of dead holders,
    /// and emits re-registration frames for entries that re-homed.
    fn finish(&mut self, gossip: GossipOutput) -> DirOutput {
        let mut out = DirOutput {
            msgs: gossip.msgs,
            events: gossip.events,
            topology_changed: false,
        };
        let set_changed = out
            .events
            .iter()
            .any(|e| matches!(e, MemberEvent::Alive(_) | MemberEvent::Dead(_)));
        for event in &out.events {
            if let MemberEvent::Dead(node) = event {
                self.shard.purge_dead(*node);
            }
        }
        if set_changed {
            self.ring = HashRing::new(&self.membership.non_dead_view());
            out.topology_changed = true;
            let self_id = self.membership.self_id();
            let ring = self.ring.clone();
            let evicted = self
                .shard
                .evict_rehomed(|name| ring.home(name) == Some(self_id));
            for (name, entry) in evicted {
                let Some(home) = ring.home(name) else {
                    continue;
                };
                if let Some(holder) = entry.holder {
                    out.msgs.push((
                        home,
                        Message::DirRegister {
                            name,
                            holder,
                            kind: DirRegisterKind::Active,
                        },
                    ));
                }
                for site in entry.checksites {
                    out.msgs.push((
                        home,
                        Message::DirRegister {
                            name,
                            holder: site,
                            kind: DirRegisterKind::Checkpoint,
                        },
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_capability::NameGenerator;
    use std::time::Duration;

    /// Drives a set of services against each other with a lossless,
    /// instant "network", optionally cutting some nodes off.
    fn exchange(
        services: &mut [DirectoryService],
        initial: Vec<(NodeId, NodeId, Message)>,
        cut: &[NodeId],
        now: Instant,
    ) -> Vec<MemberEvent> {
        let mut events = Vec::new();
        let mut queue = initial;
        let mut hops = 0;
        while let Some((src, dst, msg)) = queue.pop() {
            hops += 1;
            assert!(hops < 10_000, "gossip message storm");
            if cut.contains(&src) || cut.contains(&dst) {
                continue;
            }
            let svc = &mut services[dst.0 as usize];
            let out = match msg {
                Message::GossipPing {
                    seq,
                    reply_to,
                    updates,
                } => svc.handle_ping(src, seq, reply_to, &updates, now),
                Message::GossipAck { seq, updates } => svc.handle_ack(src, seq, &updates, now),
                Message::GossipPingReq {
                    seq,
                    target,
                    reply_to,
                    updates,
                } => svc.handle_ping_req(src, seq, target, reply_to, &updates, now),
                Message::DirRegister { name, holder, kind } => {
                    if let Some((fwd, m)) = svc.handle_register(src, name, holder, kind) {
                        queue.push((dst, fwd, m));
                    }
                    continue;
                }
                other => panic!("unexpected message {}", other.label()),
            };
            events.extend(out.events);
            for (to, m) in out.msgs {
                queue.push((dst, to, m));
            }
        }
        events
    }

    #[test]
    fn a_cut_member_is_suspected_then_dead_and_its_entries_purged() {
        let t0 = Instant::now();
        let peers: Vec<NodeId> = (0..3).map(NodeId).collect();
        let mut services: Vec<DirectoryService> = peers
            .iter()
            .map(|p| DirectoryService::new(*p, &peers, GossipConfig::default(), t0))
            .collect();

        // Register an object held by node 2; route to its home.
        let name = NameGenerator::with_epoch(NodeId(2), 1).next_name();
        let home = services[0].home(name).unwrap();
        services[home.0 as usize].apply_register(name, NodeId(2), DirRegisterKind::Active);
        assert_eq!(
            services[home.0 as usize].answer_query(name),
            (Some(NodeId(2)), DirState::Hit)
        );

        // Cut node 2 off and run the protocol for a while.
        let mut now = t0;
        let mut saw_suspect = false;
        let mut saw_dead = false;
        for _ in 0..60 {
            now += Duration::from_millis(100);
            let mut pending = Vec::new();
            for svc in services.iter_mut() {
                let self_id = svc.membership.self_id();
                let out = svc.tick(now);
                for e in &out.events {
                    saw_suspect |= matches!(e, MemberEvent::Suspect(NodeId(2)));
                    saw_dead |= matches!(e, MemberEvent::Dead(NodeId(2)));
                }
                for (to, m) in out.msgs {
                    pending.push((self_id, to, m));
                }
            }
            let events = exchange(&mut services, pending, &[NodeId(2)], now);
            for e in &events {
                saw_suspect |= matches!(e, MemberEvent::Suspect(NodeId(2)));
                saw_dead |= matches!(e, MemberEvent::Dead(NodeId(2)));
            }
            if saw_dead {
                break;
            }
        }
        assert!(saw_suspect, "node 2 was never suspected");
        assert!(saw_dead, "node 2 was never declared dead");

        // Survivors agree node 2 is dead, and no shard hands out its
        // registration any more.
        for survivor in [NodeId(0), NodeId(1)] {
            let svc = &services[survivor.0 as usize];
            assert_eq!(svc.status_of(NodeId(2)), MemberStatus::Dead);
            let (holder, state) = svc.answer_query(name);
            assert_eq!(holder, None);
            assert!(state == DirState::Miss || state == DirState::Suspect);
        }
    }

    #[test]
    fn registrations_route_to_the_home_and_answer_queries() {
        let t0 = Instant::now();
        let peers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mut services: Vec<DirectoryService> = peers
            .iter()
            .map(|p| DirectoryService::new(*p, &peers, GossipConfig::default(), t0))
            .collect();
        let gen = NameGenerator::with_epoch(NodeId(1), 3);
        for i in 0..32u64 {
            let name = gen.next_name();
            let holder = NodeId((i % 4) as u16);
            // Node 0 registers on behalf of the holder; the register is
            // forwarded to the right home if node 0 is not it.
            let initial =
                match services[0].handle_register(NodeId(0), name, holder, DirRegisterKind::Active)
                {
                    Some((to, m)) => vec![(NodeId(0), to, m)],
                    None => vec![],
                };
            exchange(&mut services, initial, &[], t0);
            let home = services[0].home(name).unwrap();
            assert_eq!(
                services[home.0 as usize].answer_query(name),
                (Some(holder), DirState::Hit),
                "object {i} homed at {home:?}"
            );
        }
    }
}
