//! The asynchronous per-peer send pipeline behind [`TcpMesh`].
//!
//! `TcpMesh::send` used to run on the caller's thread: per-connection
//! mutex, two `write_all` syscalls per frame, and — worst — a
//! synchronous 500 ms dial when the peer was cold or dead, stalling
//! whatever kernel thread happened to send (the retransmit loop, a
//! virtual-processor worker). This module replaces that with Lampson's
//! two classic cures — *batch* and *background*:
//!
//! * **Queueing model.** Each destination gets one dedicated writer
//!   thread fed by a bounded frame queue. `send()` is a `try_send`
//!   enqueue: it never blocks on the network, and a full queue sheds
//!   the frame (counted in `frames_dropped`/`frames_shed`) instead of
//!   applying backpressure — the best-effort [`Endpoint`] contract.
//!   One queue per peer keeps per-sender FIFO intact and isolates a
//!   slow or dead peer: its queue fills and sheds while every other
//!   peer's pipeline runs at full speed.
//!
//! * **Frame coalescing.** The writer drains its queue in bursts and
//!   packs all pending length-prefixed frames into a single buffer
//!   written with one syscall — one `write` for N frames instead of
//!   2·N, which is the dominant lever for small-frame throughput
//!   (see EXPERIMENTS.md E13).
//!
//! * **Dial state machine.** Disconnected ⇄ Connected. Dialing happens
//!   on the writer thread with exponential backoff plus jitter
//!   (`dial_backoff_min` doubling to `dial_backoff_max`); a successful
//!   write keeps the connection, a failed write drops it, counts the
//!   batch as dropped, and re-enters the dial state. Callers never
//!   observe any of this: frames to an unreachable peer simply shed at
//!   the bounded queue once it fills.
//!
//! * **Shutdown drain.** `shutdown()` flips the closed flag; a
//!   connected writer drains and flushes what is queued, a
//!   disconnected one sheds the remainder (counted), and both exit
//!   promptly enough to be joined.
//!
//! [`TcpMesh`]: crate::TcpMesh
//! [`Endpoint`]: crate::Endpoint

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::{BufMut, Bytes, BytesMut};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use eden_capability::NodeId;
use eden_obs::trace::stage;
use eden_obs::{now_ns, ObsRegistry, TraceCtx};
use parking_lot::Mutex;
use rand::Rng;

use crate::stats::StatsCell;
use crate::TransportError;

/// Tuning knobs for the TCP send pipeline. The defaults are sized for
/// small-frame kernel traffic on a LAN; everything is per-endpoint.
#[derive(Debug, Clone)]
pub struct TcpTuning {
    /// Per-peer bounded send-queue capacity, in frames. A full queue
    /// sheds new frames (counted in `stats().frames_dropped` and
    /// `frames_shed`) rather than blocking the caller.
    pub queue_cap: usize,
    /// Coalescing budget: a writer packs queued frames into one write
    /// syscall until the batch reaches this many bytes. A single frame
    /// larger than the budget still goes out (alone).
    pub max_batch_bytes: usize,
    /// TCP connect timeout for each background dial attempt.
    pub connect_timeout: Duration,
    /// Delay before the first redial after a failure; doubles per
    /// consecutive failure, with up to 50% random jitter added so a
    /// cluster restart does not produce synchronized dial storms.
    pub dial_backoff_min: Duration,
    /// Ceiling for the exponential dial backoff.
    pub dial_backoff_max: Duration,
    /// Size of the inbound reader pool: at most this many
    /// `eden-tcp-rdr-*` threads multiplex every accepted connection
    /// (spawned lazily as connections arrive, so an endpoint with one
    /// inbound connection runs one reader). Thread count stays flat as
    /// peers scale; the rotation granularity is ~1ms when idle.
    pub reader_threads: usize,
}

impl Default for TcpTuning {
    fn default() -> Self {
        TcpTuning {
            queue_cap: 1024,
            max_batch_bytes: 256 << 10,
            connect_timeout: Duration::from_millis(500),
            dial_backoff_min: Duration::from_millis(50),
            dial_backoff_max: Duration::from_secs(2),
            reader_threads: 4,
        }
    }
}

/// Longest nap a parked writer takes, so shutdown and dial retries are
/// both observed promptly.
const WRITER_NAP: Duration = Duration::from_millis(25);

/// One frame waiting in a peer queue: the encoded payload plus what the
/// critical-path report needs — when it entered the queue, and the
/// trace it belongs to (`None` for untraced frames, which then cost no
/// span work anywhere in the pipeline).
struct QueuedFrame {
    payload: Bytes,
    enqueued_ns: u64,
    trace: Option<TraceCtx>,
}

/// One peer's half of the pipeline: the queue feeding its writer, and
/// the progress marker the stall watchdog reads (nanosecond timestamp
/// of the last observed queue movement — dequeue, or enqueue onto an
/// empty queue).
struct PeerWriter {
    tx: Sender<QueuedFrame>,
    progress_ns: Arc<std::sync::atomic::AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

/// The send side of a [`TcpMesh`]: peer table, per-peer writers, and
/// the shared counters they feed.
///
/// [`TcpMesh`]: crate::TcpMesh
pub(crate) struct SendPipeline {
    node: NodeId,
    tuning: TcpTuning,
    peers: Mutex<HashMap<NodeId, SocketAddr>>,
    writers: Mutex<HashMap<NodeId, PeerWriter>>,
    stats: Arc<StatsCell>,
    obs: Mutex<Option<Arc<ObsRegistry>>>,
    closed: AtomicBool,
}

impl SendPipeline {
    pub(crate) fn new(
        node: NodeId,
        peers: HashMap<NodeId, SocketAddr>,
        tuning: TcpTuning,
        stats: Arc<StatsCell>,
    ) -> Arc<SendPipeline> {
        Arc::new(SendPipeline {
            node,
            tuning,
            peers: Mutex::new(peers),
            writers: Mutex::new(HashMap::new()),
            stats,
            obs: Mutex::new(None),
            closed: AtomicBool::new(false),
        })
    }

    pub(crate) fn add_peer(&self, node: NodeId, addr: SocketAddr) {
        self.peers.lock().insert(node, addr);
    }

    pub(crate) fn peer_ids(&self) -> Vec<NodeId> {
        self.peers.lock().keys().copied().collect()
    }

    pub(crate) fn attach_obs(&self, obs: Arc<ObsRegistry>) {
        *self.obs.lock() = Some(obs);
    }

    /// Frames currently queued across all peers.
    pub(crate) fn queue_depth(&self) -> usize {
        self.writers.lock().values().map(|w| w.tx.len()).sum()
    }

    /// Enqueues an encoded frame for `dst`. Cheap and non-blocking:
    /// the only failure surfaced to the caller is an unknown peer.
    pub(crate) fn enqueue_unicast(
        self: &Arc<Self>,
        dst: NodeId,
        payload: Bytes,
        trace: Option<TraceCtx>,
    ) -> Result<(), TransportError> {
        if !self.peers.lock().contains_key(&dst) {
            return Err(TransportError::UnknownPeer(dst));
        }
        self.enqueue(dst, payload, trace);
        Ok(())
    }

    /// Enqueues an encoded frame for every known peer.
    pub(crate) fn broadcast(self: &Arc<Self>, payload: Bytes, trace: Option<TraceCtx>) {
        for dst in self.peer_ids() {
            self.enqueue(dst, payload.clone(), trace);
        }
    }

    fn enqueue(self: &Arc<Self>, dst: NodeId, payload: Bytes, trace: Option<TraceCtx>) {
        let mut writers = self.writers.lock();
        // Exactly one writer (and so one outbound connection) per peer,
        // created under this lock: concurrent first-sends to a cold
        // peer cannot race two dials (the seed duplicate-dial leak).
        let writer = writers.entry(dst).or_insert_with(|| {
            let (tx, rx) = bounded(self.tuning.queue_cap);
            let progress_ns = Arc::new(std::sync::atomic::AtomicU64::new(now_ns()));
            let writer_progress = Arc::clone(&progress_ns);
            let pipe = Arc::clone(self);
            let handle = std::thread::Builder::new()
                .name(format!("eden-tcp-write-{}-{}", self.node, dst))
                .spawn(move || writer_loop(&pipe, dst, &rx, &writer_progress))
                .ok();
            PeerWriter {
                tx,
                progress_ns,
                handle,
            }
        });
        let enqueued_ns = now_ns();
        if writer.tx.is_empty() {
            // An enqueue onto an empty queue counts as progress, so a
            // long-idle peer does not look stalled the instant traffic
            // resumes (the watchdog measures non-drain time, not idle).
            writer.progress_ns.store(enqueued_ns, Ordering::Relaxed);
        }
        match writer.tx.try_send(QueuedFrame {
            payload,
            enqueued_ns,
            trace,
        }) {
            Ok(()) => self.gauge_queue(1),
            Err(TrySendError::Full(_)) => self.stats.record_shed(),
            Err(TrySendError::Disconnected(_)) => self.stats.record_drop(),
        }
    }

    /// One stall-watchdog probe: every peer whose queue is non-empty,
    /// with how long the queue has gone without movement and its depth.
    pub(crate) fn stall_probe(&self) -> Vec<(NodeId, u64, u64)> {
        let now = now_ns();
        self.writers
            .lock()
            .iter()
            .filter(|(_, w)| !w.tx.is_empty())
            .map(|(&dst, w)| {
                let last = w.progress_ns.load(Ordering::Relaxed);
                (dst, now.saturating_sub(last), w.tx.len() as u64)
            })
            .collect()
    }

    /// Drains and joins every writer. Idempotent.
    pub(crate) fn shutdown(&self) {
        self.closed.store(true, Ordering::Release);
        let writers: Vec<PeerWriter> = {
            let mut map = self.writers.lock();
            map.drain().map(|(_, w)| w).collect()
        };
        for mut w in writers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }

    fn with_obs(&self, f: impl FnOnce(&ObsRegistry)) {
        if let Some(obs) = self.obs.lock().as_deref() {
            f(obs);
        }
    }

    fn gauge_queue(&self, delta: i64) {
        self.with_obs(|obs| obs.gauge("tcp.send_queue").add(delta));
    }
}

/// One peer's writer: dial state machine plus coalescing drain loop.
fn writer_loop(
    pipe: &Arc<SendPipeline>,
    dst: NodeId,
    rx: &Receiver<QueuedFrame>,
    progress: &std::sync::atomic::AtomicU64,
) {
    let tuning = pipe.tuning.clone();
    let mut conn: Option<TcpStream> = None;
    let mut backoff = tuning.dial_backoff_min;
    let mut next_dial = Instant::now();
    // The most recent *successful* dial, as a half-open ns interval.
    // Traced frames whose queue residency overlaps it report the
    // overlap as a `dial` span instead of undifferentiated queue wait.
    let mut last_dial: Option<(u64, u64)> = None;
    let mut batch = BytesMut::with_capacity(tuning.max_batch_bytes.min(64 << 10));
    loop {
        let closing = pipe.closed.load(Ordering::Acquire);
        let Some(stream) = conn.as_mut() else {
            if closing {
                // Nothing to flush to: shed the remainder, counted.
                let mut shed = 0i64;
                while rx.try_recv().is_ok() {
                    pipe.stats.record_drop();
                    shed += 1;
                }
                pipe.gauge_queue(-shed);
                return;
            }
            let now = Instant::now();
            if now >= next_dial {
                let addr = pipe.peers.lock().get(&dst).copied();
                let dial_start = now_ns();
                let dialed =
                    addr.and_then(|a| TcpStream::connect_timeout(&a, tuning.connect_timeout).ok());
                if dialed.is_some() {
                    last_dial = Some((dial_start, now_ns()));
                }
                pipe.stats.record_dial(dialed.is_none());
                pipe.with_obs(|obs| {
                    obs.counter("tcp.dials").inc();
                    if dialed.is_none() {
                        obs.counter("tcp.dial_failures").inc();
                    }
                });
                match dialed {
                    Some(s) => {
                        s.set_nodelay(true).ok();
                        conn = Some(s);
                        backoff = tuning.dial_backoff_min;
                        pipe.with_obs(|obs| obs.gauge("tcp.connected_peers").inc());
                        continue;
                    }
                    None => {
                        // Exponential backoff with up to 50% jitter.
                        let jitter = Duration::from_nanos(
                            rand::rng().random_range(0..=backoff.as_nanos() as u64 / 2),
                        );
                        next_dial = now + backoff + jitter;
                        backoff = (backoff * 2).min(tuning.dial_backoff_max);
                    }
                }
            }
            // Park a bounded slice so shutdown and the next dial both
            // stay prompt; senders shed at the queue meanwhile.
            let nap = next_dial
                .saturating_duration_since(Instant::now())
                .min(WRITER_NAP);
            if !nap.is_zero() {
                std::thread::sleep(nap);
            }
            continue;
        };

        // Connected: wait briefly for the head of the next burst. When
        // closing, the graceful drain ends on a `try_recv` probe — not
        // on `is_empty`, whose counter is only approximate under races.
        let first = match rx.recv_timeout(WRITER_NAP) {
            Ok(f) => f,
            Err(RecvTimeoutError::Timeout) => {
                if closing {
                    match rx.try_recv() {
                        Ok(f) => f, // A late frame: flush it below.
                        Err(_) => {
                            // Graceful drain complete.
                            pipe.with_obs(|obs| obs.gauge("tcp.connected_peers").dec());
                            return;
                        }
                    }
                } else {
                    continue;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                pipe.with_obs(|obs| obs.gauge("tcp.connected_peers").dec());
                return;
            }
        };
        // Coalesce everything pending (up to the byte budget) into one
        // buffer: a single write syscall for the whole burst.
        batch.clear();
        let mut traced: Vec<(TraceCtx, u64)> = Vec::new();
        let mut take = |f: QueuedFrame, batch: &mut BytesMut| {
            append_frame(batch, &f.payload);
            if let Some(t) = f.trace {
                traced.push((t, f.enqueued_ns));
            }
        };
        take(first, &mut batch);
        let mut frames: u64 = 1;
        while batch.len() < tuning.max_batch_bytes {
            match rx.try_recv() {
                Ok(f) => {
                    take(f, &mut batch);
                    frames += 1;
                }
                Err(_) => break,
            }
        }
        let dequeue_ns = now_ns();
        progress.store(dequeue_ns, Ordering::Relaxed);
        if !traced.is_empty() {
            // Retroactive queue-residency spans: [enqueue, dequeue],
            // with any overlapping successful dial carved out into its
            // own `dial`-stage span so the report can tell "waiting in
            // the send queue" apart from "waiting for the connection".
            pipe.with_obs(|obs| {
                for &(ctx, enq) in &traced {
                    let dial = last_dial
                        .map(|(ds, de)| (ds.max(enq), de.min(dequeue_ns)))
                        .filter(|&(ds, de)| ds < de);
                    match dial {
                        Some((ds, de)) => {
                            if ds > enq {
                                obs.record_span_staged(
                                    "xport-queue",
                                    stage::XPORT_QUEUE,
                                    ctx,
                                    enq,
                                    ds,
                                );
                            }
                            obs.record_span_staged("dial", stage::DIAL, ctx, ds, de);
                            if dequeue_ns > de {
                                obs.record_span_staged(
                                    "xport-queue",
                                    stage::XPORT_QUEUE,
                                    ctx,
                                    de,
                                    dequeue_ns,
                                );
                            }
                        }
                        None => {
                            obs.record_span_staged(
                                "xport-queue",
                                stage::XPORT_QUEUE,
                                ctx,
                                enq,
                                dequeue_ns,
                            );
                        }
                    }
                }
            });
        }
        pipe.gauge_queue(-(frames as i64));
        pipe.stats.record_batch();
        pipe.with_obs(|obs| obs.histogram("tcp.batch_frames").record(frames));
        let write_ok = stream.write_all(&batch).is_ok();
        if write_ok && !traced.is_empty() {
            let write_end = now_ns();
            pipe.with_obs(|obs| {
                for &(ctx, _) in &traced {
                    obs.record_span_staged("batch-write", stage::WRITE, ctx, dequeue_ns, write_end);
                }
            });
        }
        if !write_ok {
            // Best-effort: the burst is lost, the connection is dropped,
            // and the state machine re-enters dialing (immediately, so a
            // restarted peer is picked up fast; failures then back off).
            pipe.stats.record_drops(frames);
            conn = None;
            next_dial = Instant::now();
            backoff = tuning.dial_backoff_min;
            pipe.with_obs(|obs| obs.gauge("tcp.connected_peers").dec());
        }
    }
}

/// Appends one length-prefixed frame to the batch buffer.
fn append_frame(batch: &mut BytesMut, payload: &Bytes) {
    batch.put_u32_le(payload.len() as u32);
    batch.put_slice(payload);
}
