/root/repo/target/debug/deps/apps-002c5208e3a702c1.d: crates/apps/tests/apps.rs

/root/repo/target/debug/deps/apps-002c5208e3a702c1: crates/apps/tests/apps.rs

crates/apps/tests/apps.rs:
