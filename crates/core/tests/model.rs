//! Model-based property test: the §4.4 durability semantics.
//!
//! A reference model tracks what a correct Eden must return from a
//! counter subjected to random sequences of `add`, `checkpoint`,
//! `crash` and cross-node `get` operations:
//!
//! * the visible value is `checkpointed + pending`,
//! * `checkpoint` promotes `pending` into `checkpointed`,
//! * `crash` discards `pending`; if the object has never checkpointed it
//!   is lost for good,
//! * location never matters: any node may issue any step.
//!
//! Running hundreds of random interleavings against a live cluster is
//! the strongest single check in the suite: it exercises reincarnation,
//! teardown/requeue races and the location service together.

use eden_capability::Rights;
use eden_kernel::{Cluster, EdenError, OpCtx, OpError, OpResult, TypeManager, TypeSpec};
use eden_wire::{Status, Value};
use proptest::prelude::*;

struct Counter;

impl TypeManager for Counter {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new("counter")
            .class("writes", 1)
            .class("reads", 4)
            .op("add", "writes", Rights::WRITE)
            .op("get", "reads", Rights::READ)
            .op("checkpoint", "writes", Rights::CHECKPOINT)
            .op("crash", "writes", Rights::OWNER)
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "add" => {
                let d = OpCtx::i64_arg(args, 0)?;
                let v = ctx.mutate_repr(|r| {
                    let v = r.get_i64("n").unwrap_or(0) + d;
                    r.put_i64("n", v);
                    v
                })?;
                Ok(vec![Value::I64(v)])
            }
            "get" => Ok(vec![Value::I64(
                ctx.read_repr(|r| r.get_i64("n").unwrap_or(0)),
            )]),
            "checkpoint" => Ok(vec![Value::U64(ctx.checkpoint()?)]),
            "crash" => {
                ctx.crash();
                Ok(vec![])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

#[derive(Debug, Clone)]
enum Step {
    /// Add `delta` via node `node`.
    Add { node: usize, delta: i64 },
    /// Checkpoint via node `node`.
    Checkpoint { node: usize },
    /// Crash the object.
    Crash { node: usize },
    /// Read and verify via node `node`.
    Get { node: usize },
}

fn step_strategy(nodes: usize) -> impl Strategy<Value = Step> {
    let n = 0..nodes;
    prop_oneof![
        4 => (n.clone(), -10i64..10).prop_map(|(node, delta)| Step::Add { node, delta }),
        2 => n.clone().prop_map(|node| Step::Checkpoint { node }),
        1 => n.clone().prop_map(|node| Step::Crash { node }),
        3 => n.prop_map(|node| Step::Get { node }),
    ]
}

/// The reference model.
struct Model {
    checkpointed: Option<i64>,
    pending: i64,
    /// Lost: crashed without ever checkpointing.
    lost: bool,
}

impl Model {
    fn value(&self) -> i64 {
        self.checkpointed.unwrap_or(0) + self.pending
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 64,
    })]

    #[test]
    fn counter_matches_the_durability_model(steps in proptest::collection::vec(step_strategy(3), 1..24)) {
        let cluster = Cluster::builder()
            .nodes(3)
            .register(|| Box::new(Counter))
            .build();
        let cap = cluster.node(0).create_object("counter", &[]).unwrap();
        let mut model = Model { checkpointed: None, pending: 0, lost: false };

        for step in &steps {
            match *step {
                Step::Add { node, delta } => {
                    let result = cluster.node(node).invoke(cap, "add", &[Value::I64(delta)]);
                    if model.lost {
                        prop_assert!(result.is_err(), "add to a lost object must fail");
                    } else {
                        let out = result.expect("add");
                        model.pending += delta;
                        prop_assert_eq!(&out, &vec![Value::I64(model.value())]);
                    }
                }
                Step::Checkpoint { node } => {
                    let result = cluster.node(node).invoke(cap, "checkpoint", &[]);
                    if model.lost {
                        prop_assert!(result.is_err());
                    } else {
                        result.expect("checkpoint");
                        model.checkpointed = Some(model.value());
                        model.pending = 0;
                    }
                }
                Step::Crash { node } => {
                    let result = cluster.node(node).invoke(cap, "crash", &[]);
                    if model.lost {
                        prop_assert!(result.is_err());
                    } else {
                        result.expect("crash");
                        model.pending = 0;
                        if model.checkpointed.is_none() {
                            model.lost = true;
                        }
                        // Let the teardown retire before the next step so
                        // ObjectCrashed races don't blur the oracle.
                        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
                        while cluster.node(0).is_local(cap.name()) {
                            prop_assert!(std::time::Instant::now() < deadline);
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                    }
                }
                Step::Get { node } => {
                    let result = cluster.node(node).invoke(cap, "get", &[]);
                    if model.lost {
                        match result {
                            Err(EdenError::Invoke(Status::NoSuchObject)) => {}
                            other => prop_assert!(false, "lost object answered: {other:?}"),
                        }
                    } else {
                        let out = result.expect("get");
                        prop_assert_eq!(&out, &vec![Value::I64(model.value())]);
                    }
                }
            }
        }
        cluster.shutdown();
    }
}
