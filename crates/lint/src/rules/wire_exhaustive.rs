//! L3 `wire-exhaustiveness`: matches over wire `Status`/`TAG_*`/
//! directory enums must enumerate their variants — no `_ =>` wildcards,
//! so a new wire tag breaks at lint time instead of being silently
//! swallowed at runtime.

use crate::lexer::{matching_brace, word_occurrences, SourceModel};
use crate::{Finding, Rule};

pub(crate) fn check(rel_path: &str, model: &SourceModel, out: &mut Vec<Finding>) {
    if !(rel_path.starts_with("crates/wire/src")
        || rel_path.starts_with("crates/core/src")
        || rel_path.starts_with("crates/directory/src"))
    {
        return;
    }
    let code = &model.code;
    for at in word_occurrences(code, "match") {
        let line = model.line_of(at);
        if model.is_test_line(line) {
            continue;
        }
        // Scrutinee runs to the first `{` at bracket depth 0.
        let mut depth = 0i32;
        let mut open = None;
        for (i, b) in code.bytes().enumerate().skip(at + 5) {
            match b {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    open = Some(i);
                    break;
                }
                b';' if depth == 0 => break, // not a match expression
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = matching_brace(code, open) else {
            continue;
        };
        let arms = match_arms(&code[open + 1..close]);
        let is_wire_match = arms.iter().any(|(pat, _)| {
            // "Status::" also covers "MemberStatus::".
            pat.contains("Status::")
                || pat.contains("TAG_")
                || pat.contains("DirState::")
                || pat.contains("DirRegisterKind::")
        });
        if !is_wire_match {
            continue;
        }
        for (pat, rel_off) in &arms {
            let wildcard = pat
                .split('|')
                .any(|alt| alt.trim() == "_" || alt.trim().starts_with("_ if"));
            if wildcard {
                out.push(Finding {
                    rule: Rule::WireExhaustiveness,
                    file: rel_path.to_string(),
                    line: model.line_of(open + 1 + rel_off),
                    message: "wildcard `_ =>` arm in a match over wire Status/tag variants; \
                              enumerate the variants (or bind a name for the error path) so \
                              new wire tags fail loudly"
                        .to_string(),
                    suppressed: false,
                });
            }
        }
    }
}

/// Splits a match body into `(pattern, offset_of_pattern)` pairs.
/// Patterns run to the first `=>` at bracket depth 0; arm bodies are a
/// balanced block or run to the next `,` at depth 0.
fn match_arms(body: &str) -> Vec<(String, usize)> {
    let bytes = body.as_bytes();
    let mut arms = Vec::new();
    let mut i = 0usize;
    let len = bytes.len();
    while i < len {
        while i < len && (bytes[i].is_ascii_whitespace() || bytes[i] == b',') {
            i += 1;
        }
        if i >= len {
            break;
        }
        let pat_start = i;
        let mut depth = 0i32;
        let mut arrow = None;
        while i < len {
            match bytes[i] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b'=' if depth == 0 && bytes.get(i + 1) == Some(&b'>') => {
                    arrow = Some(i);
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let Some(arrow) = arrow else { break };
        arms.push((body[pat_start..arrow].trim().to_string(), pat_start));
        i = arrow + 2;
        while i < len && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < len && bytes[i] == b'{' {
            let mut depth = 0i32;
            while i < len {
                match bytes[i] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            let mut depth = 0i32;
            while i < len {
                match bytes[i] {
                    b'(' | b'[' | b'{' => depth += 1,
                    b')' | b']' | b'}' => depth -= 1,
                    b',' if depth == 0 => break,
                    _ => {}
                }
                i += 1;
            }
        }
    }
    arms
}
