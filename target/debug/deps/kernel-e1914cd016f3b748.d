/root/repo/target/debug/deps/kernel-e1914cd016f3b748.d: crates/core/tests/kernel.rs

/root/repo/target/debug/deps/kernel-e1914cd016f3b748: crates/core/tests/kernel.rs

crates/core/tests/kernel.rs:
