//! E12 — fan-out under a bounded virtual-processor pool.
//!
//! §3 gives each node machine a small, fixed processor complement; the
//! kernel mirrors that with a bounded [`VirtualProcessorPool`] instead
//! of spawning an OS thread per invocation (the shape the kernel had
//! before the pool). This experiment drives one node with 64 concurrent
//! clients spread over 8 objects and compares:
//!
//! * the **bounded pool** — the full kernel invocation path, pool sized
//!   to a handful of workers;
//! * a **worker-per-client pool** — same kernel path, 64 workers, for
//!   the marginal cost of thread count alone;
//! * **thread-per-invocation** — the pre-pool dispatch substrate,
//!   emulated outside the kernel: every invocation spawns a fresh OS
//!   thread that runs the operation and completes the reply. This is
//!   deliberately generous to the baseline (no coordinator, no gate, no
//!   capability checks, no tracing — just the raw substrate).
//!
//! Two things are on trial:
//!
//! * **boundedness** — the pooled run must keep `vproc.live` at exactly
//!   the configured worker count, with no spare injection, no matter
//!   how many clients pile on;
//! * **throughput** — despite carrying the whole kernel path, the
//!   bounded pool must beat thread-per-invocation: reusing a parked
//!   worker is far cheaper than creating and destroying a thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use eden_kernel::{NodeConfig, VprocStats};
use eden_wire::Value;

use crate::table::Table;
use crate::types::{bench_cluster_with, SpinType};

/// Concurrent external clients.
pub const CLIENTS: usize = 64;
/// Objects the clients fan out over (client *i* targets object *i* mod 8).
pub const OBJECTS: usize = 8;
/// Sequential invocations per client.
const CALLS_PER_CLIENT: usize = 250;
/// Arithmetic iterations per call — tens of microseconds of real work,
/// so the batch is CPU-bound and every configuration executes identical
/// total work.
const SPIN_ITERS: u64 = 50_000;

/// The workload body, identical to `SpinType`'s `spin` op.
fn spin(iters: u64) -> u64 {
    let mut acc = std::hint::black_box(0x9e3779b97f4a7c15u64);
    for i in 0..iters {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc)
}

/// One measured run: invocations/second plus the pool's own view of
/// its thread population, sampled while all 64 clients were in flight.
pub struct FanoutRun {
    /// Sustained invocations per second over the whole batch.
    pub throughput: f64,
    /// Wall-clock seconds for the batch.
    pub secs: f64,
    /// Highest `live` worker count observed mid-run.
    pub peak_live: usize,
    /// Pool stats at the end of the run.
    pub stats: VprocStats,
}

/// Drives 64 clients × 8 objects against a single node whose pool has
/// `workers` virtual processors.
pub fn fanout_run(workers: usize) -> FanoutRun {
    let cluster = bench_cluster_with(
        1,
        NodeConfig {
            // The admission gate must not be the limiter: the pool is.
            virtual_processors: CLIENTS,
            vproc_workers: workers,
            ..Default::default()
        },
    );
    let caps: Vec<_> = (0..OBJECTS)
        .map(|_| {
            cluster
                .node(0)
                .create_object(SpinType::NAME, &[])
                .expect("create spin object")
        })
        .collect();

    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let finished = Arc::new(AtomicUsize::new(0));
    let mut peak_live = 0usize;
    let secs = std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let cap = caps[client % OBJECTS];
            let node = cluster.node(0);
            let barrier = Arc::clone(&barrier);
            let finished = Arc::clone(&finished);
            s.spawn(move || {
                let arg = [Value::U64(SPIN_ITERS)];
                barrier.wait();
                for _ in 0..CALLS_PER_CLIENT {
                    node.invoke(cap, "spin", &arg).expect("spin");
                }
                finished.fetch_add(1, Ordering::Relaxed);
            });
        }
        barrier.wait();
        let start = Instant::now();
        // Sample the pool's thread population while the fan-out is hot;
        // the batch ends when the last client finishes its quota.
        while finished.load(Ordering::Relaxed) < CLIENTS {
            peak_live = peak_live.max(cluster.node(0).vproc_stats().live);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        start.elapsed().as_secs_f64()
    });

    let stats = cluster.node(0).vproc_stats();
    peak_live = peak_live.max(stats.live);
    cluster.shutdown();
    FanoutRun {
        throughput: (CLIENTS * CALLS_PER_CLIENT) as f64 / secs,
        secs,
        peak_live,
        stats,
    }
}

/// Batch seconds for the pooled configuration (Criterion entry point).
pub fn fanout_batch_seconds(workers: usize) -> f64 {
    fanout_run(workers).secs
}

/// The pre-pool baseline: the same 64-client fan-out, but every
/// invocation spawns a fresh OS thread (as `run_invocation` once did)
/// and the client joins it for the reply. Returns (invokes/s, seconds,
/// peak in-flight invocation threads).
pub fn thread_per_invocation_run() -> (f64, f64, usize) {
    let barrier = Barrier::new(CLIENTS + 1);
    let peak_threads = AtomicUsize::new(0);
    let in_flight = AtomicUsize::new(0);
    let finished = AtomicUsize::new(0);
    let secs = std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            s.spawn(|| {
                barrier.wait();
                for _ in 0..CALLS_PER_CLIENT {
                    let n = in_flight.fetch_add(1, Ordering::Relaxed) + 1;
                    peak_threads.fetch_max(n, Ordering::Relaxed);
                    std::thread::spawn(|| spin(SPIN_ITERS))
                        .join()
                        .expect("invocation thread");
                    in_flight.fetch_sub(1, Ordering::Relaxed);
                }
                finished.fetch_add(1, Ordering::Relaxed);
            });
        }
        barrier.wait();
        let start = Instant::now();
        while finished.load(Ordering::Relaxed) < CLIENTS {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        start.elapsed().as_secs_f64()
    });
    (
        (CLIENTS * CALLS_PER_CLIENT) as f64 / secs,
        secs,
        peak_threads.load(Ordering::Relaxed),
    )
}

/// Best of three runs — the batch is short (~0.1 s), so scheduler noise
/// dominates single samples.
fn best_of_3(workers: usize) -> FanoutRun {
    (0..3)
        .map(|_| fanout_run(workers))
        .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
        .expect("three runs")
}

/// Runs F3 and returns the table.
pub fn run() -> Table {
    // Throwaway run: the first batch in a process pays one-time costs
    // (lazy statics, allocator warm-up) that would bias whichever
    // configuration happened to go first.
    let _ = fanout_run(4);
    let mut t = Table::new(
        format!(
            "E12 — fan-out: {CLIENTS} clients x {OBJECTS} objects, \
             {CALLS_PER_CLIENT} spin({SPIN_ITERS}) calls each, one node"
        ),
        &[
            "pool",
            "invokes/s",
            "batch (s)",
            "peak live workers",
            "spares",
            "rejected",
        ],
    );
    let pooled = best_of_3(4);
    let per_client = best_of_3(CLIENTS);
    for (label, run) in [
        ("4 workers (bounded pool, full kernel path)", &pooled),
        ("64 workers (worker-per-client pool)", &per_client),
    ] {
        t.row(vec![
            label.into(),
            format!("{:.0}", run.throughput),
            format!("{:.2}", run.secs),
            run.peak_live.to_string(),
            run.stats.spares_spawned.to_string(),
            run.stats.rejected.to_string(),
        ]);
    }
    let (tpi_rate, tpi_secs, tpi_peak) = (0..3)
        .map(|_| thread_per_invocation_run())
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .expect("three runs");
    t.row(vec![
        "thread-per-invocation (raw substrate)".into(),
        format!("{tpi_rate:.0}"),
        format!("{tpi_secs:.2}"),
        tpi_peak.to_string(),
        "-".into(),
        "-".into(),
    ]);
    t.note(format!(
        "bounded pool kept {} live workers for {} concurrent clients ({}x fewer threads), {:.2}x thread-per-invocation throughput",
        pooled.peak_live,
        CLIENTS,
        CLIENTS / pooled.peak_live.max(1),
        pooled.throughput / tpi_rate,
    ));
    t.note("expected shape: the bounded pool beats thread-per-invocation (worker reuse vs thread create/destroy per call) even though the baseline skips all kernel bookkeeping; peak live workers == configured workers, zero spares (spin never blocks)");
    t
}
