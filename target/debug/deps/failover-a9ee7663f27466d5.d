/root/repo/target/debug/deps/failover-a9ee7663f27466d5.d: tests/failover.rs

/root/repo/target/debug/deps/failover-a9ee7663f27466d5: tests/failover.rs

tests/failover.rs:
