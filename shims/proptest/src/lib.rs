//! In-tree shim for the `proptest` crate.
//!
//! Implements the subset of proptest the workspace's property tests use:
//! the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! `prop_recursive` and `boxed`; range / tuple / string-pattern
//! strategies; `collection::{vec, btree_map}`; `prop_oneof!` (plain and
//! weighted); `Just`; `any::<T>()`; and the `proptest!` /
//! `prop_assert*!` macros. Cases are generated from a deterministic
//! per-test seed so failures reproduce; there is **no shrinking** — the
//! failing inputs are printed instead.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Runs `cases` generated test cases. Used by the [`proptest!`] macro.
pub fn run_proptest<F>(config: &test_runner::ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng, &mut Vec<String>) -> Result<(), test_runner::TestCaseError>,
{
    for i in 0..config.cases {
        let seed = test_runner::seed_for(name, i);
        let mut rng = test_runner::TestRng::from_seed(seed);
        let mut inputs = Vec::new();
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng, &mut inputs)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!(
                "proptest {name}: case {i}/{} failed: {e}\n  inputs:\n{}",
                config.cases,
                render_inputs(&inputs)
            ),
            Err(payload) => {
                eprintln!(
                    "proptest {name}: case {i}/{} panicked\n  inputs:\n{}",
                    config.cases,
                    render_inputs(&inputs)
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

fn render_inputs(inputs: &[String]) -> String {
    inputs
        .iter()
        .map(|s| format!("    {s}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Defines property-test functions: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => { $(
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest(
                &($cfg),
                concat!(module_path!(), "::", stringify!($name)),
                |__rng, __inputs| {
                    $(
                        let __value = $crate::strategy::Strategy::generate(&($strat), __rng);
                        __inputs.push(format!(
                            "{} = {:?}",
                            stringify!($pat),
                            &__value
                        ));
                        let $pat = __value;
                    )+
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )* };
}

/// Chooses between strategies, optionally weighted: `prop_oneof![a, b]`
/// or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not the
/// whole process) so the inputs get reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}
