/root/repo/target/debug/deps/failover-cc1ee77e539cc58b.d: tests/failover.rs

/root/repo/target/debug/deps/failover-cc1ee77e539cc58b: tests/failover.rs

tests/failover.rs:
