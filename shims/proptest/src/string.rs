//! String strategies from regex-like patterns.
//!
//! A `&'static str` is itself a strategy (like real proptest): the
//! pattern is a sequence of atoms — `.` (any printable char), a `[a-z]`
//! character class, or a literal — each optionally followed by an
//! `{lo,hi}` / `{n}` repetition. This covers the patterns the workspace
//! uses (`".{0,64}"`, `"[a-z]{1,8}"`, …); anything fancier panics
//! loudly rather than generating the wrong language.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug)]
enum Atom {
    /// `.` — any printable character.
    AnyChar,
    /// `[a-z0]` — chosen from explicit ranges / singletons.
    Class(Vec<(char, char)>),
    /// A literal character.
    Literal(char),
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::AnyChar,
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = match chars.next() {
                        Some(']') => break,
                        Some(ch) => ch,
                        None => panic!("unterminated character class in pattern {pattern:?}"),
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .unwrap_or_else(|| panic!("dangling '-' in pattern {pattern:?}"));
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            other => Atom::Literal(other),
        };
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for ch in chars.by_ref() {
                if ch == '}' {
                    break;
                }
                spec.push(ch);
            }
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().expect("repetition lower bound"),
                    b.trim().parse::<usize>().expect("repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse::<usize>().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = if hi > lo {
            lo + rng.below((hi - lo + 1) as u64) as usize
        } else {
            lo
        };
        for _ in 0..count {
            out.push(sample_atom(&atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::AnyChar => {
            // Mostly printable ASCII with an occasional multi-byte char so
            // UTF-8 length handling gets exercised.
            if rng.below(10) == 0 {
                const EXOTIC: &[char] = &['é', 'λ', '中', '🌿', 'ß', 'Ω'];
                EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
            } else {
                char::from(32 + rng.below(95) as u8)
            }
        }
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64).saturating_sub(*lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total.max(1));
            for (lo, hi) in ranges {
                let span = (*hi as u64) - (*lo as u64) + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32).expect("valid char");
                }
                pick -= span;
            }
            ranges[0].0
        }
        Atom::Literal(c) => *c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_generate_expected_languages() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = ".{0,32}".generate(&mut rng);
            assert!(t.chars().count() <= 32);

            let u = "[a-c]{0,2}".generate(&mut rng);
            assert!(u.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }
}
