//! In-tree shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()`/`read()`/`write()` return guards directly, and [`Condvar`]
//! takes `&mut MutexGuard` for `wait`/`wait_for`. A poisoned std lock is
//! recovered transparently (parking_lot has no poisoning).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// The std guard lives in an `Option` so [`Condvar`] can take it during a
/// wait and put the re-acquired guard back.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &&*self.read())
            .finish()
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let (g, result) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(g);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_round_trip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait_for(&mut done, Duration::from_millis(50));
        }
        assert!(*done);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
