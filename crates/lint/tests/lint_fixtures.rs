//! Fixture suite for the five eden-lint rules: each rule has at least
//! one known-good and one known-bad snippet with exact expected finding
//! counts, plus a suppression fixture proving `eden-lint: allow(...)`
//! comments cover (and count) findings. A final test runs the linter
//! over the real workspace and requires zero unsuppressed findings —
//! the acceptance bar ci.sh enforces.

use std::path::Path;

use eden_lint::{scan_source, scan_workspace, Finding, Rule};

/// Loads a fixture and scans it under a virtual workspace path that
/// puts it in the right rule scope.
fn scan_fixture(fixture: &str, virtual_path: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    scan_source(virtual_path, &source)
}

fn count(findings: &[Finding], rule: Rule, suppressed: bool) -> usize {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed == suppressed)
        .count()
}

#[test]
fn pool_discipline_flags_direct_spawns() {
    let findings = scan_fixture("pool_bad.rs", "crates/core/src/worker.rs");
    assert_eq!(
        count(&findings, Rule::PoolDiscipline, false),
        2,
        "{findings:?}"
    );
    // Both the bare spawn and the Builder chain, at their spawn sites.
    assert_eq!(findings[0].line, 4);
    assert_eq!(findings[1].line, 12);
}

#[test]
fn pool_discipline_ignores_comments_strings_and_tests() {
    let findings = scan_fixture("pool_good.rs", "crates/core/src/worker.rs");
    assert_eq!(findings.len(), 0, "{findings:?}");
}

#[test]
fn pool_discipline_is_scoped_to_eden_core() {
    // The same bad file outside crates/core is out of scope.
    let findings = scan_fixture("pool_bad.rs", "crates/apps/src/worker.rs");
    assert_eq!(count(&findings, Rule::PoolDiscipline, false), 0);
    // And vproc.rs itself is the allowlisted implementation site.
    let findings = scan_fixture("pool_bad.rs", "crates/core/src/vproc.rs");
    assert_eq!(count(&findings, Rule::PoolDiscipline, false), 0);
}

#[test]
fn pool_discipline_requires_named_transport_threads() {
    let findings = scan_fixture("pool_transport.rs", "crates/transport/src/tcp.rs");
    // The two named spawns pass; the anonymous spawn and the unnamed
    // Builder chain are flagged.
    assert_eq!(
        count(&findings, Rule::PoolDiscipline, false),
        2,
        "{findings:?}"
    );
    assert!(findings
        .iter()
        .all(|f| f.message.contains("eden-mesh-*/eden-tcp-*")));
}

#[test]
fn capability_discipline_flags_unchecked_entry_points() {
    let findings = scan_fixture("cap_bad.rs", "crates/core/src/node.rs");
    assert_eq!(
        count(&findings, Rule::CapabilityDiscipline, false),
        2,
        "{findings:?}"
    );
    assert!(findings.iter().any(|f| f.message.contains("`replicate`")));
    assert!(findings.iter().any(|f| f.message.contains("`persist`")));
}

#[test]
fn capability_discipline_accepts_checks_and_delegation() {
    let findings = scan_fixture("cap_good.rs", "crates/core/src/node.rs");
    assert_eq!(findings.len(), 0, "{findings:?}");
}

#[test]
fn wire_exhaustiveness_flags_wildcards_over_status_and_tags() {
    let findings = scan_fixture("wire_bad.rs", "crates/wire/src/status.rs");
    assert_eq!(
        count(&findings, Rule::WireExhaustiveness, false),
        2,
        "{findings:?}"
    );
}

#[test]
fn wire_exhaustiveness_covers_directory_enums() {
    // DirState/DirRegisterKind matches in the directory crate are wire
    // matches too: both wildcard arms are flagged.
    let findings = scan_fixture("wire_dir_bad.rs", "crates/directory/src/shard.rs");
    assert_eq!(
        count(&findings, Rule::WireExhaustiveness, false),
        2,
        "{findings:?}"
    );
    // The same file outside the scoped crates is ignored.
    let findings = scan_fixture("wire_dir_bad.rs", "crates/apps/src/shard.rs");
    assert_eq!(count(&findings, Rule::WireExhaustiveness, false), 0);
}

#[test]
fn wire_exhaustiveness_accepts_enumerated_and_named_arms() {
    let findings = scan_fixture("wire_good.rs", "crates/wire/src/status.rs");
    assert_eq!(findings.len(), 0, "{findings:?}");
}

#[test]
fn panic_hygiene_flags_lock_and_channel_unwraps() {
    let findings = scan_fixture("panic_bad.rs", "crates/core/src/x.rs");
    assert_eq!(
        count(&findings, Rule::PanicHygiene, false),
        4,
        "{findings:?}"
    );
}

#[test]
fn panic_hygiene_accepts_recovery_and_tests() {
    let findings = scan_fixture("panic_good.rs", "crates/core/src/x.rs");
    assert_eq!(findings.len(), 0, "{findings:?}");
}

#[test]
fn panic_hygiene_covers_the_transport_crate() {
    // The send pipeline's writer threads live in eden-transport; the
    // same lock/channel unwraps are banned there.
    let findings = scan_fixture("panic_bad.rs", "crates/transport/src/writer.rs");
    assert_eq!(
        count(&findings, Rule::PanicHygiene, false),
        4,
        "{findings:?}"
    );
}

#[test]
fn metric_discipline_flags_adhoc_atomic_counters() {
    let findings = scan_fixture("metric_bad.rs", "crates/core/src/telemetry.rs");
    assert_eq!(
        count(&findings, Rule::MetricDiscipline, false),
        3,
        "{findings:?}"
    );
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`invoke_count`")));
    assert!(findings.iter().any(|f| f.message.contains("`bytes_sent`")));
    assert!(findings.iter().any(|f| f.message.contains("`RETRY_TOTAL`")));
    // The transport crate is in scope too.
    let findings = scan_fixture("metric_bad.rs", "crates/transport/src/telemetry.rs");
    assert_eq!(count(&findings, Rule::MetricDiscipline, false), 3);
}

#[test]
fn metric_discipline_accepts_structural_atomics_and_the_stats_cell() {
    let findings = scan_fixture("metric_good.rs", "crates/core/src/telemetry.rs");
    assert_eq!(findings.len(), 0, "{findings:?}");
    // stats.rs implements the public Endpoint::stats() contract: it is
    // the one sanctioned ad-hoc cell.
    let findings = scan_fixture("metric_bad.rs", "crates/transport/src/stats.rs");
    assert_eq!(count(&findings, Rule::MetricDiscipline, false), 0);
    // Crates outside kernel/transport are out of scope.
    let findings = scan_fixture("metric_bad.rs", "crates/obs/src/metric.rs");
    assert_eq!(count(&findings, Rule::MetricDiscipline, false), 0);
}

#[test]
fn suppressions_cover_and_count_each_rule() {
    let findings = scan_fixture("suppressed.rs", "crates/core/src/node.rs");
    for rule in Rule::ALL {
        assert_eq!(count(&findings, rule, true), 1, "{rule}: {findings:?}");
        assert_eq!(count(&findings, rule, false), 0, "{rule}: {findings:?}");
    }
}

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    // CARGO_MANIFEST_DIR = crates/lint; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = scan_workspace(&root).expect("scan workspace");
    assert!(
        report.files_scanned > 50,
        "walked {} files",
        report.files_scanned
    );
    let open: Vec<_> = report.unsuppressed().collect();
    assert!(open.is_empty(), "unsuppressed findings: {open:#?}");
}
