/root/repo/target/debug/deps/eden_wire-49980f81e3da1dc4.d: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/image.rs crates/wire/src/message.rs crates/wire/src/status.rs crates/wire/src/value.rs

/root/repo/target/debug/deps/eden_wire-49980f81e3da1dc4: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/image.rs crates/wire/src/message.rs crates/wire/src/status.rs crates/wire/src/value.rs

crates/wire/src/lib.rs:
crates/wire/src/codec.rs:
crates/wire/src/image.rs:
crates/wire/src/message.rs:
crates/wire/src/status.rs:
crates/wire/src/value.rs:
