//! A small bounded map with least-recently-used eviction.
//!
//! The location hint cache must not grow with the number of objects a
//! node has ever heard about (the ROADMAP targets millions of objects),
//! so it is bounded by `NodeConfig::location_cache_cap` and evicts the
//! hint that has gone longest without a lookup. Recency is tracked with
//! monotonically increasing stamps and a lazily compacted queue rather
//! than a linked list: inserts and hits are O(1) amortized, eviction pops
//! stale queue entries until it finds a live one.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A hash map bounded to `cap` entries with LRU eviction.
#[derive(Debug)]
pub struct LruMap<K, V> {
    map: HashMap<K, (V, u64)>,
    /// `(key, stamp)` in insertion order; an entry is stale when the
    /// map's stamp for the key has moved past it.
    queue: VecDeque<(K, u64)>,
    next_stamp: u64,
    cap: usize,
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// An empty map that holds at most `cap` entries (min 1).
    pub fn new(cap: usize) -> Self {
        LruMap {
            map: HashMap::new(),
            queue: VecDeque::new(),
            next_stamp: 0,
            cap: cap.max(1),
        }
    }

    fn stamp(&mut self, key: K) -> u64 {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.queue.push_back((key, stamp));
        // The queue holds one entry per insert/hit; drop superseded ones
        // before it outgrows the live set by more than a small factor.
        if self.queue.len() > self.cap.saturating_mul(4).max(64) {
            let map = &self.map;
            self.queue
                .retain(|(k, s)| map.get(k).map(|(_, live)| live) == Some(s));
        }
        stamp
    }

    /// Inserts or refreshes an entry; returns how many entries were
    /// evicted to stay within the cap (0 or 1).
    pub fn insert(&mut self, key: K, value: V) -> usize {
        let stamp = self.stamp(key.clone());
        self.map.insert(key, (value, stamp));
        let mut evicted = 0;
        while self.map.len() > self.cap {
            match self.queue.pop_front() {
                Some((k, s)) => {
                    if self.map.get(&k).map(|(_, live)| *live) == Some(s) {
                        self.map.remove(&k);
                        evicted += 1;
                    }
                }
                None => break,
            }
        }
        evicted
    }

    /// Looks up a key and marks it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if self.map.contains_key(key) {
            let stamp = self.stamp(key.clone());
            if let Some(entry) = self.map.get_mut(key) {
                entry.1 = stamp;
            }
        }
        self.map.get(key).map(|(v, _)| v)
    }

    /// Removes an entry.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.map.remove(key).map(|(v, _)| v)
    }

    /// Keeps only entries whose value satisfies the predicate (used to
    /// purge every hint pointing at a dead node).
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) {
        self.map.retain(|k, (v, _)| keep(k, v));
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_removes_the_least_recently_used() {
        let mut lru = LruMap::new(2);
        assert_eq!(lru.insert("a", 1), 0);
        assert_eq!(lru.insert("b", 2), 0);
        assert_eq!(lru.get(&"a"), Some(&1)); // refresh a; b is now LRU
        assert_eq!(lru.insert("c", 3), 1);
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.get(&"c"), Some(&3));
    }

    #[test]
    fn reinsert_refreshes_instead_of_growing() {
        let mut lru = LruMap::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("a", 10); // refresh, not a new entry
        assert_eq!(lru.len(), 2);
        lru.insert("c", 3); // evicts b, the stale one
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.get(&"a"), Some(&10));
    }

    #[test]
    fn retain_purges_by_value() {
        let mut lru = LruMap::new(8);
        for i in 0..6 {
            lru.insert(i, i % 2);
        }
        lru.retain(|_, v| *v == 0);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.get(&1), None);
        assert_eq!(lru.get(&2), Some(&0));
    }

    #[test]
    fn queue_stays_bounded_under_heavy_hits() {
        let mut lru = LruMap::new(4);
        for i in 0..4 {
            lru.insert(i, i);
        }
        for _ in 0..10_000 {
            for i in 0..4 {
                lru.get(&i);
            }
        }
        assert!(lru.queue.len() <= 4usize.saturating_mul(4).max(64) + 1);
        assert_eq!(lru.len(), 4);
    }

    #[test]
    fn cap_is_at_least_one() {
        let mut lru = LruMap::new(0);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&"b"), Some(&2));
    }
}
