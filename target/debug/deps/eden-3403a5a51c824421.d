/root/repo/target/debug/deps/eden-3403a5a51c824421.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libeden-3403a5a51c824421.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
