/root/repo/target/debug/deps/figure3_layers-d806a068d8cf2ee8.d: tests/figure3_layers.rs

/root/repo/target/debug/deps/figure3_layers-d806a068d8cf2ee8: tests/figure3_layers.rs

tests/figure3_layers.rs:
