//! E1 micro-benchmarks: invocation latency, local and remote, by
//! payload size.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eden_bench::types::{bench_cluster, EchoType};
use eden_wire::Value;

fn bench_invocation(c: &mut Criterion) {
    let cluster = bench_cluster(2);
    let cap = cluster
        .node(0)
        .create_object(EchoType::NAME, &[])
        .expect("create echo");
    // Warm the location cache.
    cluster.node(1).invoke(cap, "echo", &[]).expect("warm");

    let mut group = c.benchmark_group("invocation_latency");
    for payload in [0usize, 64, 1024, 16384] {
        let args = [Value::Blob(Bytes::from(vec![0u8; payload]))];
        group.throughput(Throughput::Bytes(payload as u64));
        group.bench_with_input(BenchmarkId::new("local", payload), &args, |b, args| {
            b.iter(|| cluster.node(0).invoke(cap, "echo", args).expect("echo"))
        });
        group.bench_with_input(BenchmarkId::new("remote", payload), &args, |b, args| {
            b.iter(|| cluster.node(1).invoke(cap, "echo", args).expect("echo"))
        });
    }
    group.finish();
    cluster.shutdown();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_invocation
}
criterion_main!(benches);
