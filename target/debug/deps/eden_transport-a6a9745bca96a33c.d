/root/repo/target/debug/deps/eden_transport-a6a9745bca96a33c.d: crates/transport/src/lib.rs crates/transport/src/latency.rs crates/transport/src/mesh.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs

/root/repo/target/debug/deps/libeden_transport-a6a9745bca96a33c.rlib: crates/transport/src/lib.rs crates/transport/src/latency.rs crates/transport/src/mesh.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs

/root/repo/target/debug/deps/libeden_transport-a6a9745bca96a33c.rmeta: crates/transport/src/lib.rs crates/transport/src/latency.rs crates/transport/src/mesh.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs

crates/transport/src/lib.rs:
crates/transport/src/latency.rs:
crates/transport/src/mesh.rs:
crates/transport/src/stats.rs:
crates/transport/src/tcp.rs:
