/root/repo/target/debug/deps/eden-9b8b6016db2b32bb.d: src/lib.rs

/root/repo/target/debug/deps/libeden-9b8b6016db2b32bb.rlib: src/lib.rs

/root/repo/target/debug/deps/libeden-9b8b6016db2b32bb.rmeta: src/lib.rs

src/lib.rs:
