/root/repo/target/debug/deps/tcp_kernel-cd529a3021ab910f.d: tests/tcp_kernel.rs

/root/repo/target/debug/deps/tcp_kernel-cd529a3021ab910f: tests/tcp_kernel.rs

tests/tcp_kernel.rs:
