/root/repo/target/debug/deps/tcp_kernel-6ecce570af596a01.d: tests/tcp_kernel.rs

/root/repo/target/debug/deps/tcp_kernel-6ecce570af596a01: tests/tcp_kernel.rs

tests/tcp_kernel.rs:
