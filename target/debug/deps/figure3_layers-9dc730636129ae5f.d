/root/repo/target/debug/deps/figure3_layers-9dc730636129ae5f.d: tests/figure3_layers.rs Cargo.toml

/root/repo/target/debug/deps/libfigure3_layers-9dc730636129ae5f.rmeta: tests/figure3_layers.rs Cargo.toml

tests/figure3_layers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
