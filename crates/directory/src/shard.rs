//! One node's shard of the location directory.
//!
//! The shard maps object names homed here to their registered holder plus
//! any checkpoint sites. Registrations are *hints* in Lampson's sense: the
//! fast path trusts them, the invocation itself verifies them (a wrong
//! holder answers `NoSuchObject` and the querier falls back to the
//! broadcast), so the shard never needs distributed agreement.

use std::collections::HashMap;

use eden_capability::{NodeId, ObjName};
use eden_wire::{DirState, MemberStatus};

/// What the shard records for one object.
#[derive(Debug, Clone, Default)]
pub struct DirEntry {
    /// The node running the object's active form, if registered.
    pub holder: Option<NodeId>,
    /// Nodes that have stored a checkpoint (failover candidates).
    pub checksites: Vec<NodeId>,
}

/// The directory entries homed at this node.
#[derive(Debug, Default)]
pub struct DirectoryShard {
    entries: HashMap<ObjName, DirEntry>,
}

impl DirectoryShard {
    /// Records `holder` as the active site of `name` (last write wins —
    /// moves and reincarnations simply overwrite).
    pub fn register_active(&mut self, name: ObjName, holder: NodeId) {
        self.entries.entry(name).or_default().holder = Some(holder);
    }

    /// Records that `site` stores a checkpoint of `name`.
    pub fn register_checkpoint(&mut self, name: ObjName, site: NodeId) {
        let entry = self.entries.entry(name).or_default();
        if !entry.checksites.contains(&site) {
            entry.checksites.push(site);
        }
    }

    /// Clears the active registration if it still names `holder` (crash or
    /// destruction; a newer registration by another node is preserved).
    pub fn drop_active(&mut self, name: ObjName, holder: NodeId) {
        if let Some(entry) = self.entries.get_mut(&name) {
            if entry.holder == Some(holder) {
                entry.holder = None;
            }
            if entry.holder.is_none() && entry.checksites.is_empty() {
                self.entries.remove(&name);
            }
        }
    }

    /// Answers a locate query given the current liveness view. A suspected
    /// holder is withheld (`Suspect`) until refuted or confirmed dead; a
    /// dead holder falls back to the first live checksite, whose passive
    /// copy the querier can activate.
    pub fn lookup(
        &self,
        name: ObjName,
        status_of: impl Fn(NodeId) -> MemberStatus,
    ) -> (Option<NodeId>, DirState) {
        let Some(entry) = self.entries.get(&name) else {
            return (None, DirState::Miss);
        };
        if let Some(holder) = entry.holder {
            match status_of(holder) {
                MemberStatus::Alive => return (Some(holder), DirState::Hit),
                MemberStatus::Suspect => return (None, DirState::Suspect),
                MemberStatus::Dead => {}
            }
        }
        let mut any_suspect = false;
        for &site in &entry.checksites {
            match status_of(site) {
                MemberStatus::Alive => return (Some(site), DirState::Hit),
                MemberStatus::Suspect => any_suspect = true,
                MemberStatus::Dead => {}
            }
        }
        if any_suspect {
            (None, DirState::Suspect)
        } else {
            (None, DirState::Miss)
        }
    }

    /// Drops registrations that point only at `dead` (its holder slot is
    /// cleared; checkpoint sites are pruned).
    pub fn purge_dead(&mut self, dead: NodeId) {
        self.entries.retain(|_, entry| {
            if entry.holder == Some(dead) {
                entry.holder = None;
            }
            entry.checksites.retain(|&s| s != dead);
            entry.holder.is_some() || !entry.checksites.is_empty()
        });
    }

    /// Extracts every entry whose home is no longer this node (ring
    /// change); the caller forwards them to their new homes.
    pub fn evict_rehomed(
        &mut self,
        still_home: impl Fn(ObjName) -> bool,
    ) -> Vec<(ObjName, DirEntry)> {
        let moving: Vec<ObjName> = self
            .entries
            .keys()
            .copied()
            .filter(|name| !still_home(*name))
            .collect();
        moving
            .into_iter()
            .filter_map(|name| self.entries.remove(&name).map(|e| (name, e)))
            .collect()
    }

    /// Number of entries homed here.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are homed here.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_capability::NameGenerator;

    fn name() -> ObjName {
        NameGenerator::with_epoch(NodeId(1), 1).next_name()
    }

    fn alive(_: NodeId) -> MemberStatus {
        MemberStatus::Alive
    }

    #[test]
    fn active_registration_wins_and_moves_overwrite() {
        let n = name();
        let mut shard = DirectoryShard::default();
        assert_eq!(shard.lookup(n, alive), (None, DirState::Miss));
        shard.register_active(n, NodeId(1));
        assert_eq!(shard.lookup(n, alive), (Some(NodeId(1)), DirState::Hit));
        shard.register_active(n, NodeId(2));
        assert_eq!(shard.lookup(n, alive), (Some(NodeId(2)), DirState::Hit));
    }

    #[test]
    fn suspect_holder_is_withheld_until_resolved() {
        let n = name();
        let mut shard = DirectoryShard::default();
        shard.register_active(n, NodeId(2));
        let suspecting = |node: NodeId| {
            if node == NodeId(2) {
                MemberStatus::Suspect
            } else {
                MemberStatus::Alive
            }
        };
        assert_eq!(shard.lookup(n, suspecting), (None, DirState::Suspect));
    }

    #[test]
    fn dead_holder_falls_back_to_a_live_checksite() {
        let n = name();
        let mut shard = DirectoryShard::default();
        shard.register_active(n, NodeId(2));
        shard.register_checkpoint(n, NodeId(3));
        let dead2 = |node: NodeId| {
            if node == NodeId(2) {
                MemberStatus::Dead
            } else {
                MemberStatus::Alive
            }
        };
        assert_eq!(shard.lookup(n, dead2), (Some(NodeId(3)), DirState::Hit));
        shard.purge_dead(NodeId(2));
        assert_eq!(shard.lookup(n, alive), (Some(NodeId(3)), DirState::Hit));
    }

    #[test]
    fn drop_only_clears_a_matching_holder() {
        let n = name();
        let mut shard = DirectoryShard::default();
        shard.register_active(n, NodeId(2));
        shard.drop_active(n, NodeId(9)); // stale drop from an old holder
        assert_eq!(shard.lookup(n, alive), (Some(NodeId(2)), DirState::Hit));
        shard.drop_active(n, NodeId(2));
        assert_eq!(shard.lookup(n, alive), (None, DirState::Miss));
        assert!(shard.is_empty());
    }

    #[test]
    fn rehoming_extracts_only_foreign_entries() {
        let gen = NameGenerator::with_epoch(NodeId(0), 2);
        let keep = gen.next_name();
        let evict = gen.next_name();
        let mut shard = DirectoryShard::default();
        shard.register_active(keep, NodeId(1));
        shard.register_active(evict, NodeId(2));
        let out = shard.evict_rehomed(|n| n == keep);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, evict);
        assert_eq!(shard.len(), 1);
    }
}
