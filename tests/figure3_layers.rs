//! Figure 3, executable: the Eden software structure.
//!
//! §4: applications sit on system services (filing, directories,
//! databases) which sit on the kernel's object primitives, which sit on
//! the network — with "no hierarchical structure to the systems outside
//! the kernel (except that defined by the objects themselves through
//! the graph structures connecting them)". This test drives one user
//! action through every layer and then verifies each layer saw it.

use eden::apps::{with_apps, MailClient};
use eden::efs::Efs;
use eden::kernel::Cluster;

#[test]
fn one_action_traverses_every_layer() {
    let cluster = with_apps(Cluster::builder().nodes(3)).build();

    // Layer: system software (EFS) on the kernel.
    let efs = Efs::format(cluster.node(2).clone()).unwrap();
    let registry = efs.mkdir_p("/system/mail").unwrap();

    // Layer: application (mail) on EFS naming.
    let alice = MailClient::new(cluster.node(0).clone(), registry);
    let bob = MailClient::new(cluster.node(1).clone(), registry);
    let alice_box = alice.register_user("alice").unwrap();
    bob.register_user("bob").unwrap();

    let t0_net = cluster.node(1).transport_stats();
    let t0_kernel = cluster.node(1).metrics();

    // The user action: bob sends alice mail.
    bob.send("bob", "alice", "layers", "down the whole stack")
        .unwrap();

    // Application layer: the mail arrived.
    let headers = alice.headers(alice_box).unwrap();
    assert_eq!(headers.len(), 1);
    assert_eq!(headers[0].2, "layers");

    // System-software layer: the registry (an EFS directory) resolved
    // the recipient — visible through the path API.
    let users = efs.list("/system/mail").unwrap();
    assert!(users.contains(&"alice".to_string()) && users.contains(&"bob".to_string()));

    // Kernel layer: the send was object invocations, not shared memory —
    // bob's node issued remote invocations (registry lookup + deliver).
    let k = cluster.node(1).metrics().delta(&t0_kernel);
    assert!(
        k.remote_invocations_sent >= 2,
        "expected lookup + deliver, saw {}",
        k.remote_invocations_sent
    );

    // Network layer: those invocations were frames on the wire.
    let n = cluster.node(1).transport_stats().delta(&t0_net);
    assert!(n.frames_sent >= 2);
    assert!(n.bytes_sent > 0);

    // And the whole stack is object-graph-shaped: the only connection
    // between layers is capabilities (the registry capability reached
    // the mail client as a value, nothing else was shared).
    cluster.shutdown();
}

#[test]
fn layers_are_location_independent_end_to_end() {
    // The same stack works when every piece is somewhere else: registry
    // on 0, sender on 1, recipient mailbox on 2, reader on 0.
    let cluster = with_apps(Cluster::builder().nodes(3)).build();
    let efs = Efs::format(cluster.node(0).clone()).unwrap();
    let registry = efs.mkdir_p("/mail").unwrap();

    let recipient_client = MailClient::new(cluster.node(2).clone(), registry);
    let mbox = recipient_client.register_user("rae").unwrap();

    let sender = MailClient::new(cluster.node(1).clone(), registry);
    sender
        .send("sam", "rae", "hi", "cross-node all the way")
        .unwrap();

    let reader = MailClient::new(cluster.node(0).clone(), registry);
    let headers = reader.headers(mbox).unwrap();
    assert_eq!(headers.len(), 1);
    assert_eq!(headers[0].1, "sam");
    cluster.shutdown();
}
