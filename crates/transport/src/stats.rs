//! Transport counters.
//!
//! The frozen-object experiment (E4) measures its win as *remote messages
//! avoided*, so every transport counts frames and payload bytes in each
//! direction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point-in-time snapshot of one endpoint's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportStats {
    /// Frames passed to `send`.
    pub frames_sent: u64,
    /// Frames delivered to `recv`.
    pub frames_received: u64,
    /// Encoded payload bytes sent.
    pub bytes_sent: u64,
    /// Encoded payload bytes received.
    pub bytes_received: u64,
    /// Frames dropped by the loss model or a partition.
    pub frames_dropped: u64,
}

/// Shared mutable counters behind a snapshot API.
#[derive(Debug, Default)]
pub struct StatsCell {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    frames_dropped: AtomicU64,
}

impl StatsCell {
    /// A fresh, shareable counter cell.
    pub fn new_shared() -> Arc<StatsCell> {
        Arc::new(StatsCell::default())
    }

    /// Records an outbound frame of `bytes` payload bytes.
    pub fn record_send(&self, bytes: usize) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records an inbound frame of `bytes` payload bytes.
    pub fn record_recv(&self, bytes: usize) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records a dropped frame.
    pub fn record_drop(&self) {
        self.frames_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot.
    pub fn snapshot(&self) -> TransportStats {
        TransportStats {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            frames_dropped: self.frames_dropped.load(Ordering::Relaxed),
        }
    }
}

impl TransportStats {
    /// The difference `self - earlier`, for measuring an interval.
    #[must_use]
    pub fn delta(&self, earlier: &TransportStats) -> TransportStats {
        TransportStats {
            frames_sent: self.frames_sent - earlier.frames_sent,
            frames_received: self.frames_received - earlier.frames_received,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
            frames_dropped: self.frames_dropped - earlier.frames_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = StatsCell::new_shared();
        c.record_send(100);
        c.record_send(50);
        c.record_recv(10);
        c.record_drop();
        let s = c.snapshot();
        assert_eq!(s.frames_sent, 2);
        assert_eq!(s.bytes_sent, 150);
        assert_eq!(s.frames_received, 1);
        assert_eq!(s.bytes_received, 10);
        assert_eq!(s.frames_dropped, 1);
    }

    #[test]
    fn delta_measures_an_interval() {
        let c = StatsCell::new_shared();
        c.record_send(10);
        let before = c.snapshot();
        c.record_send(20);
        c.record_send(30);
        let after = c.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.frames_sent, 2);
        assert_eq!(d.bytes_sent, 50);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let c = StatsCell::new_shared();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.record_send(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().frames_sent, 4000);
    }
}
