//! Distributed invocation tracing.
//!
//! A [`TraceCtx`] is three 64-bit ids: the trace, the parent span, and
//! the current span. It crosses node boundaries as an optional trailing
//! field on `eden-wire` frames; each layer that does work opens a child
//! span against the context it received and the receiving side parents
//! onto the sender's span, so one remote invocation produces a single
//! causally-linked tree spanning both kernels.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A span's identity plus its position in the trace tree. 24 bytes on
/// the wire; `Copy` so it threads through call stacks freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Identifies the whole invocation tree.
    pub trace_id: u64,
    /// The span this context descends from (0 for roots).
    pub parent_span: u64,
    /// The current span.
    pub span_id: u64,
}

/// A finished span, as stored in a node's [`TraceCollector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the process).
    pub span_id: u64,
    /// Parent span id; 0 for trace roots.
    pub parent_span: u64,
    /// The node that recorded the span.
    pub node: u16,
    /// Layer-assigned name, e.g. `"invoke"`, `"dispatch"`, `"net"`.
    pub name: &'static str,
    /// Critical-path stage this span's duration is attributed to (one of
    /// the [`stage`] constants; empty for structural spans whose time is
    /// accounted by their children).
    pub stage: &'static str,
    /// Start, nanoseconds on the process-wide clock.
    pub start_ns: u64,
    /// End, nanoseconds on the process-wide clock.
    pub end_ns: u64,
}

/// Stage tags for critical-path attribution. Every span that represents
/// *where an invocation's wall-clock went* carries one of these in
/// [`SpanRecord::stage`]; the critical-path report
/// ([`crate::critical_path`]) buckets a trace's latency by stage and
/// distinguishes local vs. remote queueing by comparing the span's node
/// to the root span's node.
pub mod stage {
    /// No attribution: a structural span (e.g. `invoke`, `client-send`)
    /// whose time is explained by its children.
    pub const NONE: &str = "";
    /// Waiting in a virtual-processor pool queue (vproc enqueue →
    /// dequeue).
    pub const VPROC_QUEUE: &str = "vproc-queue";
    /// Waiting in a per-peer transport send queue (enqueue → writer
    /// dequeue).
    pub const XPORT_QUEUE: &str = "xport-queue";
    /// Dial/backoff time spent establishing a connection before a batch
    /// could be written.
    pub const DIAL: &str = "dial";
    /// A coalesced batch write syscall.
    pub const WRITE: &str = "write";
    /// Location resolution: hint-cache probes, `DirQuery` round trips,
    /// broadcast fallback.
    pub const DIRECTORY: &str = "directory";
    /// Coordinator queue wait (arrival at the serving object → dispatch
    /// onto a worker).
    pub const DISPATCH: &str = "dispatch";
    /// Operation execution inside the type manager.
    pub const EXECUTE: &str = "execute";
    /// Time on the wire (and in the receive path); derived by the
    /// critical-path report as sender-side gap not covered by receiver
    /// spans, but also tagged on `net` spans directly.
    pub const WIRE: &str = "wire";

    /// Interns a stage tag decoded from the wire (bounded set; unknown
    /// tags intern like span names).
    pub fn intern(tag: &str) -> &'static str {
        const KNOWN: &[&str] = &[
            NONE,
            VPROC_QUEUE,
            XPORT_QUEUE,
            DIAL,
            WRITE,
            DIRECTORY,
            DISPATCH,
            EXECUTE,
            WIRE,
        ];
        if let Some(k) = KNOWN.iter().find(|k| **k == tag) {
            return k;
        }
        super::intern_name(tag)
    }
}

/// Interns a span name decoded from the wire into a `&'static str` (the
/// type [`SpanRecord::name`] carries).
///
/// The set of span names in the system is small and fixed by the layers
/// that open spans (`invoke`, `client-send`, `net`, `dispatch`,
/// `execute`, `reply`, …), so leaking each *distinct* decoded name once
/// is bounded. Well-known names are matched without any allocation.
pub fn intern_name(name: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "invoke",
        "client-send",
        "net",
        "dispatch",
        "execute",
        "reply",
        "vproc-wait",
        "xport-queue",
        "dial",
        "batch-write",
        "dir-query",
        "hint-probe",
        "where-is",
    ];
    if let Some(k) = KNOWN.iter().find(|k| **k == name) {
        return k;
    }
    static EXTRA: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut extra = EXTRA.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(k) = extra.iter().find(|k| **k == name) {
        return k;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    extra.push(leaked);
    leaked
}

/// A bounded ring of finished spans (per node).
pub struct TraceCollector {
    capacity: usize,
    spans: Mutex<VecDeque<SpanRecord>>,
}

impl TraceCollector {
    /// Creates a collector retaining the most recent `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        TraceCollector {
            capacity,
            spans: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// Appends a finished span, evicting the oldest at capacity.
    pub fn record(&self, span: SpanRecord) {
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        if spans.len() == self.capacity {
            spans.pop_front();
        }
        spans.push_back(span);
    }

    /// All retained spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Retained spans belonging to `trace_id`.
    pub fn spans_for(&self, trace_id: u64) -> Vec<SpanRecord> {
        self.spans()
            .into_iter()
            .filter(|s| s.trace_id == trace_id)
            .collect()
    }
}

/// Renders the span tree of one trace as indented text, e.g.:
///
/// ```text
/// trace 0x0001000000000001
/// └─ invoke                 node 1     912.3 µs
///    └─ client-send         node 1     897.1 µs
///       ├─ net              node 0      41.0 µs
///       └─ dispatch         node 0      12.9 µs
///          └─ execute       node 0     803.5 µs
/// ```
///
/// Spans may come from several nodes' collectors — merge them first.
/// Orphans (parent missing from `spans`) are promoted to roots so a
/// truncated collection still renders.
pub fn render_trace(spans: &[SpanRecord], trace_id: u64) -> String {
    let mut mine: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
    mine.sort_by_key(|s| (s.start_ns, s.span_id));
    let ids: std::collections::HashSet<u64> = mine.iter().map(|s| s.span_id).collect();
    let roots: Vec<&SpanRecord> = mine
        .iter()
        .copied()
        .filter(|s| s.parent_span == 0 || !ids.contains(&s.parent_span))
        .collect();
    let mut out = format!("trace {trace_id:#018x}\n");
    for (i, root) in roots.iter().enumerate() {
        render_subtree(&mut out, &mine, root, "", i + 1 == roots.len());
    }
    out
}

fn render_subtree(
    out: &mut String,
    all: &[&SpanRecord],
    span: &SpanRecord,
    prefix: &str,
    last: bool,
) {
    let branch = if last { "└─ " } else { "├─ " };
    let dur_us = span.end_ns.saturating_sub(span.start_ns) as f64 / 1_000.0;
    let label = format!("{prefix}{branch}{}", span.name);
    out.push_str(&format!(
        "{label:<28} node {:<4} {dur_us:>10.1} µs\n",
        span.node
    ));
    let children: Vec<&SpanRecord> = all
        .iter()
        .copied()
        .filter(|s| s.parent_span == span.span_id && s.span_id != span.span_id)
        .collect();
    let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
    for (i, child) in children.iter().enumerate() {
        render_subtree(out, all, child, &child_prefix, i + 1 == children.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        trace: u64,
        id: u64,
        parent: u64,
        name: &'static str,
        start: u64,
        end: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_span: parent,
            node: (id >> 48) as u16,
            name,
            stage: stage::NONE,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn collector_evicts_oldest() {
        let c = TraceCollector::new(2);
        c.record(span(1, 1, 0, "a", 0, 1));
        c.record(span(1, 2, 1, "b", 1, 2));
        c.record(span(1, 3, 1, "c", 2, 3));
        let names: Vec<_> = c.spans().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn render_nests_children_under_parents() {
        let spans = vec![
            span(7, 1, 0, "invoke", 0, 100),
            span(7, 2, 1, "client-send", 5, 95),
            span(7, 3, 2, "dispatch", 20, 30),
            span(7, 4, 3, "execute", 30, 80),
            span(9, 9, 0, "other-trace", 0, 1),
        ];
        let text = render_trace(&spans, 7);
        assert!(text.contains("invoke"));
        assert!(text.contains("execute"));
        assert!(!text.contains("other-trace"));
        // Child is indented relative to parent.
        let invoke_col = text
            .lines()
            .find(|l| l.contains("invoke"))
            .unwrap()
            .find("invoke")
            .unwrap();
        let exec_col = text
            .lines()
            .find(|l| l.contains("execute"))
            .unwrap()
            .find("execute")
            .unwrap();
        assert!(exec_col > invoke_col);
    }

    #[test]
    fn intern_reuses_known_and_decoded_names() {
        // Well-known names come back as the same static pointer.
        assert_eq!(intern_name("invoke"), "invoke");
        // A novel decoded name is leaked once and then reused.
        let a = intern_name("custom-layer");
        let b = intern_name("custom-layer");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn orphans_render_as_roots() {
        let spans = vec![span(7, 5, 999, "lonely", 0, 10)];
        let text = render_trace(&spans, 7);
        assert!(text.contains("lonely"));
    }
}
