//! Plain-text result tables, aligned for EXPERIMENTS.md.

/// One experiment's results.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id and description, e.g. `"E1 — invocation latency"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (expected shape, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Starts a table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T — demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "10000".into()]);
        t.note("shape: flat");
        let s = t.render();
        assert!(s.contains("== T — demo =="));
        assert!(s.contains("alpha  1"));
        assert!(s.contains("note: shape: flat"));
        // Alignment: the two value columns start at the same offset.
        let lines: Vec<&str> = s.lines().collect();
        let h = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find('1').unwrap(), h);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
