/root/repo/target/debug/deps/apps-e0aa549d65cf0c7c.d: crates/apps/tests/apps.rs

/root/repo/target/debug/deps/apps-e0aa549d65cf0c7c: crates/apps/tests/apps.rs

crates/apps/tests/apps.rs:
