/root/repo/target/debug/deps/figure1_topology-d6c620c4d9e159b4.d: tests/figure1_topology.rs Cargo.toml

/root/repo/target/debug/deps/libfigure1_topology-d6c620c4d9e159b4.rmeta: tests/figure1_topology.rs Cargo.toml

tests/figure1_topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
