//! Application-level tests: the distributed mail, calendar, queue and
//! policy applications running on real clusters.

use std::sync::Arc;
use std::time::Duration;

use eden_apps::{
    with_apps, CalendarType, MailClient, MailboxType, MeetingScheduler, PolicyObjectType,
    SharedQueueType,
};
use eden_capability::Rights;
use eden_efs::{DirectoryType, Efs};
use eden_kernel::{Cluster, EdenError};
use eden_wire::{Status, Value};

fn cluster(n: usize) -> Cluster {
    with_apps(Cluster::builder().nodes(n)).build()
}

// ----- Mail -----

#[test]
fn mail_flows_between_users_on_different_nodes() {
    let c = cluster(3);
    // The registry directory lives on node 2 (the "file server").
    let registry = c.node(2).create_object(DirectoryType::NAME, &[]).unwrap();

    let alice_client = MailClient::new(c.node(0).clone(), registry);
    let bob_client = MailClient::new(c.node(1).clone(), registry);
    let alice_box = alice_client.register_user("alice").unwrap();
    let _bob_box = bob_client.register_user("bob").unwrap();

    bob_client
        .send("bob", "alice", "lunch?", "12:30 at the lab")
        .unwrap();
    bob_client
        .send("bob", "alice", "re: lunch", "make it 13:00")
        .unwrap();

    let headers = alice_client.headers(alice_box).unwrap();
    assert_eq!(headers.len(), 2);
    assert_eq!(headers[0].1, "bob");
    assert_eq!(headers[0].2, "lunch?");
    let body = alice_client.body(alice_box, headers[1].0).unwrap();
    assert_eq!(body, "make it 13:00");
}

#[test]
fn registry_capability_cannot_read_mail() {
    let c = cluster(2);
    let registry = c.node(0).create_object(DirectoryType::NAME, &[]).unwrap();
    let client = MailClient::new(c.node(0).clone(), registry);
    client.register_user("carol").unwrap();

    // Fetch the public (deliver-only) capability from the registry and
    // try to read with it.
    let out = c
        .node(1)
        .invoke(registry, "lookup", &[Value::Str("carol".into())])
        .unwrap();
    let public_cap = out[0].as_cap().unwrap();
    assert!(public_cap.permits(MailboxType::DELIVER));
    let err = c.node(1).invoke(public_cap, "list", &[]).unwrap_err();
    assert!(
        matches!(err, EdenError::Invoke(Status::RightsViolation { .. })),
        "deliver-only capability must not read: {err:?}"
    );
}

#[test]
fn mailbox_survives_crash_and_follows_moves() {
    let c = cluster(3);
    let registry = c.node(0).create_object(DirectoryType::NAME, &[]).unwrap();
    let client = MailClient::new(c.node(0).clone(), registry);
    let mailbox = client.register_user("dave").unwrap();
    client.send("eve", "dave", "one", "first message").unwrap();

    // The mailbox follows its user to node 1.
    c.node(0)
        .invoke(mailbox, "relocate", &[Value::U64(1)])
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !c.node(1).is_local(mailbox.name()) {
        assert!(std::time::Instant::now() < deadline, "move never completed");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Mail still arrives, transparently.
    client.send("eve", "dave", "two", "second message").unwrap();
    let headers = client.headers(mailbox).unwrap();
    assert_eq!(headers.len(), 2);
}

#[test]
fn mail_over_efs_registry_exercises_every_layer() {
    // Figure 3 end-to-end: application (mail) over EFS naming over the
    // kernel over the network.
    let c = cluster(2);
    let efs = Efs::format(c.node(1).clone()).unwrap();
    let mail_dir = efs.mkdir_p("/system/mail").unwrap();
    let client = MailClient::new(c.node(0).clone(), mail_dir);
    let mbox = client.register_user("frank").unwrap();
    client
        .send("grace", "frank", "hi", "hello across layers")
        .unwrap();
    assert_eq!(client.headers(mbox).unwrap().len(), 1);
    // The registry binding is visible through the EFS path API too.
    assert!(efs
        .list("/system/mail")
        .unwrap()
        .contains(&"frank".to_string()));
}

// ----- Calendar -----

#[test]
fn scheduler_finds_a_common_slot_across_nodes() {
    let c = cluster(3);
    let cals: Vec<_> = (0..3)
        .map(|i| c.node(i).create_object(CalendarType::NAME, &[]).unwrap())
        .collect();

    // Pre-book conflicting appointments: 9 is busy for cal0, 10 busy for
    // cal1, 11 busy for cal2 → first common slot is 12.
    for (i, cal) in cals.iter().enumerate() {
        let hour = 9 + i as u64;
        let out = c
            .node(0)
            .invoke(
                *cal,
                "book",
                &[Value::U64(100), Value::U64(hour), Value::Str("busy".into())],
            )
            .unwrap();
        assert_eq!(out, vec![Value::Bool(true)]);
    }

    let scheduler = MeetingScheduler::new(c.node(0).clone());
    let hour = scheduler.schedule(&cals, 100, "eden sync").unwrap();
    assert_eq!(hour, Some(12));

    // Booked everywhere.
    for cal in &cals {
        let out = c
            .node(1)
            .invoke(*cal, "agenda", &[Value::U64(100)])
            .unwrap();
        let agenda = out[0].as_list().unwrap();
        assert!(agenda.iter().any(|item| {
            item.as_list()
                .map(|pair| pair[0].as_u64() == Some(12))
                .unwrap_or(false)
        }));
    }
}

#[test]
fn scheduler_reports_when_no_slot_exists() {
    let c = cluster(1);
    let cal = c.node(0).create_object(CalendarType::NAME, &[]).unwrap();
    for hour in 9..17 {
        c.node(0)
            .invoke(
                cal,
                "book",
                &[
                    Value::U64(7),
                    Value::U64(hour),
                    Value::Str("slammed".into()),
                ],
            )
            .unwrap();
    }
    let scheduler = MeetingScheduler::new(c.node(0).clone());
    assert_eq!(scheduler.schedule(&[cal], 7, "impossible").unwrap(), None);
}

#[test]
fn double_booking_is_refused() {
    let c = cluster(1);
    let cal = c.node(0).create_object(CalendarType::NAME, &[]).unwrap();
    let book = |title: &str| {
        c.node(0)
            .invoke(
                cal,
                "book",
                &[Value::U64(1), Value::U64(10), Value::Str(title.into())],
            )
            .unwrap()[0]
            .as_bool()
            .unwrap()
    };
    assert!(book("first"));
    assert!(!book("second"));
}

#[test]
fn out_of_range_hours_are_type_errors() {
    let c = cluster(1);
    let cal = c.node(0).create_object(CalendarType::NAME, &[]).unwrap();
    let err = c
        .node(0)
        .invoke(
            cal,
            "book",
            &[Value::U64(1), Value::U64(23), Value::Str("midnight".into())],
        )
        .unwrap_err();
    assert!(matches!(err, EdenError::Invoke(Status::TypeError(_))));
}

// ----- Shared queue -----

#[test]
fn queue_is_fifo_across_nodes() {
    let c = cluster(2);
    let q = c.node(0).create_object(SharedQueueType::NAME, &[]).unwrap();
    for i in 0..5 {
        c.node(1).invoke(q, "enqueue", &[Value::I64(i)]).unwrap();
    }
    for i in 0..5 {
        let out = c.node(0).invoke(q, "dequeue", &[]).unwrap();
        assert_eq!(out, vec![Value::I64(i)]);
    }
    assert_eq!(
        c.node(0).invoke(q, "dequeue", &[]).unwrap(),
        vec![Value::Unit]
    );
}

#[test]
fn concurrent_producers_and_consumers_lose_nothing() {
    let c = Arc::new(cluster(2));
    let q = c.node(0).create_object(SharedQueueType::NAME, &[]).unwrap();
    let n_producers = 4;
    let per_producer = 50i64;

    let mut handles = Vec::new();
    for p in 0..n_producers {
        let c = c.clone();
        handles.push(std::thread::spawn(move || {
            let node = c.node((p % 2) as usize);
            for i in 0..per_producer {
                node.invoke(q, "enqueue", &[Value::I64(p as i64 * 1000 + i)])
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Drain everything and verify per-producer FIFO plus no loss.
    let out = c.node(1).invoke(q, "drain", &[Value::U64(10_000)]).unwrap();
    let items = out[0].as_list().unwrap();
    assert_eq!(items.len(), (n_producers as i64 * per_producer) as usize);
    for p in 0..n_producers {
        let seq: Vec<i64> = items
            .iter()
            .filter_map(Value::as_i64)
            .filter(|v| v / 1000 == p as i64)
            .collect();
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        assert_eq!(seq, sorted, "per-producer order must hold");
    }
}

#[test]
fn drain_respects_the_limit() {
    let c = cluster(1);
    let q = c.node(0).create_object(SharedQueueType::NAME, &[]).unwrap();
    for i in 0..10 {
        c.node(0).invoke(q, "enqueue", &[Value::I64(i)]).unwrap();
    }
    let out = c.node(0).invoke(q, "drain", &[Value::U64(3)]).unwrap();
    assert_eq!(out[0].as_list().unwrap().len(), 3);
    let out = c.node(0).invoke(q, "len", &[]).unwrap();
    assert_eq!(out, vec![Value::U64(7)]);
}

// ----- Policy objects -----

#[test]
fn policy_object_relocates_objects_it_holds_move_rights_on() {
    let c = cluster(3);
    let policy = c
        .node(0)
        .create_object(PolicyObjectType::NAME, &[])
        .unwrap();
    let q = c.node(0).create_object(SharedQueueType::NAME, &[]).unwrap();

    c.node(0)
        .invoke(policy, "send_to", &[Value::Cap(q), Value::U64(2)])
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !c.node(2).is_local(q.name()) {
        assert!(
            std::time::Instant::now() < deadline,
            "policy move never landed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // Still invocable from anywhere.
    c.node(1).invoke(q, "enqueue", &[Value::I64(9)]).unwrap();
}

#[test]
fn policy_object_refuses_undelegated_move() {
    let c = cluster(2);
    let policy = c
        .node(0)
        .create_object(PolicyObjectType::NAME, &[])
        .unwrap();
    let q = c.node(0).create_object(SharedQueueType::NAME, &[]).unwrap();
    let no_move = q.restrict(Rights::READ | Rights::WRITE);
    let err = c
        .node(0)
        .invoke(policy, "place", &[Value::Cap(no_move)])
        .unwrap_err();
    assert!(matches!(
        err,
        EdenError::Invoke(Status::AppError { code: 403, .. })
    ));
}

#[test]
fn policy_object_reports_its_node_set() {
    let c = cluster(4);
    let policy = c
        .node(1)
        .create_object(PolicyObjectType::NAME, &[])
        .unwrap();
    let out = c.node(1).invoke(policy, "nodes", &[]).unwrap();
    let nodes: Vec<u64> = out[0]
        .as_list()
        .unwrap()
        .iter()
        .filter_map(Value::as_u64)
        .collect();
    assert_eq!(nodes, vec![0, 1, 2, 3]);
}

// ----- Type hierarchy (§5) -----

#[test]
fn subtypes_inherit_operations_two_levels_deep() {
    use eden_apps::AuditedQueueType;
    let c = cluster(2);
    let q = c
        .node(0)
        .create_object(AuditedQueueType::NAME, &[Value::Str("jobs".into())])
        .unwrap();

    // `push` is the subtype's own (audited) implementation.
    c.node(1).invoke(q, "push", &[Value::I64(1)]).unwrap();
    c.node(1).invoke(q, "push", &[Value::I64(2)]).unwrap();

    // `pop` and `depth` are inherited from resource.queue.
    let out = c.node(0).invoke(q, "depth", &[]).unwrap();
    assert_eq!(out, vec![Value::U64(2)]);
    let out = c.node(0).invoke(q, "pop", &[]).unwrap();
    assert_eq!(out, vec![Value::I64(1)]);

    // `label` and `whereis` come from the root, two levels up.
    let out = c.node(1).invoke(q, "label", &[]).unwrap();
    assert_eq!(out, vec![Value::Str("jobs".into())]);
    let out = c.node(1).invoke(q, "whereis", &[]).unwrap();
    assert_eq!(out, vec![Value::U64(0)]);

    // The audit trail recorded both pushes.
    let out = c.node(0).invoke(q, "audit", &[]).unwrap();
    assert_eq!(out[0].as_list().unwrap().len(), 2);
}

#[test]
fn subtype_overrides_replace_inherited_display_code() {
    use eden_apps::{NamedQueueType, ResourceType};
    let c = cluster(1);
    let plain = c
        .node(0)
        .create_object(ResourceType::NAME, &[Value::Str("disk".into())])
        .unwrap();
    let queue = c
        .node(0)
        .create_object(NamedQueueType::NAME, &[Value::Str("print".into())])
        .unwrap();
    c.node(0).invoke(queue, "push", &[Value::Unit]).unwrap();

    let plain_desc = c.node(0).invoke(plain, "describe", &[]).unwrap()[0]
        .as_str()
        .unwrap()
        .to_string();
    let queue_desc = c.node(0).invoke(queue, "describe", &[]).unwrap()[0]
        .as_str()
        .unwrap()
        .to_string();
    assert!(plain_desc.starts_with("resource 'disk'"), "{plain_desc}");
    assert!(
        queue_desc.starts_with("queue 'print' (1 queued)"),
        "{queue_desc}"
    );
}

#[test]
fn inherited_location_operations_move_the_subtype_instance() {
    use eden_apps::NamedQueueType;
    let c = cluster(2);
    let q = c
        .node(0)
        .create_object(NamedQueueType::NAME, &[Value::Str("mobile".into())])
        .unwrap();
    c.node(0).invoke(q, "push", &[Value::I64(7)]).unwrap();
    // `relocate` is defined on the root supertype; it must move *this*
    // instance, carrying the subtype's representation along.
    c.node(0).invoke(q, "relocate", &[Value::U64(1)]).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !c.node(1).is_local(q.name()) {
        assert!(
            std::time::Instant::now() < deadline,
            "inherited move never landed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let out = c.node(0).invoke(q, "pop", &[]).unwrap();
    assert_eq!(
        out,
        vec![Value::I64(7)],
        "state travelled with the instance"
    );
}

#[test]
fn supertype_instances_do_not_gain_subtype_operations() {
    use eden_apps::ResourceType;
    let c = cluster(1);
    let plain = c.node(0).create_object(ResourceType::NAME, &[]).unwrap();
    let err = c.node(0).invoke(plain, "push", &[Value::Unit]).unwrap_err();
    assert_eq!(
        err,
        EdenError::Invoke(Status::NoSuchOperation("push".into()))
    );
}
