//! E3 — checkpoint cost and reincarnation latency vs. representation
//! size (§4.4).
//!
//! Expected shape: both costs grow roughly linearly with the
//! representation once serialization dominates; the disk store adds a
//! near-constant write overhead on top of the in-memory store.

use std::time::{Duration, Instant};

use eden_store::disk::SyncPolicy;
use eden_store::{CheckpointStore, DiskStore, MemStore};
use eden_wire::Value;

use crate::fmt_us;
use crate::table::Table;
use crate::types::{bench_cluster, PayloadType};

const SIZES: [usize; 4] = [1 << 10, 16 << 10, 256 << 10, 1 << 20];

/// Mean checkpoint time (µs) for a representation of `bytes`.
pub fn checkpoint_us(bytes: usize, iters: usize) -> f64 {
    let cluster = bench_cluster(1);
    let cap = cluster
        .node(0)
        .create_object(PayloadType::NAME, &[])
        .expect("create payload");
    cluster
        .node(0)
        .invoke(cap, "fill", &[Value::U64(bytes as u64)])
        .expect("fill");
    let start = Instant::now();
    for _ in 0..iters {
        cluster
            .node(0)
            .invoke(cap, "checkpoint", &[])
            .expect("checkpoint");
    }
    let us = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
    cluster.shutdown();
    us
}

/// Mean reincarnation latency (µs): crash, then time the first
/// invocation that revives the object.
pub fn reincarnation_us(bytes: usize, iters: usize) -> f64 {
    let cluster = bench_cluster(1);
    let node = cluster.node(0);
    let cap = node
        .create_object(PayloadType::NAME, &[])
        .expect("create payload");
    node.invoke(cap, "fill", &[Value::U64(bytes as u64)])
        .expect("fill");
    node.invoke(cap, "checkpoint", &[]).expect("checkpoint");

    let mut total = 0.0;
    for _ in 0..iters {
        node.invoke(cap, "crash", &[]).expect("crash");
        // Wait for the teardown to settle.
        let deadline = Instant::now() + Duration::from_secs(5);
        while node.is_local(cap.name()) {
            assert!(Instant::now() < deadline, "crash never settled");
            std::thread::yield_now();
        }
        let start = Instant::now();
        node.invoke(cap, "touch", &[]).expect("reincarnating touch");
        total += start.elapsed().as_secs_f64() * 1e6;
    }
    cluster.shutdown();
    total / iters as f64
}

/// Raw store write throughput for context (MemStore vs DiskStore).
fn store_put_us(store: &dyn CheckpointStore, bytes: usize, iters: usize) -> f64 {
    let name = eden_capability::NameGenerator::new(eden_capability::NodeId(0)).next_name();
    let payload = vec![0xAAu8; bytes];
    let start = Instant::now();
    for _ in 0..iters {
        store.put(name, &payload).expect("put");
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// Runs E3 and returns the table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E3 — checkpoint & reincarnation vs representation size",
        &[
            "repr size",
            "checkpoint",
            "reincarnate",
            "raw mem put",
            "raw disk put (no fsync)",
        ],
    );
    let dir = std::env::temp_dir().join(format!("eden-e3-{}", std::process::id()));
    std::fs::create_dir_all(&dir).ok();
    let disk = DiskStore::open(dir.join("e3.log"), SyncPolicy::Never).expect("disk store");
    let mem = MemStore::new();
    for bytes in SIZES {
        let iters = if bytes >= 256 << 10 { 10 } else { 40 };
        t.row(vec![
            format!("{} KiB", bytes >> 10),
            fmt_us(checkpoint_us(bytes, iters)),
            fmt_us(reincarnation_us(bytes, 6)),
            fmt_us(store_put_us(&mem, bytes, iters)),
            fmt_us(store_put_us(&disk, bytes, iters)),
        ]);
    }
    std::fs::remove_dir_all(&dir).ok();
    t.note(
        "expected shape: linear growth with size; reincarnation ≈ checkpoint + dispatch overhead",
    );
    t
}
