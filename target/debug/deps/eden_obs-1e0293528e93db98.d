/root/repo/target/debug/deps/eden_obs-1e0293528e93db98.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/metric.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libeden_obs-1e0293528e93db98.rlib: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/metric.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libeden_obs-1e0293528e93db98.rmeta: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/metric.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/export.rs:
crates/obs/src/hist.rs:
crates/obs/src/metric.rs:
crates/obs/src/recorder.rs:
crates/obs/src/registry.rs:
crates/obs/src/trace.rs:
