//! Values, messages and the binary codec of the Eden kernel protocol.
//!
//! §4.2: "To invoke an operation on an object, the user supplies a
//! capability for the object, the name of the operation to be invoked, and
//! optionally a list of data and/or capability parameters." The kernel
//! "builds the invocation message from the invocation request, locates the
//! specified object, and sends the message to the object"; replies carry
//! "status and return parameters".
//!
//! This crate defines:
//!
//! * [`Value`] — the data/capability parameter algebra passed through
//!   invocations (there is no shared memory; parameters are values).
//! * [`Status`] — the status word of an invocation reply.
//! * [`Message`] and [`Frame`] — the kernel-to-kernel protocol: invocation
//!   requests/replies, location queries, object transfer for mobility,
//!   replica distribution for frozen objects, and remote checkpointing.
//! * [`codec`] — a compact, hand-rolled binary encoding with exhaustive
//!   round-trip property tests. No external serialization framework is
//!   used: the codec is small enough to audit and keeps the reproduction
//!   dependency-light.

#![forbid(unsafe_code)]

pub mod codec;
pub mod image;
pub mod message;
pub mod obs_codec;
pub mod status;
pub mod value;

pub use codec::{CodecError, Reader, WireDecode, WireEncode, Writer};
pub use image::ObjectImage;
pub use message::{
    Dest, DirRegisterKind, DirState, Frame, HeldState, MemberStatus, MemberUpdate, Message,
};
pub use status::Status;
pub use value::Value;
