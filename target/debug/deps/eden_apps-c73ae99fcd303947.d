/root/repo/target/debug/deps/eden_apps-c73ae99fcd303947.d: crates/apps/src/lib.rs crates/apps/src/calendar.rs crates/apps/src/counter.rs crates/apps/src/hierarchy.rs crates/apps/src/mail.rs crates/apps/src/monitor.rs crates/apps/src/policy.rs crates/apps/src/queue.rs Cargo.toml

/root/repo/target/debug/deps/libeden_apps-c73ae99fcd303947.rmeta: crates/apps/src/lib.rs crates/apps/src/calendar.rs crates/apps/src/counter.rs crates/apps/src/hierarchy.rs crates/apps/src/mail.rs crates/apps/src/monitor.rs crates/apps/src/policy.rs crates/apps/src/queue.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/calendar.rs:
crates/apps/src/counter.rs:
crates/apps/src/hierarchy.rs:
crates/apps/src/mail.rs:
crates/apps/src/monitor.rs:
crates/apps/src/policy.rs:
crates/apps/src/queue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
