//! The `eden-lint` binary: scans the workspace and reports invariant
//! violations. Exit code 0 when every finding is suppressed (or none
//! exist), 1 when unsuppressed findings remain, 2 on usage/IO errors.
//!
//! ```text
//! cargo run -p eden-lint                # human-readable report
//! cargo run -p eden-lint -- --json      # machine-readable (ci.sh archives it)
//! cargo run -p eden-lint -- --root DIR  # scan another workspace root
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use eden_lint::{scan_workspace, Rule};

fn main() -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("eden-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: eden-lint [--json] [--root DIR]");
                eprintln!("rules: {}", rule_list());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("eden-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let report = match scan_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("eden-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        println!(
            "eden-lint: {} file(s), {} finding(s) ({} suppressed)",
            report.files_scanned,
            report.findings.len(),
            report.findings.iter().filter(|f| f.suppressed).count()
        );
        for (rule, (open, suppressed)) in report.counts() {
            println!("  {rule}: {open} unsuppressed, {suppressed} suppressed");
        }
    }

    if report.unsuppressed().count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn rule_list() -> String {
    Rule::ALL
        .iter()
        .map(|r| r.name())
        .collect::<Vec<_>>()
        .join(", ")
}
