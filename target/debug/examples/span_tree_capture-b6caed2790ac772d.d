/root/repo/target/debug/examples/span_tree_capture-b6caed2790ac772d.d: examples/span_tree_capture.rs Cargo.toml

/root/repo/target/debug/examples/libspan_tree_capture-b6caed2790ac772d.rmeta: examples/span_tree_capture.rs Cargo.toml

examples/span_tree_capture.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
