// Fixture: L1 pool-discipline clean file (scanned as crates/core/src/worker.rs).
// Mentions of thread::spawn in comments and strings must not count, and
// test modules are exempt.

fn routed_through_pool(pool: &VirtualProcessorPool) {
    // The old code used std::thread::spawn here.
    let msg = "thread::spawn is banned";
    pool.submit(move || println!("{msg}")).unwrap_or(());
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn() {
        let t = std::thread::spawn(|| 42);
        assert_eq!(t.join().unwrap(), 42);
    }
}
