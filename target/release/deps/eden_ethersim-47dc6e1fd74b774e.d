/root/repo/target/release/deps/eden_ethersim-47dc6e1fd74b774e.d: crates/ethersim/src/lib.rs crates/ethersim/src/aloha.rs crates/ethersim/src/analytic.rs crates/ethersim/src/config.rs crates/ethersim/src/events.rs crates/ethersim/src/metrics.rs crates/ethersim/src/sim.rs crates/ethersim/src/time.rs crates/ethersim/src/workload.rs

/root/repo/target/release/deps/libeden_ethersim-47dc6e1fd74b774e.rlib: crates/ethersim/src/lib.rs crates/ethersim/src/aloha.rs crates/ethersim/src/analytic.rs crates/ethersim/src/config.rs crates/ethersim/src/events.rs crates/ethersim/src/metrics.rs crates/ethersim/src/sim.rs crates/ethersim/src/time.rs crates/ethersim/src/workload.rs

/root/repo/target/release/deps/libeden_ethersim-47dc6e1fd74b774e.rmeta: crates/ethersim/src/lib.rs crates/ethersim/src/aloha.rs crates/ethersim/src/analytic.rs crates/ethersim/src/config.rs crates/ethersim/src/events.rs crates/ethersim/src/metrics.rs crates/ethersim/src/sim.rs crates/ethersim/src/time.rs crates/ethersim/src/workload.rs

crates/ethersim/src/lib.rs:
crates/ethersim/src/aloha.rs:
crates/ethersim/src/analytic.rs:
crates/ethersim/src/config.rs:
crates/ethersim/src/events.rs:
crates/ethersim/src/metrics.rs:
crates/ethersim/src/sim.rs:
crates/ethersim/src/time.rs:
crates/ethersim/src/workload.rs:
