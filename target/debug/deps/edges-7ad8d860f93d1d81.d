/root/repo/target/debug/deps/edges-7ad8d860f93d1d81.d: crates/core/tests/edges.rs

/root/repo/target/debug/deps/edges-7ad8d860f93d1d81: crates/core/tests/edges.rs

crates/core/tests/edges.rs:
