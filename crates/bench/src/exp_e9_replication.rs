//! E9 — EFS version replication: read scaling with replica count.
//!
//! A published (frozen) file version is cached on k of 4 reader nodes;
//! all four read concurrently over a LAN-shaped mesh. Expected shape:
//! aggregate read throughput grows with every replica, because each
//! cached node stops paying the wire cost — "replicated at multiple
//! sites for reliability or performance enhancement" (§5).

use std::time::{Duration, Instant};

use eden_transport::{LatencyModel, MeshOptions};
use eden_wire::Value;

use crate::table::Table;
use crate::types::with_bench_types;

const READS_PER_NODE: usize = 30;
const VERSION_BYTES: usize = 8192;

/// Aggregate reads/s with replicas cached on nodes `1..=k`.
pub fn reads_per_sec_with_replicas(k: usize) -> f64 {
    let cluster = with_bench_types(eden_apps::with_apps(
        eden_kernel::Cluster::builder().nodes(4).mesh(MeshOptions {
            latency: LatencyModel::lan_10mbps(),
            loss_probability: 0.0,
            seed: 9,
        }),
    ))
    .build();
    // The publisher lives on node 0; readers are nodes 1..4.
    let blob = cluster
        .node(0)
        .create_object(
            eden_efs::BlobType::NAME,
            &[Value::Blob(bytes::Bytes::from(vec![1u8; VERSION_BYTES]))],
        )
        .expect("publish blob");
    for node in 1..=k {
        cluster.node(node).cache_replica(blob).expect("cache");
    }

    // Sum each reader's own rate: one still-remote reader must not mask
    // the replicated readers' gains behind shared wall-clock.
    let handles: Vec<_> = (1..4)
        .map(|i| {
            let node = cluster.node(i).clone();
            std::thread::spawn(move || {
                let start = Instant::now();
                for _ in 0..READS_PER_NODE {
                    node.invoke_with_timeout(blob, "read", &[], Duration::from_secs(10))
                        .expect("read");
                }
                READS_PER_NODE as f64 / start.elapsed().as_secs_f64()
            })
        })
        .collect();
    let total: f64 = handles.into_iter().map(|h| h.join().expect("reader")).sum();
    cluster.shutdown();
    total
}

/// Runs E9 and returns the table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E9 — published-version read scaling (3 readers, 8 KiB version, LAN mesh)",
        &["replicas cached", "aggregate reads/s"],
    );
    for k in 0..=3usize {
        t.row(vec![
            k.to_string(),
            format!("{:.0}", reads_per_sec_with_replicas(k)),
        ]);
    }
    t.note("expected shape: throughput climbs with each replica; k=3 is wire-free");
    t
}
