/root/repo/target/debug/deps/edges-07c4d47ed22a452e.d: crates/core/tests/edges.rs

/root/repo/target/debug/deps/edges-07c4d47ed22a452e: crates/core/tests/edges.rs

crates/core/tests/edges.rs:
