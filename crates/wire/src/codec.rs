//! A compact binary codec for the Eden kernel protocol.
//!
//! The codec is deliberately simple: fixed-width little-endian integers,
//! length-prefixed strings and byte strings, tag bytes for enums, and a
//! `u32` element count for sequences. Every decodable type rejects
//! malformed input with a [`CodecError`] rather than panicking, because
//! frames arrive from the network.

use bytes::{BufMut, Bytes, BytesMut};
use eden_capability::{Capability, NodeId, ObjName, Rights};

/// Errors produced while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A length prefix exceeded the sanity limit ([`MAX_SEQ_LEN`]).
    LengthOverflow(u64),
    /// Bytes remained after the outermost value was decoded.
    TrailingBytes(usize),
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadTag { what, tag } => write!(f, "bad tag {tag:#04x} for {what}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            CodecError::LengthOverflow(n) => write!(f, "length prefix {n} exceeds limit"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Upper bound on any length prefix (strings, byte strings, sequences).
///
/// Eden invocation parameters are bounded in practice by what a node is
/// willing to buffer; 64 MiB rejects garbage prefixes early without
/// constraining any real workload in this reproduction.
pub const MAX_SEQ_LEN: u64 = 64 << 20;

/// An append-only encoder over a [`BytesMut`].
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer {
            buf: BytesMut::with_capacity(256),
        }
    }

    /// Creates a writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Finishes encoding and returns the frozen buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Tests whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Writes a little-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.put_u128_le(v);
    }

    /// Writes a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.put_slice(s.as_bytes());
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.put_slice(b);
    }

    /// Writes an `Option` as a presence byte followed by the value.
    pub fn put_option<T: WireEncode>(&mut self, v: &Option<T>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                x.encode(self);
            }
        }
    }

    /// Writes a sequence as a `u32` count followed by the elements.
    pub fn put_seq<T: WireEncode>(&mut self, items: &[T]) {
        self.put_u32(items.len() as u32);
        for item in items {
            item.encode(self);
        }
    }
}

impl Default for Writer {
    fn default() -> Self {
        Writer::new()
    }
}

/// A checked decoder over a byte slice.
///
/// Constructed with [`Reader::new`] over a plain slice, byte-string
/// fields are copied out. Constructed with [`Reader::shared`] over a
/// refcounted [`Bytes`] buffer, [`Reader::get_bytes`] returns slices of
/// the backing buffer instead ([`Bytes::slice`]) — zero-copy, which is
/// what the transport's receive path uses for blob-heavy frames.
pub struct Reader<'a> {
    buf: &'a [u8],
    /// The shared backing buffer in zero-copy mode; `pos` is the offset
    /// of `buf[0]` within it.
    backing: Option<&'a Bytes>,
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader {
            buf,
            backing: None,
            pos: 0,
        }
    }

    /// Creates a zero-copy reader over a shared buffer: byte-string
    /// fields alias `buf` rather than being copied.
    pub fn shared(buf: &'a Bytes) -> Self {
        Reader {
            buf,
            backing: Some(buf),
            pos: 0,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        self.pos += n;
        Ok(head)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn get_u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool; any nonzero byte is `true`.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.get_u8()? != 0)
    }

    fn get_len(&mut self) -> Result<usize, CodecError> {
        let n = self.get_u32()? as u64;
        if n > MAX_SEQ_LEN {
            return Err(CodecError::LengthOverflow(n));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let n = self.get_len()?;
        let raw = self.take(n)?;
        // Validate before allocating: invalid input costs no copy, and
        // valid input costs exactly the one copy a String must own.
        core::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| CodecError::BadUtf8)
    }

    /// Reads a length-prefixed byte string.
    ///
    /// In [`Reader::shared`] mode this is a refcounted slice of the
    /// backing buffer; otherwise it is a fresh copy.
    pub fn get_bytes(&mut self) -> Result<Bytes, CodecError> {
        let n = self.get_len()?;
        let start = self.pos;
        let raw = self.take(n)?;
        Ok(match self.backing {
            Some(b) => b.slice(start..start + n),
            None => Bytes::copy_from_slice(raw),
        })
    }

    /// Reads an `Option` written by [`Writer::put_option`].
    pub fn get_option<T: WireDecode>(&mut self) -> Result<Option<T>, CodecError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(self)?)),
            tag => Err(CodecError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }

    /// Reads a sequence written by [`Writer::put_seq`].
    pub fn get_seq<T: WireDecode>(&mut self) -> Result<Vec<T>, CodecError> {
        let n = self.get_len()?;
        // Cap the preallocation: a hostile count must not OOM the decoder.
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }

    /// Asserts the reader is exhausted (outermost-value decoding).
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.buf.len()))
        }
    }
}

/// Types that can be appended to a [`Writer`].
pub trait WireEncode {
    /// Appends `self` to the writer.
    fn encode(&self, w: &mut Writer);

    /// Encodes `self` into a fresh buffer.
    fn encode_to_bytes(&self) -> Bytes {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Encodes `self` into `scratch`'s spare capacity and returns the
    /// encoded value as a frozen split-off. The allocation stays with
    /// `scratch` for the next value, so steady-state encoding (the
    /// transport's per-frame hot path) allocates only when capacity
    /// runs out rather than once per frame.
    fn encode_reusing(&self, scratch: &mut BytesMut) -> Bytes {
        let mut w = Writer {
            buf: core::mem::take(scratch),
        };
        self.encode(&mut w);
        let mut buf = w.buf;
        let out = buf.split().freeze();
        *scratch = buf;
        out
    }
}

/// Types that can be read back from a [`Reader`].
pub trait WireDecode: Sized {
    /// Decodes one value from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Decodes a value that must consume the entire buffer.
    fn decode_from_bytes(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }

    /// Zero-copy variant of [`WireDecode::decode_from_bytes`]: byte-string
    /// fields become refcounted slices of `buf` instead of fresh copies.
    fn decode_shared(buf: &Bytes) -> Result<Self, CodecError> {
        let mut r = Reader::shared(buf);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

impl WireEncode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

impl WireDecode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_str()
    }
}

impl WireEncode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
}

impl WireDecode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_u64()
    }
}

impl WireEncode for Bytes {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self);
    }
}

impl WireDecode for Bytes {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_bytes()
    }
}

impl WireEncode for NodeId {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(self.0);
    }
}

impl WireDecode for NodeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(NodeId(r.get_u16()?))
    }
}

impl WireEncode for ObjName {
    fn encode(&self, w: &mut Writer) {
        w.put_u128(self.to_u128());
    }
}

impl WireDecode for ObjName {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ObjName::from_u128(r.get_u128()?))
    }
}

impl WireEncode for Rights {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.bits());
    }
}

impl WireDecode for Rights {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Rights::from_bits(r.get_u32()?))
    }
}

impl WireEncode for Capability {
    fn encode(&self, w: &mut Writer) {
        self.name().encode(w);
        self.rights().encode(w);
    }
}

impl WireDecode for Capability {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let name = ObjName::decode(r)?;
        let rights = Rights::decode(r)?;
        Ok(Capability::with_rights(name, rights))
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: WireDecode, B: WireDecode> WireDecode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_capability::{NameGenerator, NodeId};
    use proptest::prelude::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_i64(-12345);
        w.put_f64(2.5);
        w.put_bool(true);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_i64().unwrap(), -12345);
        assert_eq!(r.get_f64().unwrap(), 2.5);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(&r.get_bytes().unwrap()[..], &[1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_input_reports_eof() {
        let mut w = Writer::new();
        w.put_str("abcdef");
        let buf = w.finish();
        let mut r = Reader::new(&buf[..buf.len() - 2]);
        assert_eq!(r.get_str(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.get_str(), Err(CodecError::LengthOverflow(_))));
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_str(), Err(CodecError::BadUtf8));
    }

    #[test]
    fn option_round_trips() {
        let mut w = Writer::new();
        w.put_option(&Some(42u64));
        w.put_option::<u64>(&None);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_option::<u64>().unwrap(), Some(42));
        assert_eq!(r.get_option::<u64>().unwrap(), None);
    }

    #[test]
    fn bad_option_tag_is_rejected() {
        let mut r = Reader::new(&[9]);
        assert!(matches!(
            r.get_option::<u64>(),
            Err(CodecError::BadTag { what: "Option", .. })
        ));
    }

    #[test]
    fn trailing_bytes_detected_by_decode_from_bytes() {
        let mut w = Writer::new();
        w.put_u64(1);
        w.put_u8(0xcc);
        let buf = w.finish();
        assert_eq!(
            u64::decode_from_bytes(&buf),
            Err(CodecError::TrailingBytes(1))
        );
    }

    #[test]
    fn capability_round_trips() {
        let g = NameGenerator::with_epoch(NodeId(4), 77);
        let cap = Capability::mint(g.next_name()).restrict(Rights::READ | Rights::MOVE);
        let buf = cap.encode_to_bytes();
        assert_eq!(Capability::decode_from_bytes(&buf).unwrap(), cap);
    }

    #[test]
    fn shared_reader_slices_instead_of_copying() {
        let mut w = Writer::new();
        w.put_bytes(&[7u8; 64]);
        let buf = w.finish();
        let mut r = Reader::shared(&buf);
        let blob = r.get_bytes().unwrap();
        assert_eq!(&blob[..], &[7u8; 64]);
        // Zero-copy: the blob aliases the backing buffer's allocation.
        let range = buf.as_ptr() as usize..buf.as_ptr() as usize + buf.len();
        assert!(range.contains(&(blob.as_ptr() as usize)));
    }

    #[test]
    fn encode_reusing_round_trips_and_reuses_capacity() {
        let mut scratch = BytesMut::with_capacity(4096);
        for v in [42u64, 43, u64::MAX] {
            let b = v.encode_reusing(&mut scratch);
            assert_eq!(u64::decode_from_bytes(&b).unwrap(), v);
            // Each encode splits its frame off and hands the scratch
            // back empty but still holding its allocation, so the
            // steady state never grows a fresh buffer from zero.
            assert!(scratch.is_empty());
            assert!(scratch.capacity() >= 4096);
        }
    }

    proptest! {
        #[test]
        fn shared_and_copying_decoders_agree(
            blobs in proptest::collection::vec(
                proptest::collection::vec(0u8.., 0..128), 0..8),
            s in ".{0,64}",
        ) {
            let mut w = Writer::new();
            w.put_str(&s);
            w.put_u32(blobs.len() as u32);
            for b in &blobs {
                w.put_bytes(b);
            }
            let buf = w.finish();

            let mut copying = Reader::new(&buf);
            let mut shared = Reader::shared(&buf);
            prop_assert_eq!(copying.get_str().unwrap(), shared.get_str().unwrap());
            let n = copying.get_u32().unwrap();
            prop_assert_eq!(n, shared.get_u32().unwrap());
            for _ in 0..n {
                prop_assert_eq!(copying.get_bytes().unwrap(), shared.get_bytes().unwrap());
            }
            copying.expect_end().unwrap();
            shared.expect_end().unwrap();
        }

        #[test]
        fn objname_round_trips(node in 0u16.., epoch in 0u32.., seq in 0u64..) {
            let n = ObjName::from_parts(NodeId(node), epoch, seq);
            prop_assert_eq!(ObjName::decode_from_bytes(&n.encode_to_bytes()).unwrap(), n);
        }

        #[test]
        fn string_round_trips(s in ".{0,200}") {
            prop_assert_eq!(String::decode_from_bytes(&s.clone().encode_to_bytes()).unwrap(), s);
        }

        #[test]
        fn byte_seq_round_trips(v in proptest::collection::vec(0u64.., 0..64)) {
            let mut w = Writer::new();
            w.put_seq(&v);
            let buf = w.finish();
            let mut r = Reader::new(&buf);
            prop_assert_eq!(r.get_seq::<u64>().unwrap(), v);
            r.expect_end().unwrap();
        }

        #[test]
        fn random_garbage_never_panics(garbage in proptest::collection::vec(0u8.., 0..256)) {
            // Decoding arbitrary bytes as any wire type must fail cleanly,
            // never panic.
            let _ = Capability::decode_from_bytes(&garbage);
            let _ = String::decode_from_bytes(&garbage);
            let mut r = Reader::new(&garbage);
            let _ = r.get_seq::<(u64, String)>();
        }
    }
}
