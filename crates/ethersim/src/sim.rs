//! The event-driven CSMA/CD machine.
//!
//! The model is 1-persistent CSMA/CD on a single shared bus with uniform
//! propagation delay `tau`:
//!
//! * A station senses the channel *as it was `tau` ago*: a transmission
//!   started at `t0` is invisible to others until `t0 + tau`, so two
//!   stations starting within `tau` of each other collide.
//! * Colliding transmitters detect the overlap within `tau`, jam, abort,
//!   and reschedule with truncated binary exponential backoff.
//! * Stations that sense a busy channel defer, and all retry when the
//!   channel goes idle (1-persistence) — which is what makes the
//!   post-transmission contention interval the throughput bottleneck at
//!   high load, exactly the behaviour the analytic model in
//!   [`crate::analytic`] captures.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

use crate::config::EthernetConfig;
use crate::events::EventQueue;
use crate::metrics::{jain_fairness, quantile, Report};
use crate::time::{bits_to_ns, SimTime};
use crate::workload::Workload;

/// Framing overhead added to every payload: preamble (8 bytes), MAC
/// header (14 bytes) and FCS (4 bytes).
const OVERHEAD_BYTES: u32 = 26;

#[derive(Debug, Clone, Copy)]
struct QueuedFrame {
    payload_bytes: u32,
    arrival: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StationState {
    /// Nothing to send, or waiting for a `TryTx` already scheduled.
    Idle,
    /// Has a frame, waiting for the channel to go idle.
    Deferring,
    /// Currently transmitting (the indexed record in `active`).
    Transmitting,
}

struct Station {
    queue: VecDeque<QueuedFrame>,
    state: StationState,
    attempts: u32,
    delivered: u64,
    /// Set when a TryTx event is already pending, to avoid duplicates.
    try_pending: bool,
}

#[derive(Debug, Clone, Copy)]
struct TxRecord {
    id: u64,
    station: usize,
    start: SimTime,
    /// Scheduled end (success) or abort time (collision).
    end: SimTime,
    aborted: bool,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// A new frame arrives at the station's queue.
    Arrival { station: usize },
    /// The station attempts to transmit (sense + start or defer).
    TryTx { station: usize },
    /// A transmission record reaches its end time.
    TxDone { tx_id: u64 },
}

/// The simulator. Construct, then [`EthernetSim::run`].
pub struct EthernetSim {
    config: EthernetConfig,
    workload: Workload,
    rng: SmallRng,
    queue: EventQueue<Event>,
    stations: Vec<Station>,
    active: Vec<TxRecord>,
    next_tx_id: u64,
    now: SimTime,
    horizon: SimTime,
    // Statistics.
    arrivals: u64,
    delivered: u64,
    delivered_payload_bits: u64,
    collisions: u64,
    dropped_excess_collisions: u64,
    dropped_queue_full: u64,
    delays_ns: Vec<u64>,
}

impl EthernetSim {
    /// Builds a simulator for `workload` on a channel described by
    /// `config`, with all randomness derived from `seed`.
    pub fn new(config: EthernetConfig, workload: Workload, seed: u64) -> Self {
        assert!(workload.stations >= 1, "need at least one station");
        let stations = (0..workload.stations)
            .map(|_| Station {
                queue: VecDeque::new(),
                state: StationState::Idle,
                attempts: 0,
                delivered: 0,
                try_pending: false,
            })
            .collect();
        EthernetSim {
            config,
            workload,
            rng: SmallRng::seed_from_u64(seed),
            queue: EventQueue::new(),
            stations,
            active: Vec::new(),
            next_tx_id: 0,
            now: SimTime::ZERO,
            horizon: SimTime::ZERO,
            arrivals: 0,
            delivered: 0,
            delivered_payload_bits: 0,
            collisions: 0,
            dropped_excess_collisions: 0,
            dropped_queue_full: 0,
            delays_ns: Vec::new(),
        }
    }

    /// Runs the simulation for `seconds` of simulated time and reports.
    pub fn run(mut self, seconds: f64) -> Report {
        self.horizon = SimTime((seconds * 1e9) as u64);
        // Prime each station's arrival process.
        for s in 0..self.workload.stations {
            let gap = self
                .workload
                .sample_interarrival_ns(self.config.bit_rate_bps, &mut self.rng);
            self.queue
                .schedule(SimTime(gap), Event::Arrival { station: s });
        }
        while let Some((at, ev)) = self.queue.pop() {
            if at > self.horizon {
                break;
            }
            debug_assert!(at >= self.now, "event time went backwards");
            self.now = at;
            match ev {
                Event::Arrival { station } => self.on_arrival(station),
                Event::TryTx { station } => self.on_try_tx(station),
                Event::TxDone { tx_id } => self.on_tx_done(tx_id),
            }
        }
        self.report(seconds)
    }

    fn on_arrival(&mut self, s: usize) {
        // Schedule the next arrival first (open-loop source).
        let gap = self
            .workload
            .sample_interarrival_ns(self.config.bit_rate_bps, &mut self.rng);
        self.queue
            .schedule(self.now.after_ns(gap), Event::Arrival { station: s });

        let payload = self.workload.frame_sizes.sample(&mut self.rng);
        self.arrivals += 1;
        let st = &mut self.stations[s];
        if st.queue.len() >= self.config.queue_capacity {
            self.dropped_queue_full += 1;
            return;
        }
        st.queue.push_back(QueuedFrame {
            payload_bytes: payload,
            arrival: self.now,
        });
        self.schedule_try(s, self.now);
    }

    /// Schedules a TryTx for station `s` at `at`, unless one is pending or
    /// the station is mid-transmission.
    fn schedule_try(&mut self, s: usize, at: SimTime) {
        let st = &mut self.stations[s];
        if st.try_pending || st.state == StationState::Transmitting || st.queue.is_empty() {
            return;
        }
        st.try_pending = true;
        self.queue.schedule(at, Event::TryTx { station: s });
    }

    /// The channel as sensed at `self.now`: transmissions become audible
    /// `tau` after they start and fade `tau` after they end.
    fn sensed_busy_until(&self) -> Option<SimTime> {
        let tau = self.config.prop_delay_ns;
        let mut busy_until: Option<SimTime> = None;
        for tx in &self.active {
            let audible_from = tx.start.after_ns(tau);
            let audible_to = tx.end.after_ns(tau);
            if audible_from <= self.now && audible_to > self.now {
                busy_until = Some(busy_until.map_or(audible_to, |b| b.max(audible_to)));
            }
        }
        busy_until
    }

    fn on_try_tx(&mut self, s: usize) {
        self.stations[s].try_pending = false;
        if self.stations[s].state == StationState::Transmitting {
            return;
        }
        if self.stations[s].queue.is_empty() {
            self.stations[s].state = StationState::Idle;
            return;
        }
        if let Some(busy_until) = self.sensed_busy_until() {
            // 1-persistent deferral: retry as soon as the channel sounds
            // idle plus the interframe gap.
            self.stations[s].state = StationState::Deferring;
            let retry = busy_until.after_ns(self.config.ifg_ns);
            self.stations[s].try_pending = true;
            self.queue.schedule(retry, Event::TryTx { station: s });
            return;
        }

        // Channel sensed idle: start transmitting.
        let frame = *self.stations[s].queue.front().expect("nonempty");
        let frame_bits = (frame.payload_bytes + OVERHEAD_BYTES) as u64 * 8;
        let duration = bits_to_ns(frame_bits, self.config.bit_rate_bps);
        let tx_id = self.next_tx_id;
        self.next_tx_id += 1;
        let record = TxRecord {
            id: tx_id,
            station: s,
            start: self.now,
            end: self.now.after_ns(duration),
            aborted: false,
        };
        self.stations[s].state = StationState::Transmitting;

        // Anyone else already on the wire started within the last `tau`
        // (otherwise we would have sensed them): that is a collision.
        let tau = self.config.prop_delay_ns;
        let mut collided = false;
        let abort_at = self.now.after_ns(tau + self.config.jam_ns);
        for tx in self.active.iter_mut() {
            if !tx.aborted {
                collided = true;
                tx.aborted = true;
                tx.end = tx.end.min(abort_at);
                self.queue.schedule(tx.end, Event::TxDone { tx_id: tx.id });
            }
        }
        let mut record = record;
        if collided {
            self.collisions += 1;
            record.aborted = true;
            record.end = abort_at;
        }
        self.queue
            .schedule(record.end, Event::TxDone { tx_id: record.id });
        self.active.push(record);
    }

    fn on_tx_done(&mut self, tx_id: u64) {
        // A record may have two TxDone events scheduled (original end and
        // abort); the first one that finds the record consumes it.
        let Some(pos) = self
            .active
            .iter()
            .position(|t| t.id == tx_id && t.end <= self.now)
        else {
            return;
        };
        let tx = self.active.swap_remove(pos);
        let s = tx.station;
        self.stations[s].state = StationState::Idle;

        if tx.aborted {
            self.stations[s].attempts += 1;
            if self.stations[s].attempts > self.config.max_attempts {
                // Undeliverable: drop the frame and move on.
                self.stations[s].queue.pop_front();
                self.stations[s].attempts = 0;
                self.dropped_excess_collisions += 1;
                self.schedule_try(s, self.now.after_ns(self.config.ifg_ns));
            } else {
                let exp = self.stations[s].attempts.min(self.config.max_backoff_exp);
                let slots = self.rng.random_range(0..(1u64 << exp));
                let backoff = slots * self.config.slot_ns + self.config.ifg_ns;
                self.schedule_try(s, self.now.after_ns(backoff));
            }
        } else {
            let frame = self.stations[s].queue.pop_front().expect("frame present");
            self.stations[s].attempts = 0;
            self.stations[s].delivered += 1;
            self.delivered += 1;
            self.delivered_payload_bits += frame.payload_bytes as u64 * 8;
            self.delays_ns.push(self.now.since(frame.arrival));
            self.schedule_try(s, self.now.after_ns(self.config.ifg_ns));
        }
    }

    fn report(mut self, seconds: f64) -> Report {
        let capacity_bits = self.config.capacity_bps() * seconds;
        let per_station: Vec<u64> = self.stations.iter().map(|s| s.delivered).collect();
        let mean_delay_us = if self.delays_ns.is_empty() {
            0.0
        } else {
            self.delays_ns.iter().sum::<u64>() as f64 / self.delays_ns.len() as f64 / 1_000.0
        };
        let p95_delay_us = quantile(&mut self.delays_ns, 0.95) as f64 / 1_000.0;
        let backlog_at_end: u64 = self.stations.iter().map(|s| s.queue.len() as u64).sum();
        Report {
            offered_load: self.workload.offered_load,
            throughput: self.delivered_payload_bits as f64 / capacity_bits,
            arrivals: self.arrivals,
            delivered: self.delivered,
            backlog_at_end,
            dropped_excess_collisions: self.dropped_excess_collisions,
            dropped_queue_full: self.dropped_queue_full,
            collisions: self.collisions,
            mean_delay_us,
            p95_delay_us,
            fairness: jain_fairness(&per_station),
            sim_seconds: seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::FrameSizes;

    fn run(stations: usize, load: f64, seed: u64) -> Report {
        let sim = EthernetSim::new(
            EthernetConfig::dix(),
            Workload {
                stations,
                offered_load: load,
                frame_sizes: FrameSizes::Fixed(1000),
            },
            seed,
        );
        sim.run(2.0)
    }

    #[test]
    fn single_station_at_low_load_delivers_everything() {
        let r = run(1, 0.2, 1);
        assert_eq!(r.collisions, 0, "one station can never collide");
        assert_eq!(r.dropped_excess_collisions, 0);
        // Throughput ≈ offered load (payload bits slightly below thanks to
        // stochastic arrivals, overhead excluded from both sides).
        assert!(
            (r.throughput - 0.2).abs() < 0.03,
            "throughput {} for offered 0.2",
            r.throughput
        );
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        let r1 = run(8, 0.1, 7);
        let r3 = run(8, 0.3, 7);
        let r5 = run(8, 0.5, 7);
        assert!(r1.throughput < r3.throughput && r3.throughput < r5.throughput);
        for r in [&r1, &r3, &r5] {
            assert!(
                (r.throughput - r.offered_load).abs() < 0.05,
                "below saturation throughput {} should track load {}",
                r.throughput,
                r.offered_load
            );
        }
    }

    #[test]
    fn overload_saturates_below_capacity() {
        let r = run(16, 1.6, 11);
        assert!(
            r.throughput < 1.0,
            "cannot exceed capacity: {}",
            r.throughput
        );
        assert!(
            r.throughput > 0.5,
            "1000-byte frames should keep efficiency high: {}",
            r.throughput
        );
        assert!(r.collisions > 0, "overload must produce collisions");
    }

    #[test]
    fn collisions_increase_with_load() {
        let low = run(16, 0.2, 3);
        let high = run(16, 1.2, 3);
        assert!(
            high.collisions > low.collisions * 2,
            "low {} high {}",
            low.collisions,
            high.collisions
        );
    }

    #[test]
    fn delay_increases_with_load() {
        let low = run(8, 0.2, 9);
        let high = run(8, 1.4, 9);
        assert!(
            high.mean_delay_us > 2.0 * low.mean_delay_us,
            "low {} high {}",
            low.mean_delay_us,
            high.mean_delay_us
        );
    }

    #[test]
    fn identical_seeds_give_identical_reports() {
        let a = run(12, 0.9, 1234);
        let b = run(12, 0.9, 1234);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_event_histories() {
        let a = run(12, 0.9, 1);
        let b = run(12, 0.9, 2);
        assert_ne!(
            (a.delivered, a.collisions),
            (b.delivered, b.collisions),
            "distinct seeds should explore distinct histories"
        );
    }

    #[test]
    fn saturated_access_is_roughly_fair() {
        let r = run(8, 1.5, 21);
        assert!(
            r.fairness > 0.9,
            "binary exponential backoff should stay roughly fair over long runs: {}",
            r.fairness
        );
    }

    #[test]
    fn small_frames_are_less_efficient_than_large_at_saturation() {
        let small = EthernetSim::new(
            EthernetConfig::dix(),
            Workload {
                stations: 16,
                offered_load: 1.5,
                frame_sizes: FrameSizes::Fixed(64),
            },
            5,
        )
        .run(2.0);
        let large = EthernetSim::new(
            EthernetConfig::dix(),
            Workload {
                stations: 16,
                offered_load: 1.5,
                frame_sizes: FrameSizes::Fixed(1500),
            },
            5,
        )
        .run(2.0);
        assert!(
            large.throughput > small.throughput,
            "large {} vs small {}",
            large.throughput,
            small.throughput
        );
    }

    #[test]
    fn saturation_efficiency_is_in_the_analytic_ballpark() {
        // 16 saturated stations, 1000-byte frames. The Metcalfe-Boggs model
        // ignores jam/IFG/backoff dynamics, so require agreement within a
        // generous band — the *shape* test above is the strong check.
        let sim = run(16, 2.0, 99);
        let model = crate::analytic::saturation_efficiency(16, 1000 * 8, 512);
        assert!(
            (sim.throughput - model).abs() < 0.25,
            "sim {} vs model {}",
            sim.throughput,
            model
        );
    }

    #[test]
    fn queue_overflow_is_counted_not_lost() {
        let mut config = EthernetConfig::dix();
        config.queue_capacity = 2;
        let r = EthernetSim::new(
            config,
            Workload {
                stations: 4,
                offered_load: 3.0,
                frame_sizes: FrameSizes::Fixed(1500),
            },
            8,
        )
        .run(1.0);
        assert!(r.dropped_queue_full > 0);
    }
}

#[cfg(test)]
mod conservation_tests {
    use super::*;
    use crate::aloha::{AlohaConfig, AlohaSim};
    use crate::workload::FrameSizes;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Every generated frame must be delivered, dropped, or counted
        /// as backlog — in both simulators, across random configurations.
        #[test]
        fn frames_are_conserved(
            stations in 1usize..24,
            load in 0.05f64..2.5,
            frame in prop_oneof![Just(64u32), Just(512), Just(1500)],
            seed in 0u64..,
        ) {
            let workload = Workload {
                stations,
                offered_load: load,
                frame_sizes: FrameSizes::Fixed(frame),
            };
            let csma = EthernetSim::new(EthernetConfig::dix(), workload, seed).run(0.25);
            prop_assert!(
                csma.conserves_frames(),
                "csma: {} arrivals vs {} delivered + {} + {} dropped + {} backlog",
                csma.arrivals, csma.delivered, csma.dropped_excess_collisions,
                csma.dropped_queue_full, csma.backlog_at_end
            );
            let aloha = AlohaSim::new(AlohaConfig::classic(frame), workload, seed).run(0.25);
            prop_assert!(aloha.conserves_frames());
        }

        /// Throughput can never exceed offered load or channel capacity.
        #[test]
        fn throughput_is_bounded(
            stations in 1usize..24,
            load in 0.05f64..2.5,
            seed in 0u64..,
        ) {
            let workload = Workload {
                stations,
                offered_load: load,
                frame_sizes: FrameSizes::Fixed(1000),
            };
            let r = EthernetSim::new(EthernetConfig::dix(), workload, seed).run(0.25);
            prop_assert!(r.throughput <= 1.0 + 1e-9);
            // Delivered payload cannot exceed generated payload.
            prop_assert!(r.delivered <= r.arrivals);
        }
    }
}
