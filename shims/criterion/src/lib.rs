//! In-tree shim for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, throughput annotation, the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! calibrated-batch timer instead of criterion's statistical machinery.
//! Each benchmark prints its median and mean per-iteration time.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples of calibrated
    /// batches within roughly `measurement_time`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: how many iterations fit in one sample?
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut calib_iters = 0u64;
        let calib_start = Instant::now();
        loop {
            black_box(routine());
            calib_iters += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / batch as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

#[derive(Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Sets the target number of samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Parses CLI options in real criterion; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_one(&self.settings, None, &id.into(), None, f);
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Sets the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the warm-up budget for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(
            &self.settings,
            Some(&self.name),
            &id.into(),
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.settings,
            Some(&self.name),
            &id.into(),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    settings: &Settings,
    group: Option<&str>,
    id: &BenchmarkId,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    let mut b = Bencher {
        samples: Vec::with_capacity(settings.sample_size),
        sample_size: settings.sample_size,
        measurement_time: settings.measurement_time,
        warm_up_time: settings.warm_up_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    b.samples.sort_by(|a, b| a.total_cmp(b));
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / median / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => format!("  {:>10.0} elem/s", n as f64 / median),
        None => String::new(),
    };
    println!(
        "{label:<40} time: [median {} mean {}]{rate}",
        fmt_time(median),
        fmt_time(mean)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::from_parameter(1), &1u64, |b, &x| {
            b.iter(|| black_box(x) + 1)
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| 2 + 2));
    }
}
