/root/repo/target/debug/deps/failover-20ab0f54c3cda1d5.d: tests/failover.rs

/root/repo/target/debug/deps/failover-20ab0f54c3cda1d5: tests/failover.rs

tests/failover.rs:
