/root/repo/target/debug/deps/codec-939d9e368f5a96bd.d: crates/bench/benches/codec.rs

/root/repo/target/debug/deps/codec-939d9e368f5a96bd: crates/bench/benches/codec.rs

crates/bench/benches/codec.rs:
