//! L7 `blocking-discipline`: a virtual-processor worker must not block
//! the processor. Blocking operations (`recv_timeout`, `wait`,
//! `wait_timeout`, `sleep`, `fsync`, `connect`, `dial`, `join`) that
//! are lexically inside a `submit(…)`/`submit_traced(…)` closure, or
//! inside a function reachable (same-crate, name-resolved call graph)
//! from one, must be wrapped in the pool's `blocking(…)` spare-
//! injection guard.
//!
//! `crates/core/src/vproc.rs` is out of scope: it *is* the pool — its
//! condvar waits are the scheduler, and `blocking()` itself must block.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::model::Workspace;
use crate::{Finding, Rule};

const SCOPE: [&str; 3] = ["core", "transport", "directory"];
const POOL_IMPL: &str = "crates/core/src/vproc.rs";

pub(crate) fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    // Roots: call targets inside submit closures, per crate. A call
    // already under a blocking() guard is exempt — the pool has been
    // told this path may stall.
    let mut roots: BTreeSet<(String, String)> = BTreeSet::new();
    for file in scoped(ws) {
        for f in &file.fns {
            for c in &f.calls {
                if c.in_submit && !c.guarded && !c.in_spawn {
                    roots.insert((file.crate_key.clone(), c.callee.clone()));
                }
            }
        }
    }

    // BFS over unguarded call edges; remember which root reaches each
    // function for the diagnostic.
    let mut fn_index: HashMap<(String, String), Vec<(usize, usize)>> = HashMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !SCOPE.contains(&file.crate_key.as_str()) {
            continue;
        }
        for (gi, f) in file.fns.iter().enumerate() {
            fn_index
                .entry((file.crate_key.clone(), f.name.clone()))
                .or_default()
                .push((fi, gi));
        }
    }
    let mut reached: HashMap<(String, String), String> = HashMap::new();
    let mut queue: VecDeque<(String, String)> = VecDeque::new();
    for (krate, name) in &roots {
        let key = (krate.clone(), name.clone());
        if fn_index.contains_key(&key) && !reached.contains_key(&key) {
            reached.insert(key.clone(), name.clone());
            queue.push_back(key);
        }
    }
    while let Some(key) = queue.pop_front() {
        let root = reached[&key].clone();
        for &(fi, gi) in &fn_index[&key] {
            let file = &ws.files[fi];
            for c in &file.fns[gi].calls {
                if c.guarded || c.in_spawn {
                    // blocking() has told the pool; spawn closures run on
                    // their own thread, which is allowed to block.
                    continue;
                }
                let next = (key.0.clone(), c.callee.clone());
                if fn_index.contains_key(&next) && !reached.contains_key(&next) {
                    reached.insert(next.clone(), root.clone());
                    queue.push_back(next);
                }
            }
        }
    }

    // Findings: unguarded blocking sites in reachable functions, plus
    // unguarded blocking sites lexically inside submit closures.
    let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
    for file in scoped(ws) {
        for f in &file.fns {
            let via_root = reached.get(&(file.crate_key.clone(), f.name.clone()));
            for b in &f.blocking {
                if b.guarded || b.in_spawn {
                    continue; // dedicated threads are allowed to block
                }
                let reachable = via_root.is_some() || b.in_submit;
                if !reachable {
                    continue;
                }
                let line = file.model.line_of(b.at);
                if !seen.insert((file.rel_path.clone(), line)) {
                    continue;
                }
                let how = match via_root {
                    Some(root) if !b.in_submit => {
                        format!("in `{}`, reachable from pool entry point `{root}`", f.name)
                    }
                    _ => "inside a pool submit closure".to_string(),
                };
                out.push(Finding {
                    rule: Rule::BlockingDiscipline,
                    file: file.rel_path.clone(),
                    line,
                    message: format!(
                        "blocking `.{}(…)` {how}; it would stall a virtual processor — \
                         wrap the call in VirtualProcessorPool::blocking(…) so the pool \
                         injects a spare worker",
                        b.what
                    ),
                    suppressed: false,
                });
            }
        }
    }
}

fn scoped(ws: &Workspace) -> impl Iterator<Item = &crate::model::FileModel> {
    ws.files
        .iter()
        .filter(|f| SCOPE.contains(&f.crate_key.as_str()) && f.rel_path != POOL_IMPL)
}
