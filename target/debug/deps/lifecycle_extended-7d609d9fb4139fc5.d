/root/repo/target/debug/deps/lifecycle_extended-7d609d9fb4139fc5.d: crates/core/tests/lifecycle_extended.rs

/root/repo/target/debug/deps/lifecycle_extended-7d609d9fb4139fc5: crates/core/tests/lifecycle_extended.rs

crates/core/tests/lifecycle_extended.rs:
