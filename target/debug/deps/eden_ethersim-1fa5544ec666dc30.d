/root/repo/target/debug/deps/eden_ethersim-1fa5544ec666dc30.d: crates/ethersim/src/lib.rs crates/ethersim/src/aloha.rs crates/ethersim/src/analytic.rs crates/ethersim/src/config.rs crates/ethersim/src/events.rs crates/ethersim/src/metrics.rs crates/ethersim/src/sim.rs crates/ethersim/src/time.rs crates/ethersim/src/workload.rs

/root/repo/target/debug/deps/eden_ethersim-1fa5544ec666dc30: crates/ethersim/src/lib.rs crates/ethersim/src/aloha.rs crates/ethersim/src/analytic.rs crates/ethersim/src/config.rs crates/ethersim/src/events.rs crates/ethersim/src/metrics.rs crates/ethersim/src/sim.rs crates/ethersim/src/time.rs crates/ethersim/src/workload.rs

crates/ethersim/src/lib.rs:
crates/ethersim/src/aloha.rs:
crates/ethersim/src/analytic.rs:
crates/ethersim/src/config.rs:
crates/ethersim/src/events.rs:
crates/ethersim/src/metrics.rs:
crates/ethersim/src/sim.rs:
crates/ethersim/src/time.rs:
crates/ethersim/src/workload.rs:
