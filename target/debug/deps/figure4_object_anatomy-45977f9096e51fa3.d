/root/repo/target/debug/deps/figure4_object_anatomy-45977f9096e51fa3.d: tests/figure4_object_anatomy.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4_object_anatomy-45977f9096e51fa3.rmeta: tests/figure4_object_anatomy.rs Cargo.toml

tests/figure4_object_anatomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
