//! The per-node flight recorder: a fixed-capacity ring of typed kernel
//! events for after-the-fact debugging of failover experiments.
//!
//! The kernel appends an event at each §4.3/§4.4 lifecycle edge — moves,
//! reincarnations, crashes, forwards, retransmissions, `WhereIs`
//! broadcasts. The ring is bounded, so a long-running node keeps only
//! the recent past — exactly what a postmortem wants.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::clock::now_ns;

/// One kind of kernel lifecycle event. Object names are carried as their
/// `u128` wire form (this crate sits below `eden-capability`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelEvent {
    /// An object's active form was discarded (`crash` primitive or node
    /// teardown).
    Crash { obj: u128 },
    /// An object was rebuilt from its last checkpoint on this node.
    Reincarnation { obj: u128, version: u64 },
    /// A checkpoint was written for an object.
    CheckpointWrite { obj: u128, version: u64 },
    /// An active object left this node.
    MoveOut { obj: u128, dst: u16 },
    /// An active object arrived at this node.
    MoveIn { obj: u128, src: u16 },
    /// An invocation was forwarded after a move.
    Forward { obj: u128, dst: u16 },
    /// A pending remote invocation was retransmitted.
    Retransmit { inv_id: u64, dst: u16 },
    /// A remote invocation attempt timed out (candidate node presumed
    /// crashed or partitioned).
    RemoteTimeout { dst: u16 },
    /// This node broadcast a `WhereIs` location search.
    WhereIsBroadcast { obj: u128 },
    /// This node asked (or consulted itself as) an object's directory
    /// home node for the registered holder.
    DirectoryQuery { obj: u128, home: u16 },
    /// This node registered a holder fact at an object's directory home.
    DirectoryRegister { obj: u128, home: u16 },
    /// Gossip began suspecting a peer (unrefuted probe timeout).
    MemberSuspect { node: u16 },
    /// Gossip declared a peer dead; its registrations and hints are
    /// purged until it refutes.
    MemberDead { node: u16 },
    /// A peer believed suspect or dead proved alive again.
    MemberAlive { node: u16 },
    /// The stall watchdog found a virtual-processor worker stuck past
    /// the deadline, or queued work older than it (`worker` is
    /// `u16::MAX` when the stall is queue-age rather than a specific
    /// worker).
    VprocStall {
        worker: u16,
        age_ms: u64,
        queued: u64,
    },
    /// The stall watchdog found a transport writer whose per-peer queue
    /// has not drained within the deadline.
    WriterStall { dst: u16, age_ms: u64, queued: u64 },
    /// The stall watchdog found an invocation in flight longer than the
    /// slow-invocation budget (`trace` is the trace id, 0 if untraced).
    SlowInvocation {
        inv_id: u64,
        age_ms: u64,
        trace: u64,
    },
    /// The TCP transport dropped an inbound connection for a protocol
    /// violation (the reader pool never dies silently).
    InboundDropped {
        peer: std::net::SocketAddr,
        reason: InboundDropReason,
    },
    /// This node shut down.
    NodeShutdown,
}

/// Why an inbound TCP connection was dropped (see
/// [`KernelEvent::InboundDropped`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InboundDropReason {
    /// The length prefix exceeded the frame-size ceiling: hostile or
    /// corrupt peer.
    Oversized,
    /// A well-framed payload failed to decode: the stream is
    /// unsynchronized.
    Codec,
}

impl InboundDropReason {
    /// Stable lowercase token, used by the wire codec and JSONL export.
    pub fn as_str(&self) -> &'static str {
        match self {
            InboundDropReason::Oversized => "oversized",
            InboundDropReason::Codec => "codec",
        }
    }

    /// Inverse of [`InboundDropReason::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "oversized" => Some(InboundDropReason::Oversized),
            "codec" => Some(InboundDropReason::Codec),
            _ => None,
        }
    }
}

impl fmt::Display for InboundDropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Display for KernelEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn short(obj: &u128) -> u64 {
            // Low 64 bits are enough to identify an object in a dump.
            *obj as u64
        }
        match self {
            KernelEvent::Crash { obj } => write!(f, "crash obj={:#x}", short(obj)),
            KernelEvent::Reincarnation { obj, version } => {
                write!(f, "reincarnation obj={:#x} v{version}", short(obj))
            }
            KernelEvent::CheckpointWrite { obj, version } => {
                write!(f, "checkpoint obj={:#x} v{version}", short(obj))
            }
            KernelEvent::MoveOut { obj, dst } => {
                write!(f, "move-out obj={:#x} -> node {dst}", short(obj))
            }
            KernelEvent::MoveIn { obj, src } => {
                write!(f, "move-in obj={:#x} <- node {src}", short(obj))
            }
            KernelEvent::Forward { obj, dst } => {
                write!(f, "forward obj={:#x} -> node {dst}", short(obj))
            }
            KernelEvent::Retransmit { inv_id, dst } => {
                write!(f, "retransmit inv={inv_id} -> node {dst}")
            }
            KernelEvent::RemoteTimeout { dst } => write!(f, "remote-timeout node {dst}"),
            KernelEvent::WhereIsBroadcast { obj } => {
                write!(f, "where-is broadcast obj={:#x}", short(obj))
            }
            KernelEvent::DirectoryQuery { obj, home } => {
                write!(f, "dir-query obj={:#x} home node {home}", short(obj))
            }
            KernelEvent::DirectoryRegister { obj, home } => {
                write!(f, "dir-register obj={:#x} home node {home}", short(obj))
            }
            KernelEvent::MemberSuspect { node } => write!(f, "member-suspect node {node}"),
            KernelEvent::MemberDead { node } => write!(f, "member-dead node {node}"),
            KernelEvent::MemberAlive { node } => write!(f, "member-alive node {node}"),
            KernelEvent::VprocStall {
                worker,
                age_ms,
                queued,
            } => {
                if *worker == u16::MAX {
                    write!(f, "vproc-stall queue age {age_ms} ms ({queued} queued)")
                } else {
                    write!(
                        f,
                        "vproc-stall worker {worker} busy {age_ms} ms ({queued} queued)"
                    )
                }
            }
            KernelEvent::WriterStall {
                dst,
                age_ms,
                queued,
            } => {
                write!(
                    f,
                    "writer-stall dst node {dst} undrained {age_ms} ms ({queued} queued)"
                )
            }
            KernelEvent::SlowInvocation {
                inv_id,
                age_ms,
                trace,
            } => {
                write!(
                    f,
                    "slow-invocation inv={inv_id} in flight {age_ms} ms trace={trace:#x}"
                )
            }
            KernelEvent::InboundDropped { peer, reason } => {
                write!(f, "inbound-dropped peer {peer} reason {reason}")
            }
            KernelEvent::NodeShutdown => write!(f, "node shutdown"),
        }
    }
}

/// Recording order across *every* recorder in the process. Like the
/// process-wide clock epoch, a single counter means events from
/// different in-process nodes carry comparable sequence numbers, so a
/// merged multi-node JSONL stream is totally orderable by `seq` even
/// when `at_ns` timestamps tie.
static GLOBAL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A recorded event: sequence number (process-global, monotone),
/// timestamp on the process-wide clock, and the event itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Process-global monotone sequence number: unique across all
    /// recorders in the process and consistent with recording order, so
    /// merged multi-node streams sort into one total order.
    pub seq: u64,
    /// Nanoseconds on the process-wide clock.
    pub at_ns: u64,
    /// What happened.
    pub event: KernelEvent,
}

/// A fixed-capacity ring buffer of [`FlightEvent`]s.
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<FlightEvent>>,
}

impl FlightRecorder {
    /// Creates a recorder retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// Appends an event, evicting the oldest at capacity. The sequence
    /// number is drawn from the process-global counter.
    pub fn record(&self, event: KernelEvent) {
        let seq = GLOBAL_SEQ.fetch_add(1, Ordering::Relaxed);
        let entry = FlightEvent {
            seq,
            at_ns: now_ns(),
            event,
        };
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// The `n` most recent events, oldest first.
    pub fn last(&self, n: usize) -> Vec<FlightEvent> {
        let all = self.events();
        let skip = all.len().saturating_sub(n);
        all.into_iter().skip(skip).collect()
    }

    /// Text dump of the last `n` events, one per line.
    pub fn dump(&self, n: usize) -> String {
        let mut out = String::new();
        for e in self.last(n) {
            out.push_str(&format!(
                "[{:>6}] {:>12.3} ms  {}\n",
                e.seq,
                e.at_ns as f64 / 1e6,
                e.event
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_last_n_in_order() {
        let r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.record(KernelEvent::Retransmit { inv_id: i, dst: 0 });
        }
        let events = r.events();
        // Only the newest 3 of the 5 survive (payloads 2, 3, 4), and the
        // global sequence numbers are strictly increasing in ring order.
        let payloads: Vec<u64> = events
            .iter()
            .map(|e| match e.event {
                KernelEvent::Retransmit { inv_id, .. } => inv_id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(payloads, vec![2, 3, 4]);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(r.last(2).len(), 2);
        assert_eq!(r.last(99).len(), 3);
    }

    #[test]
    fn sequence_is_global_across_recorders() {
        // Two recorders model two in-process nodes: their merged event
        // streams must sort into one total order by `seq`.
        let (a, b) = (FlightRecorder::new(8), FlightRecorder::new(8));
        a.record(KernelEvent::NodeShutdown);
        b.record(KernelEvent::NodeShutdown);
        a.record(KernelEvent::NodeShutdown);
        let mut merged = a.events();
        merged.extend(b.events());
        let mut seqs: Vec<u64> = merged.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 3, "global seqs must be unique across rings");
    }

    #[test]
    fn dump_renders_every_event_kind() {
        let r = FlightRecorder::new(16);
        r.record(KernelEvent::Crash { obj: 1 });
        r.record(KernelEvent::Reincarnation { obj: 1, version: 2 });
        r.record(KernelEvent::CheckpointWrite { obj: 1, version: 3 });
        r.record(KernelEvent::MoveOut { obj: 1, dst: 2 });
        r.record(KernelEvent::MoveIn { obj: 1, src: 0 });
        r.record(KernelEvent::Forward { obj: 1, dst: 2 });
        r.record(KernelEvent::Retransmit { inv_id: 9, dst: 1 });
        r.record(KernelEvent::RemoteTimeout { dst: 1 });
        r.record(KernelEvent::WhereIsBroadcast { obj: 1 });
        r.record(KernelEvent::VprocStall {
            worker: 0,
            age_ms: 120,
            queued: 4,
        });
        r.record(KernelEvent::WriterStall {
            dst: 2,
            age_ms: 250,
            queued: 8,
        });
        r.record(KernelEvent::SlowInvocation {
            inv_id: 5,
            age_ms: 900,
            trace: 0x7,
        });
        r.record(KernelEvent::NodeShutdown);
        let dump = r.dump(16);
        for needle in [
            "crash",
            "reincarnation",
            "checkpoint",
            "move-out",
            "move-in",
            "forward",
            "retransmit",
            "remote-timeout",
            "where-is",
            "vproc-stall",
            "writer-stall",
            "slow-invocation",
            "shutdown",
        ] {
            assert!(dump.contains(needle), "missing {needle} in dump:\n{dump}");
        }
    }
}
