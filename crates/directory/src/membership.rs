//! SWIM-style gossip membership (Das, Gupta, Motivala: "SWIM: Scalable
//! Weakly-consistent Infection-style Process Group Membership Protocol").
//!
//! Each node probes one peer per protocol period with a direct
//! [`Message::GossipPing`]; if the ack does not arrive in time it asks a few
//! other peers to probe indirectly ([`Message::GossipPingReq`]) before
//! declaring the peer *suspect*. Suspicion that is not refuted within the
//! suspicion timeout hardens into *dead*. Every gossip frame piggybacks a
//! bounded batch of membership rumors ([`MemberUpdate`]), so liveness state
//! spreads infection-style without any extra message load. A falsely
//! accused member refutes by re-announcing itself with a higher
//! *incarnation* number — only the member itself may bump its incarnation.
//!
//! The state machine is deterministic and thread-free: every entry point
//! takes an explicit `now` and returns the frames to transmit, so the
//! kernel's existing receive loop can drive it (no new threads — see the
//! eden-lint pool-discipline rule) and unit tests can single-step time.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use eden_capability::NodeId;
use eden_wire::{MemberStatus, MemberUpdate, Message};

/// Timing and fan-out knobs of the gossip protocol.
#[derive(Debug, Clone, Copy)]
pub struct GossipConfig {
    /// Protocol period: one direct probe is launched per interval.
    pub probe_interval: Duration,
    /// How long to wait for a direct ack before probing indirectly, and
    /// again for the indirect round before suspecting the target.
    pub probe_timeout: Duration,
    /// How long a suspect may remain unrefuted before it is declared dead.
    pub suspect_timeout: Duration,
    /// How many relays an indirect probe round enlists.
    pub indirect_probes: usize,
    /// How many times each rumor is piggybacked before it retires.
    pub rumor_fanout: u32,
    /// Upper bound on rumors attached to a single gossip frame.
    pub piggyback_max: usize,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            probe_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_millis(200),
            suspect_timeout: Duration::from_millis(600),
            indirect_probes: 2,
            rumor_fanout: 6,
            piggyback_max: 16,
        }
    }
}

/// A liveness transition another subsystem may care about (the kernel
/// purges hints and re-registers directory entries on these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberEvent {
    /// The member is (again) reachable.
    Alive(NodeId),
    /// Probes are failing; the directory withholds its registrations.
    Suspect(NodeId),
    /// The suspicion timeout expired.
    Dead(NodeId),
}

/// Frames to send and events to act on, returned by every entry point.
#[derive(Debug, Default)]
pub struct GossipOutput {
    /// Unicast frames to transmit, as `(destination, message)` pairs.
    pub msgs: Vec<(NodeId, Message)>,
    /// Liveness transitions observed while processing.
    pub events: Vec<MemberEvent>,
}

#[derive(Debug, Clone, Copy)]
struct MemberState {
    status: MemberStatus,
    incarnation: u64,
    /// When `status` last changed (drives the suspicion timeout).
    since: Instant,
}

#[derive(Debug, Clone, Copy)]
struct PendingProbe {
    target: NodeId,
    seq: u64,
    sent_at: Instant,
    indirect_sent: bool,
}

/// One node's view of the cluster membership.
#[derive(Debug)]
pub struct Membership {
    self_id: NodeId,
    /// Own incarnation; bumped only to refute a suspicion about self.
    incarnation: u64,
    cfg: GossipConfig,
    /// Peers (never contains `self_id`); BTreeMap for deterministic order.
    members: BTreeMap<NodeId, MemberState>,
    rumors: Vec<(MemberUpdate, u32)>,
    pending: Option<PendingProbe>,
    next_probe_at: Instant,
    probe_cursor: usize,
    next_seq: u64,
}

impl Membership {
    /// Seeds the view with every known peer alive (the mesh's static peer
    /// set stands in for a join protocol; S1 names carry the birth node,
    /// so peers are known at boot).
    pub fn new(self_id: NodeId, peers: &[NodeId], cfg: GossipConfig, now: Instant) -> Self {
        let members = peers
            .iter()
            .filter(|p| **p != self_id)
            .map(|p| {
                (
                    *p,
                    MemberState {
                        status: MemberStatus::Alive,
                        incarnation: 0,
                        since: now,
                    },
                )
            })
            .collect();
        Membership {
            self_id,
            incarnation: 0,
            cfg,
            members,
            rumors: Vec::new(),
            pending: None,
            next_probe_at: now + cfg.probe_interval,
            probe_cursor: self_id.0 as usize,
            next_seq: 1,
        }
    }

    /// Advances timers: escalates the pending probe (indirect round, then
    /// suspicion), expires suspects into deads, and launches the next
    /// direct probe when the protocol period elapses.
    pub fn tick(&mut self, now: Instant) -> GossipOutput {
        let mut out = GossipOutput::default();

        if let Some(probe) = self.pending {
            if !probe.indirect_sent && now >= probe.sent_at + self.cfg.probe_timeout {
                let relays: Vec<NodeId> = self
                    .members
                    .iter()
                    .filter(|(n, m)| **n != probe.target && m.status != MemberStatus::Dead)
                    .map(|(n, _)| *n)
                    .take(self.cfg.indirect_probes)
                    .collect();
                for relay in relays {
                    let updates = self.piggyback();
                    out.msgs.push((
                        relay,
                        Message::GossipPingReq {
                            seq: probe.seq,
                            target: probe.target,
                            reply_to: self.self_id,
                            updates,
                        },
                    ));
                }
                if let Some(p) = self.pending.as_mut() {
                    p.indirect_sent = true;
                }
            } else if probe.indirect_sent && now >= probe.sent_at + 2 * self.cfg.probe_timeout {
                self.pending = None;
                self.suspect(probe.target, now, &mut out);
            }
        }

        let expired: Vec<NodeId> = self
            .members
            .iter()
            .filter(|(_, m)| {
                m.status == MemberStatus::Suspect && now >= m.since + self.cfg.suspect_timeout
            })
            .map(|(n, _)| *n)
            .collect();
        for node in expired {
            self.transition(node, MemberStatus::Dead, None, now, &mut out);
        }

        if self.pending.is_none() && now >= self.next_probe_at {
            self.next_probe_at = now + self.cfg.probe_interval;
            if let Some(target) = self.next_probe_target() {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.pending = Some(PendingProbe {
                    target,
                    seq,
                    sent_at: now,
                    indirect_sent: false,
                });
                let updates = self.piggyback();
                out.msgs.push((
                    target,
                    Message::GossipPing {
                        seq,
                        reply_to: self.self_id,
                        updates,
                    },
                ));
            }
        }

        out
    }

    /// A direct probe arrived: answer to `reply_to` (the original prober,
    /// which differs from `from` when the ping was relayed).
    pub fn handle_ping(
        &mut self,
        from: NodeId,
        seq: u64,
        reply_to: NodeId,
        updates: &[MemberUpdate],
        now: Instant,
    ) -> GossipOutput {
        let mut out = GossipOutput::default();
        self.note_contact(from, now, &mut out);
        self.apply_updates(updates, now, &mut out);
        let piggyback = self.piggyback();
        out.msgs.push((
            reply_to,
            Message::GossipAck {
                seq,
                updates: piggyback,
            },
        ));
        out
    }

    /// An ack arrived for (possibly) our pending probe.
    pub fn handle_ack(
        &mut self,
        from: NodeId,
        seq: u64,
        updates: &[MemberUpdate],
        now: Instant,
    ) -> GossipOutput {
        let mut out = GossipOutput::default();
        self.note_contact(from, now, &mut out);
        self.apply_updates(updates, now, &mut out);
        if let Some(probe) = self.pending {
            if probe.seq == seq {
                self.pending = None;
                self.note_contact(probe.target, now, &mut out);
            }
        }
        out
    }

    /// Relay an indirect probe on behalf of a prober whose direct ping
    /// timed out; the target acks straight back to the prober.
    pub fn handle_ping_req(
        &mut self,
        from: NodeId,
        seq: u64,
        target: NodeId,
        reply_to: NodeId,
        updates: &[MemberUpdate],
        now: Instant,
    ) -> GossipOutput {
        let mut out = GossipOutput::default();
        self.note_contact(from, now, &mut out);
        self.apply_updates(updates, now, &mut out);
        let piggyback = self.piggyback();
        out.msgs.push((
            target,
            Message::GossipPing {
                seq,
                reply_to,
                updates: piggyback,
            },
        ));
        out
    }

    /// Direct evidence of life: any gossip frame from a node overrides a
    /// local suspect/dead verdict (rumors only beat rumors; contact beats
    /// both). The node still refutes on its own behalf once it hears the
    /// rumor, which is what convinces third parties.
    fn note_contact(&mut self, from: NodeId, now: Instant, out: &mut GossipOutput) {
        if from == self.self_id {
            return;
        }
        let incarnation = self.members.get(&from).map(|m| m.incarnation);
        if let Some(m) = self.members.get(&from) {
            if m.status == MemberStatus::Alive {
                return;
            }
        }
        self.transition(from, MemberStatus::Alive, incarnation, now, out);
    }

    fn suspect(&mut self, target: NodeId, now: Instant, out: &mut GossipOutput) {
        let still_alive = self
            .members
            .get(&target)
            .map(|m| m.status == MemberStatus::Alive)
            .unwrap_or(false);
        if still_alive {
            self.transition(target, MemberStatus::Suspect, None, now, out);
        }
    }

    /// Applies one rumor batch with SWIM precedence: higher incarnation
    /// wins; at equal incarnation `Dead` > `Suspect` > `Alive`.
    fn apply_updates(&mut self, updates: &[MemberUpdate], now: Instant, out: &mut GossipOutput) {
        for u in updates {
            if u.node == self.self_id {
                // A rumor says we are suspect or dead: refute with a
                // higher incarnation (only we may bump it).
                if u.status != MemberStatus::Alive && u.incarnation >= self.incarnation {
                    self.incarnation = u.incarnation + 1;
                    let refutation = MemberUpdate {
                        node: self.self_id,
                        incarnation: self.incarnation,
                        status: MemberStatus::Alive,
                    };
                    self.enqueue_rumor(refutation);
                }
                continue;
            }
            let known = self.members.get(&u.node).copied();
            let adopt = match known {
                None => true,
                Some(m) => {
                    u.incarnation > m.incarnation
                        || (u.incarnation == m.incarnation && u.status > m.status)
                }
            };
            if adopt {
                self.transition(u.node, u.status, Some(u.incarnation), now, out);
            }
        }
    }

    /// Records a status change, emits the event, and re-disseminates it.
    fn transition(
        &mut self,
        node: NodeId,
        status: MemberStatus,
        incarnation: Option<u64>,
        now: Instant,
        out: &mut GossipOutput,
    ) {
        let entry = self.members.entry(node).or_insert(MemberState {
            status: MemberStatus::Alive,
            incarnation: 0,
            since: now,
        });
        let changed = entry.status != status;
        entry.status = status;
        if let Some(inc) = incarnation {
            entry.incarnation = inc;
        }
        if changed {
            entry.since = now;
            out.events.push(match status {
                MemberStatus::Alive => MemberEvent::Alive(node),
                MemberStatus::Suspect => MemberEvent::Suspect(node),
                MemberStatus::Dead => MemberEvent::Dead(node),
            });
            let rumor = MemberUpdate {
                node,
                incarnation: entry.incarnation,
                status,
            };
            self.enqueue_rumor(rumor);
        }
    }

    fn enqueue_rumor(&mut self, update: MemberUpdate) {
        // A newer rumor about the same node supersedes the queued one.
        self.rumors.retain(|(u, _)| u.node != update.node);
        self.rumors.push((update, self.cfg.rumor_fanout));
    }

    /// Rumors to attach to an outgoing gossip frame; always leads with a
    /// fresh self-is-alive so resurrection after a heal spreads quickly.
    fn piggyback(&mut self) -> Vec<MemberUpdate> {
        let mut batch = vec![MemberUpdate {
            node: self.self_id,
            incarnation: self.incarnation,
            status: MemberStatus::Alive,
        }];
        for (update, remaining) in self.rumors.iter_mut() {
            if batch.len() >= self.cfg.piggyback_max {
                break;
            }
            batch.push(*update);
            *remaining = remaining.saturating_sub(1);
        }
        self.rumors.retain(|(_, remaining)| *remaining > 0);
        batch
    }

    /// Next peer in round-robin order. Dead peers stay in the rotation:
    /// the mesh's peer set is static (no join protocol), so after a
    /// partition heals where *both* sides hold Dead verdicts, a direct
    /// probe answered by an ack is the only path back to Alive — rumors
    /// cannot override Dead at the same incarnation, and neither side
    /// would otherwise initiate contact.
    fn next_probe_target(&mut self) -> Option<NodeId> {
        let candidates: Vec<NodeId> = self.members.keys().copied().collect();
        if candidates.is_empty() {
            return None;
        }
        self.probe_cursor = (self.probe_cursor + 1) % candidates.len();
        Some(candidates[self.probe_cursor])
    }

    /// This node's id.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// This node's current incarnation number.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// The believed liveness of `node` (self is always alive).
    pub fn status_of(&self, node: NodeId) -> MemberStatus {
        if node == self.self_id {
            return MemberStatus::Alive;
        }
        self.members
            .get(&node)
            .map(|m| m.status)
            .unwrap_or(MemberStatus::Alive)
    }

    /// Every member not believed dead, including self — the ring domain.
    pub fn non_dead_view(&self) -> Vec<NodeId> {
        let mut view: Vec<NodeId> = self
            .members
            .iter()
            .filter(|(_, m)| m.status != MemberStatus::Dead)
            .map(|(n, _)| *n)
            .collect();
        view.push(self.self_id);
        view.sort_unstable();
        view
    }

    /// How many peers a broadcast can expect answers from (non-dead).
    pub fn expected_responders(&self) -> usize {
        self.members
            .values()
            .filter(|m| m.status != MemberStatus::Dead)
            .count()
    }

    /// The full view for scrapes: `(node, status, incarnation)`, self
    /// included, ascending by node id.
    pub fn snapshot(&self) -> Vec<(NodeId, MemberStatus, u64)> {
        let mut view: Vec<(NodeId, MemberStatus, u64)> = self
            .members
            .iter()
            .map(|(n, m)| (*n, m.status, m.incarnation))
            .collect();
        view.push((self.self_id, MemberStatus::Alive, self.incarnation));
        view.sort_unstable_by_key(|(n, _, _)| *n);
        view
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GossipConfig {
        GossipConfig::default()
    }

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn probe_timeout_escalates_to_indirect_then_suspect_then_dead() {
        let t0 = Instant::now();
        let peers = vec![NodeId(0), NodeId(1), NodeId(2)];
        let mut m = Membership::new(NodeId(0), &peers, cfg(), t0);

        // First protocol period: a direct ping goes out.
        let out = m.tick(t0 + ms(100));
        assert_eq!(out.msgs.len(), 1);
        let (probed, msg) = &out.msgs[0];
        let seq = match msg {
            Message::GossipPing { seq, reply_to, .. } => {
                assert_eq!(*reply_to, NodeId(0));
                *seq
            }
            other => panic!("expected ping, got {}", other.label()),
        };

        // No ack by the probe timeout: indirect probes via the other peer.
        let out = m.tick(t0 + ms(100) + ms(201));
        assert_eq!(out.msgs.len(), 1);
        match &out.msgs[0].1 {
            Message::GossipPingReq { seq: s, target, .. } => {
                assert_eq!(*s, seq);
                assert_eq!(target, probed);
            }
            other => panic!("expected ping-req, got {}", other.label()),
        }

        // No ack by twice the probe timeout: the target becomes suspect.
        let out = m.tick(t0 + ms(100) + ms(401));
        assert_eq!(out.events, vec![MemberEvent::Suspect(*probed)]);
        assert_eq!(m.status_of(*probed), MemberStatus::Suspect);

        // Unrefuted past the suspicion timeout: dead.
        let out = m.tick(t0 + ms(100) + ms(401) + ms(601));
        assert!(out.events.contains(&MemberEvent::Dead(*probed)));
        assert_eq!(m.status_of(*probed), MemberStatus::Dead);
        assert!(!m.non_dead_view().contains(probed));
    }

    #[test]
    fn ack_keeps_the_target_alive() {
        let t0 = Instant::now();
        let peers = vec![NodeId(0), NodeId(1)];
        let mut m = Membership::new(NodeId(0), &peers, cfg(), t0);
        let out = m.tick(t0 + ms(100));
        let seq = match &out.msgs[0].1 {
            Message::GossipPing { seq, .. } => *seq,
            other => panic!("expected ping, got {}", other.label()),
        };
        m.handle_ack(NodeId(1), seq, &[], t0 + ms(150));
        let out = m.tick(t0 + ms(100) + ms(401));
        assert!(out.events.is_empty());
        assert_eq!(m.status_of(NodeId(1)), MemberStatus::Alive);
    }

    #[test]
    fn a_suspected_member_refutes_with_a_higher_incarnation() {
        let t0 = Instant::now();
        let peers = vec![NodeId(0), NodeId(1)];
        let mut m = Membership::new(NodeId(1), &peers, cfg(), t0);
        // Node 1 hears a rumor that it is suspect at its own incarnation.
        let rumor = MemberUpdate {
            node: NodeId(1),
            incarnation: 0,
            status: MemberStatus::Suspect,
        };
        let out = m.handle_ping(NodeId(0), 7, NodeId(0), &[rumor], t0);
        assert_eq!(m.incarnation(), 1);
        // The ack it sends leads with the refutation.
        match &out.msgs[0].1 {
            Message::GossipAck { updates, .. } => {
                assert!(updates.contains(&MemberUpdate {
                    node: NodeId(1),
                    incarnation: 1,
                    status: MemberStatus::Alive,
                }));
            }
            other => panic!("expected ack, got {}", other.label()),
        }
    }

    #[test]
    fn rumor_precedence_follows_swim() {
        let t0 = Instant::now();
        let peers = vec![NodeId(0), NodeId(1), NodeId(2)];
        let mut m = Membership::new(NodeId(0), &peers, cfg(), t0);
        let mut out = GossipOutput::default();
        // Suspect at incarnation 0 beats alive at incarnation 0.
        m.apply_updates(
            &[MemberUpdate {
                node: NodeId(2),
                incarnation: 0,
                status: MemberStatus::Suspect,
            }],
            t0,
            &mut out,
        );
        assert_eq!(m.status_of(NodeId(2)), MemberStatus::Suspect);
        // Alive at incarnation 1 (a refutation) beats suspect at 0.
        m.apply_updates(
            &[MemberUpdate {
                node: NodeId(2),
                incarnation: 1,
                status: MemberStatus::Alive,
            }],
            t0,
            &mut out,
        );
        assert_eq!(m.status_of(NodeId(2)), MemberStatus::Alive);
        // A stale suspect at incarnation 0 no longer applies.
        m.apply_updates(
            &[MemberUpdate {
                node: NodeId(2),
                incarnation: 0,
                status: MemberStatus::Suspect,
            }],
            t0,
            &mut out,
        );
        assert_eq!(m.status_of(NodeId(2)), MemberStatus::Alive);
    }

    #[test]
    fn direct_contact_resurrects_a_dead_member() {
        let t0 = Instant::now();
        let peers = vec![NodeId(0), NodeId(1)];
        let mut m = Membership::new(NodeId(0), &peers, cfg(), t0);
        let mut out = GossipOutput::default();
        m.apply_updates(
            &[MemberUpdate {
                node: NodeId(1),
                incarnation: 0,
                status: MemberStatus::Dead,
            }],
            t0,
            &mut out,
        );
        assert_eq!(m.status_of(NodeId(1)), MemberStatus::Dead);
        // The "dead" node pings us after the partition heals.
        let out = m.handle_ping(NodeId(1), 9, NodeId(1), &[], t0 + ms(50));
        assert_eq!(m.status_of(NodeId(1)), MemberStatus::Alive);
        assert!(out.events.contains(&MemberEvent::Alive(NodeId(1))));
    }
}
