//! The anatomy of an Eden object (Figure 4) and its coordinator state.
//!
//! §4.1 names four parts, all present in [`ObjectSlot`]:
//!
//! * the **name** — a [`ObjName`];
//! * the **representation** — a [`Representation`] behind a lock;
//! * the **type** — the name binding the slot to a registered
//!   [`TypeManager`](crate::TypeManager) (the paper's capability for the
//!   type manager object);
//! * the **short-term state** — `ShortTerm`: synchronization objects,
//!   scratch data and behavior handles, "never written to long-term
//!   storage".
//!
//! §4.2's *coordinator* is here too: `CoordState` is the per-object
//! state machine that receives invocations, enforces invocation-class
//! limits, and dispatches invocation processes. The paper describes the
//! coordinator as a distinguished process at the root of the object's
//! process tree; this implementation makes it a lock-protected state
//! machine driven by whichever kernel thread touches the object — the
//! same serialization of dispatch decisions without a parked thread per
//! object.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use eden_capability::{Capability, NodeId, ObjName};
use eden_obs::TraceCtx;
use eden_wire::{Status, Value};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::behavior::BehaviorHandle;
use crate::repr::Representation;
use crate::sync::{EdenSemaphore, MessagePort};
use crate::types::ResolvedOp;
use crate::waiter::Waiter;

/// Reserved representation segment where the kernel persists the
/// checksite so it survives checkpoints and moves.
pub(crate) const CHECKSITE_SEGMENT: &str = "__kernel.checksite";

/// The externally visible lifecycle state of an active object slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjStatus {
    /// Receiving and dispatching invocations.
    Active,
    /// Being rebuilt from a checkpoint; invocations queue.
    Reincarnating,
    /// Quiescing for (or executing) a move; invocations queue.
    Moving,
    /// Crash requested; no further dispatch, teardown pending.
    Crashed,
}

/// The reliability level requested through the checksite primitive
/// (§4.4: "what level of reliability is required").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReliabilityLevel {
    /// Checkpoints go to the checksite node only.
    Local,
    /// Checkpoints additionally replicate to this many other nodes.
    Replicated(usize),
}

/// Where and how reliably this object's long-term state is kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checksite {
    /// The node responsible for the long-term state.
    pub node: NodeId,
    /// Reliability level for checkpoint writes.
    pub level: ReliabilityLevel,
}

/// Where a completed invocation's status and results go.
#[derive(Clone)]
pub(crate) enum ReplySink {
    /// A thread on this node is parked on the waiter.
    Local(Arc<Waiter<(Status, Vec<Value>)>>),
    /// A remote kernel awaits an `InvokeReply` frame.
    Remote {
        /// The requester's invocation id.
        inv_id: u64,
        /// The requester's node.
        reply_to: NodeId,
    },
    /// Nobody is waiting (fire-and-forget internal redelivery; reserved
    /// for kernel-initiated maintenance invocations).
    #[allow(dead_code)]
    Discard,
}

/// An invocation accepted by the coordinator but not yet completed.
pub(crate) struct PendingInvocation {
    /// The capability the invoker presented (rights already verified).
    pub presented: Capability,
    /// Operation name.
    pub operation: String,
    /// Parameters.
    pub args: Vec<Value>,
    /// The resolved operation (defining manager, spec, class limit).
    pub resolved: ResolvedOp,
    /// Reply destination.
    pub sink: ReplySink,
    /// The node the invocation came from.
    pub caller: NodeId,
    /// Tracing context the invocation arrived with (parent of the
    /// dispatch/execute spans), if any.
    pub trace: Option<TraceCtx>,
    /// When the coordinator accepted the invocation — start of the
    /// retroactive queue-wait (`dispatch`) span.
    pub enqueue_ns: u64,
}

/// The coordinator's mutable state.
pub(crate) struct CoordState {
    /// Lifecycle state.
    pub status: ObjStatus,
    /// Invocation processes currently executing.
    pub running: usize,
    /// Per-class in-service counts (§4.2 flow control).
    pub class_in_service: HashMap<String, usize>,
    /// Accepted invocations awaiting dispatch.
    pub queue: VecDeque<PendingInvocation>,
    /// Destination of a requested move, if any.
    pub pending_move: Option<NodeId>,
    /// The crash primitive was called; tear down once quiescent.
    pub crash_requested: bool,
    /// Destruction was requested; tear down and delete checkpoints.
    pub destroy_requested: bool,
}

impl CoordState {
    fn new(status: ObjStatus) -> Self {
        CoordState {
            status,
            running: 0,
            class_in_service: HashMap::new(),
            queue: VecDeque::new(),
            pending_move: None,
            crash_requested: false,
            destroy_requested: false,
        }
    }
}

/// Short-term state: "any temporal data, synchronization information, and
/// processor state necessary to maintain one or more executing
/// invocations" (§4.1).
#[derive(Default)]
pub(crate) struct ShortTerm {
    /// Named semaphores, created on demand.
    pub semaphores: Mutex<HashMap<String, Arc<EdenSemaphore>>>,
    /// Named message ports, created on demand.
    pub ports: Mutex<HashMap<String, Arc<MessagePort>>>,
    /// Detached behavior processes (§4.2).
    pub behaviors: Mutex<Vec<BehaviorHandle>>,
    /// Uninterpreted temporal key/value data shared by this object's
    /// processes.
    pub scratch: Mutex<HashMap<String, Value>>,
}

impl ShortTerm {
    /// Signals every behavior to stop and closes every port, releasing
    /// blocked processes. Called on crash, move-out and shutdown.
    pub fn teardown(&self) {
        for b in self.behaviors.lock().drain(..) {
            b.request_stop();
        }
        for port in self.ports.lock().values() {
            port.close();
        }
    }
}

/// One active object on a node.
pub struct ObjectSlot {
    /// The unique name.
    pub name: ObjName,
    /// The type binding.
    pub type_name: String,
    /// Long-term state.
    pub(crate) repr: RwLock<Representation>,
    /// Immutability flag (§4.3 frozen objects).
    pub(crate) frozen: AtomicBool,
    /// This slot is a cached replica of a frozen object held elsewhere.
    pub(crate) is_replica: bool,
    /// Last durably checkpointed version.
    pub(crate) version: AtomicU64,
    /// Short-term state.
    pub(crate) short: ShortTerm,
    /// Coordinator state.
    pub(crate) coord: Mutex<CoordState>,
    /// Signalled when `running` reaches zero (quiesce waits).
    pub(crate) quiesce_cv: Condvar,
    /// Long-term storage site and level.
    pub(crate) checksite: Mutex<Checksite>,
}

impl ObjectSlot {
    /// Creates a slot in the given lifecycle state.
    pub(crate) fn new(
        name: ObjName,
        type_name: String,
        repr: Representation,
        status: ObjStatus,
        checksite: Checksite,
    ) -> Arc<Self> {
        Arc::new(ObjectSlot {
            name,
            type_name,
            repr: RwLock::new(repr),
            frozen: AtomicBool::new(false),
            is_replica: false,
            version: AtomicU64::new(0),
            short: ShortTerm::default(),
            coord: Mutex::new(CoordState::new(status)),
            quiesce_cv: Condvar::new(),
            checksite: Mutex::new(checksite),
        })
    }

    /// Creates a frozen-replica slot (cached copy of a frozen object).
    pub(crate) fn new_replica(
        name: ObjName,
        type_name: String,
        repr: Representation,
        version: u64,
        home: NodeId,
    ) -> Arc<Self> {
        let slot = ObjectSlot {
            name,
            type_name,
            repr: RwLock::new(repr),
            frozen: AtomicBool::new(true),
            is_replica: true,
            version: AtomicU64::new(version),
            short: ShortTerm::default(),
            coord: Mutex::new(CoordState::new(ObjStatus::Active)),
            quiesce_cv: Condvar::new(),
            checksite: Mutex::new(Checksite {
                node: home,
                level: ReliabilityLevel::Local,
            }),
        };
        Arc::new(slot)
    }

    /// Whether the representation is frozen (immutable).
    pub fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::Acquire)
    }

    /// Whether this slot is a cached replica.
    pub fn is_replica(&self) -> bool {
        self.is_replica
    }

    /// The last checkpointed version.
    pub fn checkpoint_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Current lifecycle status.
    pub fn status(&self) -> ObjStatus {
        self.coord.lock().status
    }

    /// Reads the checksite.
    pub fn checksite(&self) -> Checksite {
        *self.checksite.lock()
    }

    /// The named semaphore, created with `initial` permits on first use.
    pub fn semaphore(&self, name: &str, initial: u64) -> Arc<EdenSemaphore> {
        self.short
            .semaphores
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(EdenSemaphore::new(initial)))
            .clone()
    }

    /// The named message port, created unbounded on first use.
    pub fn port(&self, name: &str) -> Arc<MessagePort> {
        self.short
            .ports
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(MessagePort::unbounded()))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_capability::{NameGenerator, NodeId};

    fn slot() -> Arc<ObjectSlot> {
        let g = NameGenerator::with_epoch(NodeId(1), 1);
        ObjectSlot::new(
            g.next_name(),
            "t".into(),
            Representation::new(),
            ObjStatus::Active,
            Checksite {
                node: NodeId(1),
                level: ReliabilityLevel::Local,
            },
        )
    }

    #[test]
    fn fresh_slot_is_active_and_unfrozen() {
        let s = slot();
        assert_eq!(s.status(), ObjStatus::Active);
        assert!(!s.is_frozen());
        assert!(!s.is_replica());
        assert_eq!(s.checkpoint_version(), 0);
    }

    #[test]
    fn named_semaphores_are_memoized() {
        let s = slot();
        let a = s.semaphore("mutex", 1);
        let b = s.semaphore("mutex", 99);
        assert!(
            Arc::ptr_eq(&a, &b),
            "same name must give the same semaphore"
        );
        assert_eq!(b.permits(), 1, "initial count comes from first creation");
        let c = s.semaphore("other", 2);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn named_ports_are_memoized() {
        let s = slot();
        let a = s.port("in");
        let b = s.port("in");
        assert!(Arc::ptr_eq(&a, &b));
        a.send(Value::I64(1));
        assert_eq!(b.try_recv(), Some(Value::I64(1)));
    }

    #[test]
    fn teardown_closes_ports() {
        let s = slot();
        let p = s.port("work");
        s.short.teardown();
        assert!(!p.send(Value::Unit));
    }

    #[test]
    fn replica_slots_are_frozen() {
        let g = NameGenerator::with_epoch(NodeId(2), 2);
        let r = ObjectSlot::new_replica(
            g.next_name(),
            "dict".into(),
            Representation::new(),
            3,
            NodeId(0),
        );
        assert!(r.is_frozen());
        assert!(r.is_replica());
        assert_eq!(r.checkpoint_version(), 3);
    }
}
