//! An append-only, CRC-checked, versioned checkpoint log on disk.
//!
//! This is the reproduction's "reliable storage medium" (§4.4). The design
//! is a classic write-ahead log:
//!
//! ```text
//! record := MAGIC(u32) | name(u128) | version(u64) | tomb(u8) | len(u32) | crc(u32) | payload
//! ```
//!
//! * Writes append a record and (optionally) fsync; the record becomes
//!   visible in the index only after a fully successful append, so `put`
//!   is atomic with respect to crashes.
//! * Opening a store scans the log, rebuilding the in-memory index.
//!   A record with a bad magic, a bad CRC, or a truncated payload ends the
//!   scan and the tail is truncated — the torn-write recovery rule.
//! * Deletions append a tombstone record (`tomb = 1`), so the log remains
//!   append-only; `compact` rewrites live records to a fresh log.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;
use eden_capability::ObjName;
use eden_obs::{now_ns, ObsRegistry};
use parking_lot::{Mutex, RwLock};

use crate::crc::crc32;
use crate::{CheckpointStore, StoreError};

const MAGIC: u32 = 0xEDE1_1981;
const HEADER_LEN: usize = 4 + 16 + 8 + 1 + 4 + 4;

/// Durability policy for [`DiskStore`] writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every checkpoint (highest reliability level).
    Always,
    /// Let the OS schedule writeback (faster; survives process crash but
    /// not power failure).
    Never,
}

struct Indexed {
    offset: u64,
    len: u32,
}

/// Per-object version index rebuilt by the recovery scan.
type Index = HashMap<ObjName, BTreeMap<u64, Indexed>>;

struct Inner {
    file: File,
    /// Byte offset one past the last valid record.
    end: u64,
    index: Index,
}

/// A durable [`CheckpointStore`] backed by a single append-only log file.
///
/// # Examples
///
/// ```no_run
/// use eden_store::{CheckpointStore, DiskStore};
/// use eden_store::disk::SyncPolicy;
/// use eden_capability::{NameGenerator, NodeId};
///
/// let store = DiskStore::open("/tmp/eden-ckpt.log", SyncPolicy::Always).unwrap();
/// let name = NameGenerator::new(NodeId(0)).next_name();
/// store.put(name, b"representation bytes").unwrap();
/// ```
pub struct DiskStore {
    path: PathBuf,
    sync: SyncPolicy,
    /// Keep at most this many versions per object in the index
    /// (0 = unlimited). Superseded records remain in the log until
    /// [`DiskStore::compact`] rewrites it.
    retain: usize,
    /// Observability registry receiving `store.write` / `store.fsync`
    /// duration histograms, once attached.
    obs: RwLock<Option<Arc<ObsRegistry>>>,
    inner: Mutex<Inner>,
}

impl DiskStore {
    /// Opens (creating if needed) the log at `path`, scanning and
    /// recovering existing records.
    pub fn open(path: impl AsRef<Path>, sync: SyncPolicy) -> Result<Self, StoreError> {
        Self::open_with_retention(path, sync, 0)
    }

    /// Opens the log retaining only the `retain` most recent versions of
    /// each object in the index (0 = unlimited). Space is reclaimed at
    /// the next [`DiskStore::compact`].
    pub fn open_with_retention(
        path: impl AsRef<Path>,
        sync: SyncPolicy,
        retain: usize,
    ) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)?;
        let (index, end) = Self::scan(&mut file)?;
        // Truncate any torn tail so future appends start at a clean edge.
        let file_len = file.metadata()?.len();
        if file_len > end {
            file.set_len(end)?;
        }
        let store = DiskStore {
            path,
            sync,
            retain,
            obs: RwLock::new(None),
            inner: Mutex::new(Inner { file, end, index }),
        };
        if retain > 0 {
            let mut inner = store.inner.lock();
            for versions in inner.index.values_mut() {
                while versions.len() > retain {
                    let oldest = *versions.keys().next().expect("nonempty");
                    versions.remove(&oldest);
                }
            }
        }
        Ok(store)
    }

    /// The path of the backing log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Scans the log from the start, returning the rebuilt index and the
    /// offset one past the last intact record.
    fn scan(file: &mut File) -> Result<(Index, u64), StoreError> {
        let mut index: Index = HashMap::new();
        let len = file.metadata()?.len();
        let mut buf = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut buf)?;
        debug_assert_eq!(buf.len() as u64, len);

        let mut off = 0usize;
        while off + HEADER_LEN <= buf.len() {
            let magic = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
            if magic != MAGIC {
                break;
            }
            let name = ObjName::from_u128(u128::from_le_bytes(
                buf[off + 4..off + 20].try_into().unwrap(),
            ));
            let version = u64::from_le_bytes(buf[off + 20..off + 28].try_into().unwrap());
            let tomb = buf[off + 28];
            let plen = u32::from_le_bytes(buf[off + 29..off + 33].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(buf[off + 33..off + 37].try_into().unwrap());
            let payload_start = off + HEADER_LEN;
            if payload_start + plen > buf.len() {
                break; // Torn tail.
            }
            let payload = &buf[payload_start..payload_start + plen];
            if crc32(payload) != crc {
                break; // Corrupt tail.
            }
            match tomb {
                0 => {
                    index.entry(name).or_default().insert(
                        version,
                        Indexed {
                            offset: payload_start as u64,
                            len: plen as u32,
                        },
                    );
                }
                1 => {
                    index.remove(&name);
                }
                _ => break, // Unknown record kind: treat as corruption.
            }
            off = payload_start + plen;
        }
        Ok((index, off as u64))
    }

    fn append(
        inner: &mut Inner,
        sync: SyncPolicy,
        obs: Option<&ObsRegistry>,
        name: ObjName,
        version: u64,
        tomb: u8,
        payload: &[u8],
    ) -> Result<u64, StoreError> {
        let mut rec = Vec::with_capacity(HEADER_LEN + payload.len());
        rec.extend_from_slice(&MAGIC.to_le_bytes());
        rec.extend_from_slice(&name.to_u128().to_le_bytes());
        rec.extend_from_slice(&version.to_le_bytes());
        rec.push(tomb);
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        let write_start = now_ns();
        inner.file.write_all(&rec)?;
        let write_end = now_ns();
        if sync == SyncPolicy::Always {
            inner.file.sync_data()?;
            if let Some(obs) = obs {
                obs.histogram("store.fsync")
                    .record(now_ns().saturating_sub(write_end));
            }
        }
        if let Some(obs) = obs {
            obs.histogram("store.write")
                .record(write_end.saturating_sub(write_start));
        }
        let payload_offset = inner.end + HEADER_LEN as u64;
        inner.end += rec.len() as u64;
        Ok(payload_offset)
    }

    fn read_at(inner: &mut Inner, idx: &Indexed) -> Result<Bytes, StoreError> {
        let mut payload = vec![0u8; idx.len as usize];
        // Appends use the cursor implicitly (O_APPEND), so an explicit seek
        // for reading is safe here.
        inner.file.seek(SeekFrom::Start(idx.offset))?;
        inner.file.read_exact(&mut payload)?;
        Ok(Bytes::from(payload))
    }

    /// Rewrites the log keeping only live records, reclaiming space from
    /// superseded versions and tombstones. Returns bytes reclaimed.
    pub fn compact(&self) -> Result<u64, StoreError> {
        let mut inner = self.inner.lock();
        let old_end = inner.end;
        let tmp_path = self.path.with_extension("compact");
        {
            let mut tmp = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)?;
            // Gather (name, version, payload) triples, then rewrite.
            let entries: Vec<(ObjName, u64, Indexed)> = inner
                .index
                .iter()
                .flat_map(|(n, vs)| {
                    vs.iter().map(|(v, i)| {
                        (
                            *n,
                            *v,
                            Indexed {
                                offset: i.offset,
                                len: i.len,
                            },
                        )
                    })
                })
                .collect();
            let mut new_index: HashMap<ObjName, BTreeMap<u64, Indexed>> = HashMap::new();
            let mut new_end = 0u64;
            for (name, version, idx) in entries {
                let payload = Self::read_at(&mut inner, &idx)?;
                let mut rec = Vec::with_capacity(HEADER_LEN + payload.len());
                rec.extend_from_slice(&MAGIC.to_le_bytes());
                rec.extend_from_slice(&name.to_u128().to_le_bytes());
                rec.extend_from_slice(&version.to_le_bytes());
                rec.push(0);
                rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                rec.extend_from_slice(&crc32(&payload).to_le_bytes());
                rec.extend_from_slice(&payload);
                tmp.write_all(&rec)?;
                new_index.entry(name).or_default().insert(
                    version,
                    Indexed {
                        offset: new_end + HEADER_LEN as u64,
                        len: payload.len() as u32,
                    },
                );
                new_end += rec.len() as u64;
            }
            tmp.sync_data()?;
            std::fs::rename(&tmp_path, &self.path)?;
            inner.file = OpenOptions::new()
                .read(true)
                .append(true)
                .open(&self.path)?;
            inner.index = new_index;
            inner.end = new_end;
        }
        Ok(old_end - inner.end)
    }

    /// Size of the log file in bytes.
    pub fn log_bytes(&self) -> u64 {
        self.inner.lock().end
    }
}

impl CheckpointStore for DiskStore {
    fn put(&self, name: ObjName, image: &[u8]) -> Result<u64, StoreError> {
        let obs = self.obs.read().clone();
        let mut inner = self.inner.lock();
        let version = inner
            .index
            .get(&name)
            .and_then(|v| v.keys().next_back().copied())
            .map_or(1, |v| v + 1);
        let offset = Self::append(
            &mut inner,
            self.sync,
            obs.as_deref(),
            name,
            version,
            0,
            image,
        )?;
        let versions = inner.index.entry(name).or_default();
        versions.insert(
            version,
            Indexed {
                offset,
                len: image.len() as u32,
            },
        );
        if self.retain > 0 {
            while versions.len() > self.retain {
                let oldest = *versions.keys().next().expect("nonempty");
                versions.remove(&oldest);
            }
        }
        Ok(version)
    }

    fn latest(&self, name: ObjName) -> Result<Option<(u64, Bytes)>, StoreError> {
        let mut inner = self.inner.lock();
        let Some((version, idx)) = inner.index.get(&name).and_then(|v| {
            v.iter().next_back().map(|(ver, i)| {
                (
                    *ver,
                    Indexed {
                        offset: i.offset,
                        len: i.len,
                    },
                )
            })
        }) else {
            return Ok(None);
        };
        let payload = Self::read_at(&mut inner, &idx)?;
        Ok(Some((version, payload)))
    }

    fn get(&self, name: ObjName, version: u64) -> Result<Option<Bytes>, StoreError> {
        let mut inner = self.inner.lock();
        let Some(idx) = inner.index.get(&name).and_then(|v| {
            v.get(&version).map(|i| Indexed {
                offset: i.offset,
                len: i.len,
            })
        }) else {
            return Ok(None);
        };
        Ok(Some(Self::read_at(&mut inner, &idx)?))
    }

    fn versions(&self, name: ObjName) -> Result<Vec<u64>, StoreError> {
        Ok(self
            .inner
            .lock()
            .index
            .get(&name)
            .map(|v| v.keys().copied().collect())
            .unwrap_or_default())
    }

    fn delete(&self, name: ObjName) -> Result<(), StoreError> {
        let obs = self.obs.read().clone();
        let mut inner = self.inner.lock();
        if inner.index.remove(&name).is_some() {
            Self::append(&mut inner, self.sync, obs.as_deref(), name, 0, 1, &[])?;
        }
        Ok(())
    }

    fn names(&self) -> Result<Vec<ObjName>, StoreError> {
        Ok(self.inner.lock().index.keys().copied().collect())
    }

    fn flush(&self) -> Result<(), StoreError> {
        let obs = self.obs.read().clone();
        let start = now_ns();
        self.inner.lock().file.sync_data()?;
        if let Some(obs) = obs {
            obs.histogram("store.fsync")
                .record(now_ns().saturating_sub(start));
        }
        Ok(())
    }

    fn attach_obs(&self, obs: Arc<ObsRegistry>) {
        *self.obs.write() = Some(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_capability::{NameGenerator, NodeId};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_log() -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("eden-store-test-{}-{}.log", std::process::id(), n))
    }

    fn gen() -> NameGenerator {
        NameGenerator::with_epoch(NodeId(1), 0xfeed)
    }

    #[test]
    fn disk_store_satisfies_contract() {
        let path = temp_log();
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        crate::contract::exercise_store_contract(&store);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn state_survives_reopen() {
        let path = temp_log();
        let g = gen();
        let a = g.next_name();
        let b = g.next_name();
        {
            let store = DiskStore::open(&path, SyncPolicy::Always).unwrap();
            store.put(a, b"alpha-1").unwrap();
            store.put(a, b"alpha-2").unwrap();
            store.put(b, b"beta").unwrap();
            store.delete(b).unwrap();
        }
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(&store.latest(a).unwrap().unwrap().1[..], b"alpha-2");
        assert_eq!(store.versions(a).unwrap(), vec![1, 2]);
        assert_eq!(store.latest(b).unwrap(), None, "tombstone must survive");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_recovery() {
        let path = temp_log();
        let g = gen();
        let a = g.next_name();
        {
            let store = DiskStore::open(&path, SyncPolicy::Always).unwrap();
            store.put(a, b"good record").unwrap();
            store.put(a, b"will be torn").unwrap();
        }
        // Tear the last record by chopping bytes off the end.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        let (v, data) = store.latest(a).unwrap().unwrap();
        assert_eq!(v, 1);
        assert_eq!(&data[..], b"good record");
        // The store stays writable after recovery.
        let v2 = store.put(a, b"after recovery").unwrap();
        assert_eq!(v2, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_payload_ends_the_scan() {
        let path = temp_log();
        let g = gen();
        let a = g.next_name();
        {
            let store = DiskStore::open(&path, SyncPolicy::Always).unwrap();
            store.put(a, b"first").unwrap();
            store.put(a, b"second").unwrap();
        }
        // Flip a byte inside the second record's payload.
        let mut contents = std::fs::read(&path).unwrap();
        let n = contents.len();
        contents[n - 2] ^= 0xff;
        std::fs::write(&path, &contents).unwrap();

        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(&store.latest(a).unwrap().unwrap().1[..], b"first");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_reclaims_space_and_preserves_live_data() {
        let path = temp_log();
        let g = gen();
        let a = g.next_name();
        let b = g.next_name();
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        for i in 0..10u8 {
            store.put(a, &[i; 64]).unwrap();
        }
        store.put(b, b"doomed").unwrap();
        store.delete(b).unwrap();
        let before = store.log_bytes();
        // Drop old versions of `a` by rebuilding through retention: compact
        // keeps all indexed versions, so first delete and re-put to shrink.
        let reclaimed = store.compact().unwrap();
        assert!(reclaimed > 0, "tombstoned data must be reclaimed");
        assert!(store.log_bytes() < before);
        assert_eq!(store.versions(a).unwrap().len(), 10);
        assert_eq!(&store.latest(a).unwrap().unwrap().1[..], &[9u8; 64][..]);
        assert_eq!(store.latest(b).unwrap(), None);

        // And the compacted log must survive reopen.
        drop(store);
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(store.versions(a).unwrap().len(), 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn attached_registry_sees_write_and_fsync_timings() {
        let path = temp_log();
        let store = DiskStore::open(&path, SyncPolicy::Always).unwrap();
        let obs = Arc::new(ObsRegistry::new(0));
        store.attach_obs(obs.clone());
        let g = gen();
        store.put(g.next_name(), b"timed").unwrap();
        let hists = obs.histograms_snapshot();
        assert_eq!(hists["store.write"].count, 1);
        assert_eq!(hists["store.fsync"].count, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_payloads_are_legal() {
        let path = temp_log();
        let g = gen();
        let a = g.next_name();
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        store.put(a, b"").unwrap();
        assert_eq!(&store.latest(a).unwrap().unwrap().1[..], b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_file_recovers_to_empty_store() {
        let path = temp_log();
        std::fs::write(&path, b"this is not a checkpoint log at all").unwrap();
        let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
        assert!(store.names().unwrap().is_empty());
        // Must be writable after recovering from garbage.
        let g = gen();
        store.put(g.next_name(), b"fresh").unwrap();
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod retention_tests {
    use super::*;
    use crate::CheckpointStore;
    use eden_capability::{NameGenerator, NodeId};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_log() -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(1000);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "eden-store-retain-{}-{}.log",
            std::process::id(),
            n
        ))
    }

    #[test]
    fn retention_caps_indexed_versions_and_compaction_reclaims() {
        let path = temp_log();
        let store = DiskStore::open_with_retention(&path, SyncPolicy::Never, 2).unwrap();
        let g = NameGenerator::with_epoch(NodeId(4), 4);
        let name = g.next_name();
        for i in 0..6u8 {
            store.put(name, &[i; 128]).unwrap();
        }
        assert_eq!(store.versions(name).unwrap(), vec![5, 6]);
        assert_eq!(store.get(name, 1).unwrap(), None);
        assert_eq!(&store.latest(name).unwrap().unwrap().1[..], &[5u8; 128][..]);

        let before = store.log_bytes();
        let reclaimed = store.compact().unwrap();
        assert!(reclaimed > 0, "dropped versions must be reclaimed");
        assert!(store.log_bytes() < before);
        assert_eq!(store.versions(name).unwrap(), vec![5, 6]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retention_applies_on_reopen() {
        let path = temp_log();
        let g = NameGenerator::with_epoch(NodeId(4), 5);
        let name = g.next_name();
        {
            let store = DiskStore::open(&path, SyncPolicy::Never).unwrap();
            for i in 0..5u8 {
                store.put(name, &[i; 16]).unwrap();
            }
        }
        let store = DiskStore::open_with_retention(&path, SyncPolicy::Never, 1).unwrap();
        assert_eq!(store.versions(name).unwrap(), vec![5]);
        // New puts keep the cap and the monotone numbering.
        assert_eq!(store.put(name, b"next").unwrap(), 6);
        assert_eq!(store.versions(name).unwrap(), vec![6]);
        std::fs::remove_file(&path).ok();
    }
}
