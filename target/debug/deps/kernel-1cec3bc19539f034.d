/root/repo/target/debug/deps/kernel-1cec3bc19539f034.d: crates/core/tests/kernel.rs Cargo.toml

/root/repo/target/debug/deps/libkernel-1cec3bc19539f034.rmeta: crates/core/tests/kernel.rs Cargo.toml

crates/core/tests/kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
