//! A process-wide monotonic clock.
//!
//! All observability timestamps are nanoseconds since the first call in
//! the process, so spans and flight-recorder events from *different*
//! in-process nodes (the usual `Cluster` harness) are directly
//! comparable and can be merged into one causal timeline.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide observability epoch.
pub fn now_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::now_ns;

    #[test]
    fn clock_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
