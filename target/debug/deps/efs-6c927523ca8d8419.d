/root/repo/target/debug/deps/efs-6c927523ca8d8419.d: crates/efs/tests/efs.rs

/root/repo/target/debug/deps/efs-6c927523ca8d8419: crates/efs/tests/efs.rs

crates/efs/tests/efs.rs:
