//! Observability overhead: recording must be cheap enough to leave on.
//!
//! The acceptance bar is < 1 µs per event for every hot-path primitive —
//! histogram samples, counter/gauge bumps, span open+close, and flight
//! recorder entries. At those costs the kernel can trace and measure
//! every invocation unconditionally.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use eden_obs::trace::stage;
use eden_obs::{now_ns, Histogram, KernelEvent, ObsRegistry, TraceCtx, TraceSampling};

/// The per-frame queue-span work a traced hand-off pays: one
/// retroactive staged span ([enqueue, dequeue] residency), exactly what
/// the vproc pool and the transport writer record at dequeue time.
fn queue_span(obs: &ObsRegistry, parent: TraceCtx, start: u64) {
    obs.record_span_staged("vproc-wait", stage::VPROC_QUEUE, parent, start, now_ns());
}

/// The untraced path through the same hand-off: the frame carries no
/// [`TraceCtx`], so the only cost is testing the `Option`.
fn queue_span_untraced(obs: &ObsRegistry, trace: Option<TraceCtx>, start: u64) {
    if let Some(ctx) = trace {
        queue_span(obs, ctx, start);
    }
}

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");

    let hist = Histogram::new();
    let mut v = 1u64;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(v >> 40);
        })
    });

    let obs = ObsRegistry::new(0);
    let counter = obs.counter("bench.counter");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    let gauge = obs.gauge("bench.gauge");
    group.bench_function("gauge_inc_dec", |b| {
        b.iter(|| {
            gauge.inc();
            gauge.dec();
        })
    });

    group.bench_function("span_open_close", |b| {
        b.iter(|| obs.root_span("bench").finish())
    });

    // The sampled-out path: what every invocation pays when the
    // sampling policy rejects it (should be a counter bump and nothing
    // else — far below the span_open_close cost).
    let sampled_out = ObsRegistry::new(0);
    sampled_out.set_sampling(TraceSampling::Ratio(0));
    group.bench_function("span_sampled_out", |b| {
        b.iter(|| {
            if let Some(s) = sampled_out.sampled_root_span("bench", "op") {
                s.finish();
            }
        })
    });

    // Queue-residency spans, the tentpole cost of critical-path
    // attribution: traced frames pay one staged-span record per
    // hand-off, untraced frames pay one branch.
    let traced = ObsRegistry::new(0);
    let root = traced.root_span("bench");
    let parent = root.ctx();
    let start = now_ns();
    group.bench_function("queue_span_record", |b| {
        b.iter(|| queue_span(&traced, parent, start))
    });
    group.bench_function("queue_span_untraced", |b| {
        b.iter(|| queue_span_untraced(&traced, None, start))
    });

    // The acceptance bar, asserted rather than eyeballed: with sampling
    // off (no TraceCtx on the frame) the queue-span path must stay
    // under 1 µs per event — it is a branch, so this passes with three
    // orders of magnitude to spare unless someone pessimizes it.
    let checked = Instant::now();
    const EVENTS: u32 = 100_000;
    for _ in 0..EVENTS {
        queue_span_untraced(
            std::hint::black_box(&traced),
            std::hint::black_box(None),
            start,
        );
    }
    let per_event = checked.elapsed() / EVENTS;
    assert!(
        per_event < std::time::Duration::from_micros(1),
        "sampled-off queue-span path costs {per_event:?} per event (bar: <1µs)"
    );
    root.finish();

    group.bench_function("flight_recorder_record", |b| {
        b.iter(|| {
            obs.recorder()
                .record(KernelEvent::Retransmit { inv_id: 7, dst: 1 })
        })
    });

    group.bench_function("now_ns", |b| b.iter(now_ns));

    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(50)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_obs
}
criterion_main!(benches);
