/root/repo/target/debug/examples/multiprocess_net-408c8b054c30d83a.d: examples/multiprocess_net.rs

/root/repo/target/debug/examples/multiprocess_net-408c8b054c30d83a: examples/multiprocess_net.rs

examples/multiprocess_net.rs:
