//! E2 — invocation classes as flow control.
//!
//! Sixteen concurrent clients invoke a 5 ms operation on one object
//! whose class limit varies. Expected shape: throughput grows
//! essentially linearly with the limit until it meets the client count,
//! then flattens — the class limit is the §4.2 "internal flow-control
//! mechanism" in action.

use std::time::{Duration, Instant};

use eden_kernel::NodeConfig;
use eden_wire::Value;

use crate::table::Table;
use crate::types::{bench_cluster_with, HoldType};

const CLIENTS: usize = 16;
const INVOCATIONS_PER_CLIENT: usize = 8;
const HOLD_MS: u64 = 5;

/// Measures throughput (ops/s) for one class limit.
pub fn throughput_for_limit(limit: usize) -> f64 {
    let cluster = bench_cluster_with(
        1,
        NodeConfig {
            // Plenty of processors: the class limit must be the only
            // bottleneck under test.
            virtual_processors: 32,
            ..Default::default()
        },
    );
    let cap = cluster
        .node(0)
        .create_object(&HoldType::name_for(limit), &[])
        .expect("create holder");

    let start = Instant::now();
    let handles: Vec<_> = (0..CLIENTS * INVOCATIONS_PER_CLIENT)
        .map(|_| {
            cluster
                .node(0)
                .invoke_async(cap, "hold_ms", &[Value::U64(HOLD_MS)])
        })
        .collect();
    for h in handles {
        h.wait(Duration::from_secs(60)).expect("hold completes");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total = (CLIENTS * INVOCATIONS_PER_CLIENT) as f64;
    cluster.shutdown();
    total / elapsed
}

/// Runs E2 and returns the table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E2 — invocation-class concurrency limits (5 ms op, 16 clients)",
        &[
            "class limit",
            "throughput (ops/s)",
            "ideal (limit/5ms)",
            "efficiency",
        ],
    );
    for limit in [1usize, 2, 4, 8, 16] {
        let tput = throughput_for_limit(limit);
        let ideal = limit as f64 * 1000.0 / HOLD_MS as f64;
        t.row(vec![
            limit.to_string(),
            format!("{tput:.0}"),
            format!("{ideal:.0}"),
            format!("{:.0}%", 100.0 * tput / ideal),
        ]);
    }
    t.note("expected shape: throughput ∝ limit (limit=1 is the paper's mutual-exclusion case)");
    t
}
