/root/repo/target/debug/deps/edges-0c560fc5b38353fa.d: crates/core/tests/edges.rs

/root/repo/target/debug/deps/edges-0c560fc5b38353fa: crates/core/tests/edges.rs

crates/core/tests/edges.rs:
