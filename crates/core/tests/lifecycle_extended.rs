//! Extended lifecycle tests: pull-activation at a non-checksite node,
//! introspection, ablation switches, and moves under continuous load.

use std::sync::Arc;
use std::time::{Duration, Instant};

use eden_capability::{NodeId, Rights};
use eden_kernel::{
    Cluster, EdenError, NodeConfig, ObjStatus, OpCtx, OpError, OpResult, TypeManager, TypeSpec,
};
use eden_transport::MeshOptions;
use eden_wire::{Status, Value};

struct Counter;

impl TypeManager for Counter {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new("counter")
            .class("writes", 1)
            .class("reads", 4)
            .op("add", "writes", Rights::WRITE)
            .op("get", "reads", Rights::READ)
            .op("checkpoint", "writes", Rights::CHECKPOINT)
            .op("crash", "writes", Rights::OWNER)
            .op("migrate", "writes", Rights::MOVE)
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "add" => {
                let d = OpCtx::i64_arg(args, 0)?;
                let v = ctx.mutate_repr(|r| {
                    let v = r.get_i64("n").unwrap_or(0) + d;
                    r.put_i64("n", v);
                    v
                })?;
                Ok(vec![Value::I64(v)])
            }
            "get" => Ok(vec![Value::I64(
                ctx.read_repr(|r| r.get_i64("n").unwrap_or(0)),
            )]),
            "checkpoint" => Ok(vec![Value::U64(ctx.checkpoint()?)]),
            "crash" => {
                ctx.crash();
                Ok(vec![])
            }
            "migrate" => {
                let dst = OpCtx::u64_arg(args, 0)? as u16;
                ctx.move_to(NodeId(dst))?;
                Ok(vec![])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

fn cluster(n: usize) -> Cluster {
    Cluster::builder()
        .nodes(n)
        .register(|| Box::new(Counter))
        .build()
}

#[test]
fn activate_here_pulls_the_checkpoint_across_the_network() {
    let c = cluster(3);
    let cap = c.node(0).create_object("counter", &[]).unwrap();
    c.node(0).invoke(cap, "add", &[Value::I64(5)]).unwrap();
    c.node(0).invoke(cap, "checkpoint", &[]).unwrap();
    c.node(0).invoke(cap, "crash", &[]).unwrap();
    // Wait until the teardown settles (object passive at node 0).
    let deadline = Instant::now() + Duration::from_secs(2);
    while c.node(0).is_local(cap.name()) {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }

    // Node 2 — which holds no checkpoint — pulls the image and becomes
    // the executing node.
    c.node(2).activate_here(cap).unwrap();
    assert!(c.node(2).is_local(cap.name()));
    let out = c.node(2).invoke(cap, "get", &[]).unwrap();
    assert_eq!(out, vec![Value::I64(5)]);
    // Local execution, not a remote call back to node 0.
    assert_eq!(c.node(2).metrics().reincarnations, 1);
}

#[test]
fn activate_here_refuses_when_the_object_is_active_elsewhere() {
    let c = cluster(2);
    let cap = c.node(0).create_object("counter", &[]).unwrap();
    c.node(0).invoke(cap, "add", &[Value::I64(1)]).unwrap();
    let err = c.node(1).activate_here(cap).unwrap_err();
    assert!(matches!(err, EdenError::BadRequest(_)), "got {err:?}");
}

#[test]
fn activate_here_fails_without_any_checkpoint() {
    let c = cluster(2);
    let cap = c.node(0).create_object("counter", &[]).unwrap();
    c.node(0).invoke(cap, "crash", &[]).unwrap();
    let err = c.node(1).activate_here(cap).unwrap_err();
    assert_eq!(err, EdenError::Invoke(Status::NoSuchObject));
}

#[test]
fn object_info_reflects_the_slot_state() {
    let c = cluster(1);
    let cap = c.node(0).create_object("counter", &[]).unwrap();
    c.node(0).invoke(cap, "add", &[Value::I64(3)]).unwrap();
    c.node(0).invoke(cap, "checkpoint", &[]).unwrap();
    let info = c.node(0).object_info(cap.name()).unwrap();
    assert_eq!(info.type_name, "counter");
    assert_eq!(info.status, ObjStatus::Active);
    assert!(!info.frozen);
    assert!(!info.replica);
    assert_eq!(info.checkpoint_version, 1);
    assert_eq!(info.checksite, NodeId(0));
    assert!(info.data_size > 0);
    // The reply is delivered before the coordinator's completion
    // bookkeeping, so `running` may read 1 for an instant.
    let deadline = Instant::now() + Duration::from_secs(2);
    while c
        .node(0)
        .object_info(cap.name())
        .unwrap()
        .running_invocations
        != 0
    {
        assert!(Instant::now() < deadline, "invocation never retired");
        std::thread::sleep(Duration::from_millis(2));
    }
    // Unknown names yield None.
    assert!(c
        .node(0)
        .object_info(eden_capability::NameGenerator::with_epoch(NodeId(9), 9).next_name())
        .is_none());
}

#[test]
fn disabling_the_location_cache_forces_rediscovery() {
    let config = NodeConfig {
        enable_location_cache: false,
        ..Default::default()
    };
    let c = Cluster::builder()
        .nodes(3)
        .node_config(config)
        .register(|| Box::new(Counter))
        .build();
    let cap = c.node(1).create_object("counter", &[]).unwrap();
    // Two invocations from node 2: without the cache, both resolve from
    // scratch (birth hint), and no cache hits are recorded.
    c.node(2).invoke(cap, "get", &[]).unwrap();
    c.node(2).invoke(cap, "get", &[]).unwrap();
    assert_eq!(c.node(2).metrics().location_cache_hits, 0);
}

#[test]
fn disabling_retransmission_hurts_on_a_lossy_network() {
    let mesh = MeshOptions {
        loss_probability: 0.3,
        seed: 11,
        ..Default::default()
    };
    let run = |retransmit: bool| -> usize {
        let c = Cluster::builder()
            .nodes(2)
            .mesh(mesh)
            .node_config(NodeConfig {
                enable_retransmission: retransmit,
                remote_try_timeout: Duration::from_millis(400),
                default_invoke_timeout: Duration::from_secs(2),
                ..Default::default()
            })
            .register(|| Box::new(Counter))
            .build();
        let cap = c.node(0).create_object("counter", &[]).unwrap();
        let ok = (0..20)
            .filter(|_| c.node(1).invoke(cap, "get", &[]).is_ok())
            .count();
        c.shutdown();
        ok
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with > without,
        "retransmission must help on a lossy link: with={with} without={without}"
    );
    assert!(
        with >= 14,
        "retransmission should recover most losses: {with}/20"
    );
}

#[test]
fn move_rejection_reason_is_surfaced() {
    // Register the type on node 0 only: node 1 must reject the move.
    let mesh = eden_transport::LoopbackMesh::new(2);
    let registry0 = Arc::new(eden_kernel::TypeRegistry::new());
    registry0.register(Arc::new(Counter)).unwrap();
    let node0 = eden_kernel::Node::new(
        NodeConfig::default(),
        mesh.endpoint(0),
        Arc::new(eden_store::MemStore::new()),
        registry0,
    );
    let node1 = eden_kernel::Node::new(
        NodeConfig::default(),
        mesh.endpoint(1),
        Arc::new(eden_store::MemStore::new()),
        Arc::new(eden_kernel::TypeRegistry::new()), // Empty: no 'counter'.
    );
    let cap = node0.create_object("counter", &[]).unwrap();
    node0.move_object(cap, NodeId(1)).unwrap();
    // The move must fail and the object must stay at node 0, working.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Some(reason) = node0.last_move_rejection() {
            assert!(reason.contains("not registered"), "reason: {reason}");
            break;
        }
        assert!(Instant::now() < deadline, "rejection never surfaced");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(node0.is_local(cap.name()));
    let out = node0.invoke(cap, "get", &[]).unwrap();
    assert_eq!(out, vec![Value::I64(0)]);
    node0.shutdown();
    node1.shutdown();
}

/// Invocations issued continuously while the object bounces between
/// nodes: none may be lost or double-applied (adds are counted).
#[test]
fn moves_under_continuous_load_lose_nothing() {
    let c = Arc::new(cluster(3));
    let cap = c.node(0).create_object("counter", &[]).unwrap();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut workers = Vec::new();
    let successes = Arc::new(std::sync::atomic::AtomicU64::new(0));
    for w in 0..3usize {
        let c = c.clone();
        let stop = stop.clone();
        let successes = successes.clone();
        workers.push(std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                match c.node(w).invoke_with_timeout(
                    cap,
                    "add",
                    &[Value::I64(1)],
                    Duration::from_secs(5),
                ) {
                    Ok(_) => {
                        successes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    Err(EdenError::Invoke(Status::Timeout)) => {} // Allowed: retried load.
                    Err(e) => panic!("unexpected failure under move: {e:?}"),
                }
            }
        }));
    }

    // Bounce the object 0 → 1 → 2 → 0 while the adders hammer it.
    for dst in [1u64, 2, 0, 1] {
        std::thread::sleep(Duration::from_millis(50));
        // The migrate op itself competes with the adders.
        let _ = c.node(0).invoke_with_timeout(
            cap,
            "migrate",
            &[Value::U64(dst)],
            Duration::from_secs(5),
        );
        let deadline = Instant::now() + Duration::from_secs(10);
        while !c.node(dst as usize).is_local(cap.name()) {
            assert!(Instant::now() < deadline, "move to {dst} never completed");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    for w in workers {
        w.join().unwrap();
    }

    let expected = successes.load(std::sync::atomic::Ordering::Relaxed) as i64;
    let out = c
        .node(1)
        .invoke_with_timeout(cap, "get", &[], Duration::from_secs(5))
        .unwrap();
    assert_eq!(
        out,
        vec![Value::I64(expected)],
        "every acknowledged add must be applied exactly once"
    );
    assert!(expected > 0, "the workers must have made progress");
}

/// Behaviors are short-term state: a move tears them down at the source
/// and the reincarnation handler rebuilds them at the destination.
#[test]
fn behaviors_are_rebuilt_by_moves() {
    use eden_wire::Value as V;

    struct Ticker;
    impl TypeManager for Ticker {
        fn spec(&self) -> TypeSpec {
            TypeSpec::new("ticker")
                .class("all", 2)
                .op("ticks", "all", Rights::READ)
                .op("host", "all", Rights::READ)
                .op("migrate", "all", Rights::MOVE)
        }
        fn initialize(&self, ctx: &OpCtx<'_>, _args: &[V]) -> Result<(), OpError> {
            self.reincarnate(ctx)
        }
        fn reincarnate(&self, ctx: &OpCtx<'_>) -> Result<(), OpError> {
            // Record which node's behavior is ticking (short-term scratch
            // does not survive the move, so use the repr).
            let host = ctx.node_id().0 as i64;
            ctx.mutate_repr(|r| r.put_i64("behavior_host", host))?;
            ctx.spawn_behavior("tick", |bctx| {
                while bctx.wait(Duration::from_millis(5)) {
                    let _ = bctx.mutate_repr(|r| {
                        let t = r.get_i64("ticks").unwrap_or(0) + 1;
                        r.put_i64("ticks", t);
                    });
                }
            });
            Ok(())
        }
        fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[V]) -> OpResult {
            match op {
                "ticks" => Ok(vec![V::I64(
                    ctx.read_repr(|r| r.get_i64("ticks").unwrap_or(0)),
                )]),
                "host" => Ok(vec![V::I64(
                    ctx.read_repr(|r| r.get_i64("behavior_host").unwrap_or(-1)),
                )]),
                "migrate" => {
                    let dst = OpCtx::u64_arg(args, 0)? as u16;
                    ctx.move_to(NodeId(dst))?;
                    Ok(vec![])
                }
                other => Err(OpError::no_such_op(other)),
            }
        }
    }

    let c = Cluster::builder()
        .nodes(2)
        .register(|| Box::new(Ticker))
        .build();
    let cap = c.node(0).create_object("ticker", &[]).unwrap();
    // The behavior ticks on node 0.
    std::thread::sleep(Duration::from_millis(50));
    let before = c.node(0).invoke(cap, "ticks", &[]).unwrap()[0]
        .as_i64()
        .unwrap();
    assert!(before > 0, "behavior must tick at the birth node");

    c.node(0).invoke(cap, "migrate", &[Value::U64(1)]).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !c.node(1).is_local(cap.name()) {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }
    // The destination's reincarnation handler restarted the behavior.
    let host = c.node(1).invoke(cap, "host", &[]).unwrap()[0]
        .as_i64()
        .unwrap();
    assert_eq!(host, 1, "the behavior must now belong to node 1");
    let at_move = c.node(1).invoke(cap, "ticks", &[]).unwrap()[0]
        .as_i64()
        .unwrap();
    std::thread::sleep(Duration::from_millis(60));
    let later = c.node(1).invoke(cap, "ticks", &[]).unwrap()[0]
        .as_i64()
        .unwrap();
    assert!(later > at_move, "ticking must continue on the new node");
}
