//! Slotted ALOHA — the baseline MAC the Ethernet literature measures
//! against.
//!
//! Metcalfe & Boggs position Ethernet's carrier-sense contention against
//! the ALOHA network's free-for-all: in slotted ALOHA a station with a
//! frame transmits at the next slot boundary regardless of the channel,
//! so two ready stations always collide, and the channel famously peaks
//! at `1/e ≈ 0.368` utilization. Simulating both MACs over the same
//! workload generator shows exactly what carrier sense buys (experiment
//! E7's protocol-comparison table).
//!
//! Model: time is divided into frame-length slots; each backlogged
//! station transmits in the current slot with probability `p` (fresh
//! arrivals transmit immediately at the next boundary); a slot with two
//! or more transmissions is a collision and every participant backs off
//! geometrically.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

use crate::metrics::{jain_fairness, quantile, Report};
use crate::time::bits_to_ns;
use crate::workload::Workload;

/// Parameters of the slotted-ALOHA channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlohaConfig {
    /// Channel bit rate in bits per second.
    pub bit_rate_bps: u64,
    /// Fixed frame size in bytes (slot length = one frame time).
    /// Variable-size traffic is padded to this slot, as real slotted
    /// ALOHA requires.
    pub slot_frame_bytes: u32,
    /// Retransmission probability per slot for a backlogged station.
    pub retry_probability: f64,
    /// Per-station queue capacity.
    pub queue_capacity: usize,
}

impl AlohaConfig {
    /// A 10 Mb/s channel with 1000-byte slots and the classic 0.1 retry
    /// probability.
    pub fn classic(slot_frame_bytes: u32) -> Self {
        AlohaConfig {
            bit_rate_bps: 10_000_000,
            slot_frame_bytes,
            retry_probability: 0.1,
            queue_capacity: 64,
        }
    }
}

struct Station {
    /// Arrival times (ns) of queued frames.
    queue: VecDeque<u64>,
    /// Whether the head frame has already collided (backlogged).
    backlogged: bool,
    delivered: u64,
}

/// The slotted-ALOHA simulator.
pub struct AlohaSim {
    config: AlohaConfig,
    workload: Workload,
    rng: SmallRng,
}

impl AlohaSim {
    /// Builds a simulator; all randomness derives from `seed`.
    pub fn new(config: AlohaConfig, workload: Workload, seed: u64) -> Self {
        assert!(workload.stations >= 1, "need at least one station");
        AlohaSim {
            config,
            workload,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Runs `seconds` of simulated time and reports.
    pub fn run(mut self, seconds: f64) -> Report {
        let slot_ns = bits_to_ns(
            self.config.slot_frame_bytes as u64 * 8,
            self.config.bit_rate_bps,
        );
        let horizon_ns = (seconds * 1e9) as u64;
        let slots = horizon_ns / slot_ns;

        let mut stations: Vec<Station> = (0..self.workload.stations)
            .map(|_| Station {
                queue: VecDeque::new(),
                backlogged: false,
                delivered: 0,
            })
            .collect();
        // Pre-draw each station's next arrival time.
        let mut next_arrival: Vec<u64> = (0..self.workload.stations)
            .map(|_| {
                self.workload
                    .sample_interarrival_ns(self.config.bit_rate_bps, &mut self.rng)
            })
            .collect();

        let mut arrivals = 0u64;
        let mut delivered = 0u64;
        let mut collisions = 0u64;
        let mut dropped_queue_full = 0u64;
        let mut delays_ns: Vec<u64> = Vec::new();

        for slot in 0..slots {
            let now = slot * slot_ns;
            // Admit arrivals up to the slot start.
            for (s, station) in stations.iter_mut().enumerate() {
                while next_arrival[s] <= now {
                    arrivals += 1;
                    if station.queue.len() < self.config.queue_capacity {
                        station.queue.push_back(next_arrival[s]);
                    } else {
                        dropped_queue_full += 1;
                    }
                    next_arrival[s] += self
                        .workload
                        .sample_interarrival_ns(self.config.bit_rate_bps, &mut self.rng);
                }
            }
            // Who transmits this slot?
            let mut transmitters: Vec<usize> = Vec::new();
            for (s, station) in stations.iter().enumerate() {
                if station.queue.is_empty() {
                    continue;
                }
                let p = if station.backlogged {
                    self.config.retry_probability
                } else {
                    1.0 // Fresh head-of-line frame: transmit immediately.
                };
                if self.rng.random::<f64>() < p {
                    transmitters.push(s);
                }
            }
            match transmitters.len() {
                0 => {}
                1 => {
                    let s = transmitters[0];
                    let arrival = stations[s].queue.pop_front().expect("nonempty");
                    stations[s].backlogged = false;
                    stations[s].delivered += 1;
                    delivered += 1;
                    delays_ns.push(now + slot_ns - arrival);
                }
                _ => {
                    collisions += 1;
                    for &s in &transmitters {
                        stations[s].backlogged = true;
                    }
                }
            }
        }

        let capacity_bits = self.config.bit_rate_bps as f64 * seconds;
        let payload_bits = delivered as f64 * self.config.slot_frame_bytes as f64 * 8.0;
        let per_station: Vec<u64> = stations.iter().map(|s| s.delivered).collect();
        let mean_delay_us = if delays_ns.is_empty() {
            0.0
        } else {
            delays_ns.iter().sum::<u64>() as f64 / delays_ns.len() as f64 / 1_000.0
        };
        let p95_delay_us = quantile(&mut delays_ns, 0.95) as f64 / 1_000.0;
        let backlog_at_end: u64 = stations.iter().map(|s| s.queue.len() as u64).sum();
        Report {
            offered_load: self.workload.offered_load,
            throughput: payload_bits / capacity_bits,
            arrivals,
            delivered,
            backlog_at_end,
            dropped_excess_collisions: 0,
            dropped_queue_full,
            collisions,
            mean_delay_us,
            p95_delay_us,
            fairness: jain_fairness(&per_station),
            sim_seconds: seconds,
        }
    }
}

/// The classic slotted-ALOHA throughput model: `S = G·e^{-G}` for
/// aggregate attempt rate `G` (attempts per slot), peaking at
/// `1/e ≈ 0.368` when `G = 1`.
pub fn slotted_aloha_throughput(attempts_per_slot: f64) -> f64 {
    attempts_per_slot * (-attempts_per_slot).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::FrameSizes;

    fn run(stations: usize, load: f64, seed: u64) -> Report {
        AlohaSim::new(
            AlohaConfig::classic(1000),
            Workload {
                stations,
                offered_load: load,
                frame_sizes: FrameSizes::Fixed(1000),
            },
            seed,
        )
        .run(2.0)
    }

    #[test]
    fn single_station_never_collides() {
        let r = run(1, 0.3, 1);
        assert_eq!(r.collisions, 0);
        assert!((r.throughput - 0.3).abs() < 0.05, "got {}", r.throughput);
    }

    #[test]
    fn low_load_is_delivered() {
        let r = run(8, 0.1, 2);
        assert!((r.throughput - 0.1).abs() < 0.03, "got {}", r.throughput);
    }

    #[test]
    fn saturation_caps_near_the_aloha_limit() {
        // Overload far past G=1: throughput must collapse toward (and
        // never meaningfully exceed) 1/e.
        let r = run(16, 1.5, 3);
        assert!(
            r.throughput < 0.45,
            "slotted ALOHA cannot sustain CSMA-level throughput: {}",
            r.throughput
        );
        assert!(r.collisions > 0);
    }

    #[test]
    fn csma_cd_beats_aloha_at_saturation() {
        // The headline comparison: same workload, two MACs.
        use crate::{EthernetConfig, EthernetSim};
        let workload = Workload {
            stations: 16,
            offered_load: 1.5,
            frame_sizes: FrameSizes::Fixed(1000),
        };
        let aloha = AlohaSim::new(AlohaConfig::classic(1000), workload, 9).run(2.0);
        let csma = EthernetSim::new(EthernetConfig::dix(), workload, 9).run(2.0);
        assert!(
            csma.throughput > 2.0 * aloha.throughput,
            "carrier sense must at least double saturated throughput: csma {} vs aloha {}",
            csma.throughput,
            aloha.throughput
        );
    }

    #[test]
    fn analytic_model_peaks_at_inverse_e() {
        let peak = slotted_aloha_throughput(1.0);
        assert!((peak - (-1.0f64).exp()).abs() < 1e-12);
        assert!(slotted_aloha_throughput(0.5) < peak);
        assert!(slotted_aloha_throughput(2.0) < peak);
    }

    #[test]
    fn identical_seeds_reproduce() {
        let a = run(8, 0.8, 42);
        let b = run(8, 0.8, 42);
        assert_eq!(a, b);
    }
}
