//! E11 — ablations: what the kernel's optimizations actually buy.
//!
//! Two switches in [`NodeConfig`] disable one mechanism each:
//!
//! * the **location hint cache** — without it every remote invocation
//!   re-resolves from hints or broadcast;
//! * the **request retransmission / reply cache** (the at-most-once RPC
//!   layer) — without it a single lost frame costs the whole candidate
//!   budget.
//!
//! Expected shape: the cache matters for objects that have *moved off*
//! their birth node (the hint dead-ends and broadcasts repeat);
//! retransmission dominates on lossy links.

use std::time::{Duration, Instant};

use eden_kernel::{Cluster, NodeConfig};
use eden_transport::MeshOptions;
use eden_wire::Value;

use crate::table::Table;
use crate::types::{with_bench_types, PayloadType};

fn cluster_with(config: NodeConfig, mesh: MeshOptions, nodes: usize) -> Cluster {
    with_bench_types(eden_apps::with_apps(
        Cluster::builder()
            .nodes(nodes)
            .node_config(config)
            .mesh(mesh),
    ))
    .build()
}

/// (total ms, broadcasts, system-wide forwards) for `reads` invocations
/// against an object that moved off its birth node, with/without the
/// hint cache.
fn cache_ablation(enable_cache: bool) -> (f64, u64, u64) {
    let config = NodeConfig {
        enable_location_cache: enable_cache,
        ..Default::default()
    };
    let cluster = cluster_with(config, MeshOptions::default(), 4);
    let cap = cluster
        .node(0)
        .create_object(PayloadType::NAME, &[])
        .expect("create");
    // Move it off the birth node so the birth hint dead-ends at a
    // forwarder, making the cache the only way to learn the new home.
    cluster
        .node(0)
        .invoke(cap, "migrate", &[Value::U64(2)])
        .expect("migrate");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cluster.node(2).is_local(cap.name()) {
        assert!(Instant::now() < deadline, "move never completed");
        std::thread::sleep(Duration::from_millis(2));
    }

    let reads = 50;
    let invoker = cluster.node(3);
    let b0 = invoker.metrics().location_broadcasts;
    let f0: u64 = cluster.nodes().iter().map(|n| n.metrics().forwards).sum();
    let start = Instant::now();
    for _ in 0..reads {
        invoker.invoke(cap, "touch", &[]).expect("touch");
    }
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let broadcasts = invoker.metrics().location_broadcasts - b0;
    let forwards: u64 = cluster
        .nodes()
        .iter()
        .map(|n| n.metrics().forwards)
        .sum::<u64>()
        - f0;
    cluster.shutdown();
    (ms, broadcasts, forwards)
}

/// Successful invocations out of 20 on a 30%-loss link, with/without
/// retransmission.
fn retransmission_ablation(enable: bool) -> usize {
    let config = NodeConfig {
        enable_retransmission: enable,
        remote_try_timeout: Duration::from_millis(400),
        default_invoke_timeout: Duration::from_secs(2),
        ..Default::default()
    };
    let mesh = MeshOptions {
        loss_probability: 0.3,
        seed: 111,
        ..Default::default()
    };
    let cluster = cluster_with(config, mesh, 2);
    let cap = cluster
        .node(0)
        .create_object(PayloadType::NAME, &[])
        .expect("create");
    let ok = (0..20)
        .filter(|_| cluster.node(1).invoke(cap, "touch", &[]).is_ok())
        .count();
    cluster.shutdown();
    ok
}

/// Runs E11 and returns the table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E11 — ablations: hint cache and at-most-once retransmission",
        &["mechanism", "configuration", "result"],
    );
    let (ms, broadcasts, forwards) = cache_ablation(true);
    t.row(vec![
        "location cache".into(),
        "enabled".into(),
        format!(
            "50 invocations of a moved object: {ms:.1} ms, {broadcasts} broadcasts, {forwards} forwards"
        ),
    ]);
    let (ms, broadcasts, forwards) = cache_ablation(false);
    t.row(vec![
        "location cache".into(),
        "DISABLED".into(),
        format!(
            "50 invocations of a moved object: {ms:.1} ms, {broadcasts} broadcasts, {forwards} forwards"
        ),
    ]);
    let ok = retransmission_ablation(true);
    t.row(vec![
        "retransmission".into(),
        "enabled".into(),
        format!("{ok}/20 invocations succeed at 30% frame loss"),
    ]);
    let ok = retransmission_ablation(false);
    t.row(vec![
        "retransmission".into(),
        "DISABLED".into(),
        format!("{ok}/20 invocations succeed at 30% frame loss"),
    ]);
    t.note("expected shape: disabling the cache repeats location work per invocation; disabling retransmission turns frame loss directly into invocation failures");
    t
}
