/root/repo/target/debug/deps/eden_store-277a43c940e33bc1.d: crates/store/src/lib.rs crates/store/src/crc.rs crates/store/src/disk.rs crates/store/src/faulty.rs crates/store/src/mem.rs crates/store/src/replicated.rs

/root/repo/target/debug/deps/eden_store-277a43c940e33bc1: crates/store/src/lib.rs crates/store/src/crc.rs crates/store/src/disk.rs crates/store/src/faulty.rs crates/store/src/mem.rs crates/store/src/replicated.rs

crates/store/src/lib.rs:
crates/store/src/crc.rs:
crates/store/src/disk.rs:
crates/store/src/faulty.rs:
crates/store/src/mem.rs:
crates/store/src/replicated.rs:
