/root/repo/target/release/deps/eden_bench-94f5ce658cf51b7c.d: crates/bench/src/lib.rs crates/bench/src/table.rs crates/bench/src/types.rs crates/bench/src/exp_e10_failover.rs crates/bench/src/exp_e11_ablation.rs crates/bench/src/exp_e1_latency.rs crates/bench/src/exp_e2_classes.rs crates/bench/src/exp_e3_checkpoint.rs crates/bench/src/exp_e4_frozen.rs crates/bench/src/exp_e5_mobility.rs crates/bench/src/exp_e6_location.rs crates/bench/src/exp_e7_ethernet.rs crates/bench/src/exp_e8_efs_cc.rs crates/bench/src/exp_e9_replication.rs crates/bench/src/exp_f1_topology.rs crates/bench/src/exp_f2_vprocs.rs

/root/repo/target/release/deps/libeden_bench-94f5ce658cf51b7c.rlib: crates/bench/src/lib.rs crates/bench/src/table.rs crates/bench/src/types.rs crates/bench/src/exp_e10_failover.rs crates/bench/src/exp_e11_ablation.rs crates/bench/src/exp_e1_latency.rs crates/bench/src/exp_e2_classes.rs crates/bench/src/exp_e3_checkpoint.rs crates/bench/src/exp_e4_frozen.rs crates/bench/src/exp_e5_mobility.rs crates/bench/src/exp_e6_location.rs crates/bench/src/exp_e7_ethernet.rs crates/bench/src/exp_e8_efs_cc.rs crates/bench/src/exp_e9_replication.rs crates/bench/src/exp_f1_topology.rs crates/bench/src/exp_f2_vprocs.rs

/root/repo/target/release/deps/libeden_bench-94f5ce658cf51b7c.rmeta: crates/bench/src/lib.rs crates/bench/src/table.rs crates/bench/src/types.rs crates/bench/src/exp_e10_failover.rs crates/bench/src/exp_e11_ablation.rs crates/bench/src/exp_e1_latency.rs crates/bench/src/exp_e2_classes.rs crates/bench/src/exp_e3_checkpoint.rs crates/bench/src/exp_e4_frozen.rs crates/bench/src/exp_e5_mobility.rs crates/bench/src/exp_e6_location.rs crates/bench/src/exp_e7_ethernet.rs crates/bench/src/exp_e8_efs_cc.rs crates/bench/src/exp_e9_replication.rs crates/bench/src/exp_f1_topology.rs crates/bench/src/exp_f2_vprocs.rs

crates/bench/src/lib.rs:
crates/bench/src/table.rs:
crates/bench/src/types.rs:
crates/bench/src/exp_e10_failover.rs:
crates/bench/src/exp_e11_ablation.rs:
crates/bench/src/exp_e1_latency.rs:
crates/bench/src/exp_e2_classes.rs:
crates/bench/src/exp_e3_checkpoint.rs:
crates/bench/src/exp_e4_frozen.rs:
crates/bench/src/exp_e5_mobility.rs:
crates/bench/src/exp_e6_location.rs:
crates/bench/src/exp_e7_ethernet.rs:
crates/bench/src/exp_e8_efs_cc.rs:
crates/bench/src/exp_e9_replication.rs:
crates/bench/src/exp_f1_topology.rs:
crates/bench/src/exp_f2_vprocs.rs:
