/root/repo/target/debug/deps/monitor_export-d8ce311086628e0f.d: tests/monitor_export.rs Cargo.toml

/root/repo/target/debug/deps/libmonitor_export-d8ce311086628e0f.rmeta: tests/monitor_export.rs Cargo.toml

tests/monitor_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
