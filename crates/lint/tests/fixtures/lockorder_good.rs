// Fixture: sanctioned lock nesting (scanned as crates/core/src/a.rs
// with a spec ranking a.alpha before a.beta).

struct S {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl S {
    fn ordered(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock(); // alpha before beta: matches the order
        drop(b);
        drop(a);
    }

    fn sequential(&self) {
        {
            let b = self.beta.lock();
            drop(b);
        }
        let a = self.alpha.lock(); // beta released first: no edge at all
        drop(a);
    }

    fn exempted(&self) {
        let b = self.beta.lock();
        // eden-lint: allow(lock-order): startup-only path, runs before any
        // worker thread exists, so the inversion cannot interleave
        let a = self.alpha.lock();
        drop(a);
        drop(b);
    }
}
