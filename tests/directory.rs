//! E14: the sharded location directory and gossip membership.
//!
//! End-to-end checks that the directory retires broadcast `WhereIs` as
//! the common path: stale hints are repaired in one forwarded hop, a
//! suspect holder's registrations are withheld until the suspicion
//! resolves, and a definitive miss completes without waiting out the
//! seed's full locate window.

use std::time::{Duration, Instant};

use eden::apps::with_apps;
use eden::capability::NodeId;
use eden::kernel::{Cluster, NodeConfig};
use eden::wire::{MemberStatus, Value};

/// A cluster with gossip fast enough for test-scale failure detection.
fn fast_gossip(n: usize) -> Cluster {
    with_apps(Cluster::builder().nodes(n).node_config(NodeConfig {
        remote_try_timeout: Duration::from_millis(150),
        gossip_interval: Duration::from_millis(25),
        gossip_probe_timeout: Duration::from_millis(60),
        gossip_suspect_timeout: Duration::from_millis(250),
        ..NodeConfig::default()
    }))
    .build()
}

/// Polls `check` until it returns `Some`, or panics after `secs`.
fn wait_for<T>(secs: u64, what: &str, mut check: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some(v) = check() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn counter(c: &Cluster, node: usize) -> eden::capability::Capability {
    c.node(node).create_object("counter", &[]).unwrap()
}

fn counters_on(c: &Cluster, node: usize, name: &str) -> u64 {
    c.node(node)
        .obs()
        .counters_snapshot()
        .get(name)
        .copied()
        .unwrap_or(0)
}

#[test]
fn stale_hint_is_repaired_by_the_forwarded_reply() {
    let c = with_apps(Cluster::builder().nodes(3)).build();
    let cap = counter(&c, 0);
    let name = cap.name();

    // First remote invocation caches the holder.
    c.node(2).invoke(cap, "add", &[Value::I64(1)]).unwrap();
    assert_eq!(c.node(2).location_hint(name), Some(NodeId(0)));

    // Move the object out from under the hint.
    c.node(0).move_object(cap, NodeId(1)).unwrap();
    wait_for(5, "move to settle", || {
        c.node(1).is_local(name).then_some(())
    });

    // The stale hint sends the next invocation to node 0, which
    // forwards; the reply arrives from node 1 and corrects the cache.
    let out = c.node(2).invoke(cap, "get", &[]).unwrap();
    assert_eq!(out, vec![Value::I64(1)]);
    assert_eq!(
        c.node(2).location_hint(name),
        Some(NodeId(1)),
        "forwarded reply must repair the stale hint"
    );

    // With the hint repaired, the second invocation is one hop: no
    // broadcast and no directory query.
    let broadcasts = counters_on(&c, 2, "kernel.location_broadcasts");
    let queries = counters_on(&c, 2, "kernel.directory_queries");
    c.node(2).invoke(cap, "get", &[]).unwrap();
    assert_eq!(counters_on(&c, 2, "kernel.location_broadcasts"), broadcasts);
    assert_eq!(counters_on(&c, 2, "kernel.directory_queries"), queries);
    c.shutdown();
}

#[test]
fn suspect_holder_registrations_are_withheld_until_resolved() {
    let c = fast_gossip(3);

    // An object held on node 2 whose directory home is node 0, so the
    // home's answer is observable locally while node 2 is cut off.
    let cap = wait_for(5, "an object homed on node 0", || {
        let cap = counter(&c, 2);
        (c.node(0).directory_home(cap.name()) == Some(NodeId(0))).then_some(cap)
    });
    let name = cap.name();
    wait_for(5, "registration to reach the home", || {
        (c.node(0).directory_locate(name) == Some(NodeId(2))).then_some(())
    });

    // Cut node 2 off from both peers. Probes go unanswered, so node 0
    // suspects it; while the suspicion is open the directory withholds
    // the registration rather than naming a possibly-dead holder.
    c.mesh().partition(NodeId(0), NodeId(2));
    c.mesh().partition(NodeId(1), NodeId(2));
    wait_for(10, "node 2 to become suspect or dead", || {
        c.node(0)
            .membership()
            .iter()
            .find(|(n, s, _)| *n == NodeId(2) && *s != MemberStatus::Alive)
            .map(|_| ())
    });
    assert_eq!(
        c.node(0).directory_locate(name),
        None,
        "a suspect holder's registration must be withheld"
    );

    // Unrefuted suspicion hardens into a death verdict.
    wait_for(10, "node 2 to be declared dead", || {
        c.node(0)
            .membership()
            .iter()
            .find(|(n, s, _)| *n == NodeId(2) && *s == MemberStatus::Dead)
            .map(|_| ())
    });

    // Healing lets a direct probe through; the ack resurrects the
    // member and its registration becomes servable again.
    c.mesh().heal(NodeId(0), NodeId(2));
    c.mesh().heal(NodeId(1), NodeId(2));
    wait_for(10, "node 2 to be alive again", || {
        c.node(0)
            .membership()
            .iter()
            .find(|(n, s, _)| *n == NodeId(2) && *s == MemberStatus::Alive)
            .map(|_| ())
    });
    wait_for(10, "the registration to be servable again", || {
        (c.node(0).directory_locate(name) == Some(NodeId(2))).then_some(())
    });
    c.shutdown();
}

#[test]
fn definitive_miss_completes_without_the_full_locate_window() {
    // The seed kernel's only search is broadcast WhereIs with a fixed
    // collection window: a miss costs the whole window. With the
    // directory, every live peer answers NotHeld and the collector
    // completes as soon as the expected answers are in.
    let c = fast_gossip(3);
    // Home the object away from the doomed node so the directory query
    // itself is not a message to a corpse.
    let cap = wait_for(5, "an object not homed on node 1", || {
        let cap = counter(&c, 1);
        (c.node(0).directory_home(cap.name()) != Some(NodeId(1))).then_some(cap)
    });
    c.kill(1);
    wait_for(10, "gossip to declare node 1 dead", || {
        c.node(0)
            .membership()
            .iter()
            .find(|(n, s, _)| *n == NodeId(1) && *s == MemberStatus::Dead)
            .map(|_| ())
    });
    let started = Instant::now();
    let err = c
        .node(0)
        .invoke_with_timeout(cap, "get", &[], Duration::from_secs(5));
    let elapsed = started.elapsed();
    assert!(err.is_err(), "uncheckpointed object must be lost");
    assert!(
        elapsed < Duration::from_millis(200),
        "directory miss should beat the 250ms locate window, took {elapsed:?}"
    );
    c.shutdown();

    // Control: the seed configuration (directory off) pays the window.
    let seed = with_apps(Cluster::builder().nodes(3).node_config(NodeConfig {
        enable_directory: false,
        remote_try_timeout: Duration::from_millis(150),
        ..NodeConfig::default()
    }))
    .build();
    let cap = counter(&seed, 1);
    seed.kill(1);
    let started = Instant::now();
    let err = seed
        .node(0)
        .invoke_with_timeout(cap, "get", &[], Duration::from_secs(5));
    let elapsed = started.elapsed();
    assert!(err.is_err());
    assert!(
        elapsed >= Duration::from_millis(250),
        "the seed search cannot finish before the locate window, took {elapsed:?}"
    );
    seed.shutdown();
}
