//! E8/E9 micro-benchmarks: EFS write/read paths and single-transaction
//! commit latency under both concurrency-control disciplines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eden_bench::types::bench_cluster;
use eden_efs::Efs;

fn bench_efs_paths(c: &mut Criterion) {
    let cluster = bench_cluster(1);
    let efs = Efs::format(cluster.node(0).clone()).expect("format");
    efs.write("/bench/file", b"seed").expect("seed");

    c.bench_function("efs_write_new_version", |b| {
        b.iter(|| efs.write("/bench/file", b"another version").expect("write"))
    });
    c.bench_function("efs_read_latest", |b| {
        b.iter(|| efs.read("/bench/file").expect("read"))
    });
    c.bench_function("efs_path_lookup_3deep", |b| {
        efs.write("/a/b/c/leaf", b"x").expect("deep write");
        b.iter(|| efs.lookup("/a/b/c/leaf").expect("lookup"))
    });
    cluster.shutdown();
}

fn bench_txn_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("txn_commit_uncontended");
    for cc in ["2pl", "occ"] {
        let cluster = bench_cluster(1);
        let efs = Efs::format(cluster.node(0).clone()).expect("format");
        let file = efs.create_file("/t").expect("create");
        let mgr = efs.transaction_manager(cc).expect("manager");
        group.bench_with_input(BenchmarkId::from_parameter(cc), &(), |b, ()| {
            b.iter(|| {
                let txn = efs.begin(mgr).expect("begin");
                txn.write(file, b"value").expect("write");
                assert!(txn.commit().expect("commit"));
            })
        });
        cluster.shutdown();
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_efs_paths, bench_txn_commit
}
criterion_main!(benches);
