//! Test-case configuration, errors, and the deterministic generator.

use std::fmt;

/// Configuration for a `proptest!` block (subset of the real crate).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; this shim does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A failed test case (carries the assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic seed for `name`'s `case`-th run.
pub fn seed_for(name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The generator handed to strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Next random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, n)` as `u128`.
    pub fn below_u128(&mut self, n: u128) -> u128 {
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % n
    }
}
