/root/repo/target/debug/deps/invocation-c3ff13aac2b3ff91.d: crates/bench/benches/invocation.rs Cargo.toml

/root/repo/target/debug/deps/libinvocation-c3ff13aac2b3ff91.rmeta: crates/bench/benches/invocation.rs Cargo.toml

crates/bench/benches/invocation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
