//! Model-based property test: the record manager against a `BTreeMap`
//! reference, including crash/reincarnation against a shadow model that
//! tracks the last checkpoint.

use std::collections::BTreeMap;

use bytes::Bytes;
use eden_efs::{with_efs, Records};
use eden_kernel::Cluster;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(String, Vec<u8>),
    Delete(String),
    Get(String),
    Scan(String),
    Flush,
    Crash,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = "[a-c]{1,3}"; // Small key space drives real collisions.
    prop_oneof![
        5 => (key, proptest::collection::vec(0u8.., 0..16))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        2 => key.prop_map(Op::Delete),
        4 => key.prop_map(Op::Get),
        2 => "[a-c]{0,2}".prop_map(Op::Scan),
        1 => Just(Op::Flush),
        1 => Just(Op::Crash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, max_shrink_iters: 32 })]

    #[test]
    fn records_match_a_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let cluster = with_efs(Cluster::builder().nodes(1)).build();
        // flush_every = 1 would hide the crash semantics; use 1000 so
        // only explicit flushes checkpoint (beyond the initial one).
        let table = Records::create(cluster.node(0).clone(), 1000).unwrap();
        let mut live: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        let mut checkpointed: BTreeMap<String, Vec<u8>> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    let existed = table.insert(k, v).unwrap();
                    prop_assert_eq!(existed, live.contains_key(k));
                    live.insert(k.clone(), v.clone());
                }
                Op::Delete(k) => {
                    let existed = table.delete(k).unwrap();
                    prop_assert_eq!(existed, live.remove(k).is_some());
                }
                Op::Get(k) => {
                    let got = table.get(k).unwrap();
                    prop_assert_eq!(
                        got,
                        live.get(k).map(|v| Bytes::from(v.clone())),
                        "get({}) diverged", k
                    );
                }
                Op::Scan(prefix) => {
                    let rows = table.scan(prefix, u64::MAX).unwrap();
                    let expected: Vec<(String, Bytes)> = live
                        .range(prefix.clone()..)
                        .take_while(|(k, _)| k.starts_with(prefix.as_str()))
                        .map(|(k, v)| (k.clone(), Bytes::from(v.clone())))
                        .collect();
                    prop_assert_eq!(rows, expected, "scan('{}') diverged", prefix);
                }
                Op::Flush => {
                    table.flush().unwrap();
                    checkpointed = live.clone();
                }
                Op::Crash => {
                    cluster
                        .node(0)
                        .invoke(table.capability(), "crash", &[])
                        .unwrap();
                    live = checkpointed.clone();
                    // The next operation reincarnates; verify the rollback
                    // immediately so shrinking stays informative.
                    prop_assert_eq!(table.count().unwrap(), live.len() as u64);
                }
            }
        }
        // Final full audit.
        prop_assert_eq!(table.count().unwrap(), live.len() as u64);
        let rows = table.scan("", u64::MAX).unwrap();
        let expected: Vec<(String, Bytes)> = live
            .iter()
            .map(|(k, v)| (k.clone(), Bytes::from(v.clone())))
            .collect();
        prop_assert_eq!(rows, expected);
        cluster.shutdown();
    }
}
