/root/repo/target/release/deps/eden_obs-5765051d12c3a7b4.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/metric.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libeden_obs-5765051d12c3a7b4.rlib: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/metric.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libeden_obs-5765051d12c3a7b4.rmeta: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/metric.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/export.rs:
crates/obs/src/hist.rs:
crates/obs/src/metric.rs:
crates/obs/src/recorder.rs:
crates/obs/src/registry.rs:
crates/obs/src/trace.rs:
