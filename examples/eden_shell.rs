//! An interactive shell over a live Eden cluster.
//!
//! Drives the whole public API from a command line: create objects,
//! invoke them, move and freeze them, inspect kernels. Run it and type
//! `help`:
//!
//! ```sh
//! cargo run --example eden_shell            # interactive
//! echo -e "create counter\nls 0" | cargo run --example eden_shell
//! ```
//!
//! Capabilities are addressed by the `$N` handles the shell prints.

use std::collections::HashMap;
use std::io::{BufRead, Write};

use eden::apps::{with_apps, MonitorClient};
use eden::capability::{Capability, NodeId};
use eden::kernel::Cluster;
use eden::wire::Value;

const NODES: usize = 4;

struct Shell {
    cluster: Cluster,
    caps: Vec<Capability>,
    labels: HashMap<String, usize>,
    /// Lazily created monitor objects, keyed by export target
    /// (`all` or a node index).
    monitors: HashMap<String, MonitorClient>,
}

impl Shell {
    fn cap(&self, token: &str) -> Result<Capability, String> {
        let idx: usize = token
            .strip_prefix('$')
            .ok_or_else(|| format!("'{token}' is not a $N handle"))?
            .parse()
            .map_err(|_| format!("bad handle '{token}'"))?;
        self.caps
            .get(idx)
            .copied()
            .ok_or_else(|| format!("no such handle ${idx}"))
    }

    fn parse_value(token: &str) -> Value {
        if let Ok(n) = token.parse::<i64>() {
            return Value::I64(n);
        }
        Value::Str(token.to_string())
    }

    /// The lazily created monitor for `target` (`all` or a node index).
    fn monitor_for(&mut self, target: &str) -> Result<&MonitorClient, String> {
        if !self.monitors.contains_key(target) {
            let ids: Vec<NodeId> = if target == "all" {
                (0..NODES).map(|i| NodeId(i as u16)).collect()
            } else {
                let n: u16 = target.parse().map_err(|_| format!("bad node '{target}'"))?;
                vec![NodeId(n)]
            };
            let client =
                MonitorClient::create(self.cluster.node(0), &ids).map_err(|e| e.to_string())?;
            self.monitors.insert(target.to_string(), client);
        }
        Ok(&self.monitors[target])
    }

    fn exec(&mut self, line: &str) -> Result<String, String> {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return Ok(String::new());
        };
        let args: Vec<&str> = parts.collect();
        match cmd {
            "help" => Ok("\
commands:
  types                              list registered types
  create <type> [node] [args…]       create an object; prints its $N handle
  invoke <$N> <op> [args…]           invoke (integers and strings inferred)
  from <node> <$N> <op> [args…]      invoke via a specific node
  move <$N> <node>                   kernel-level move
  freeze <$N>                        freeze the object
  cache <node> <$N>                  cache a frozen replica on a node
  info <$N>                          object introspection
  ls <node>                          active objects on a node
  metrics <node>                     counters, gauges and latency histograms
  vprocs <node>                      virtual-processor pool status
  trace <node> [n]                   last n flight-recorder events (default 16)
  members [node]                     gossip membership: one node's view, or
                                     every node's view via a monitor scrape
  watchdog <node|all>                stall-watchdog counters and the latest
                                     diagnostic snapshot per node
  critpath <trace-id>                cross-node critical-path breakdown of one
                                     sampled invocation (see metrics/trace for ids)
  export <node|all> <prom|trace|events> [path]
                                     write telemetry through a monitor object:
                                     Prometheus text / Chrome-trace JSON / JSONL
  label <name> <$N>                  name a handle
  quit"
                .to_string()),
            "types" => Ok(self.cluster.node(0).registry().type_names().join("\n")),
            "create" => {
                let type_name = args.first().ok_or("create <type> [node] [args…]")?;
                let (node, rest) = match args.get(1).and_then(|t| t.parse::<usize>().ok()) {
                    Some(n) if n < NODES => (n, &args[2..]),
                    _ => (0, &args[1..]),
                };
                let values: Vec<Value> = rest.iter().map(|t| Self::parse_value(t)).collect();
                let cap = self
                    .cluster
                    .node(node)
                    .create_object(type_name, &values)
                    .map_err(|e| e.to_string())?;
                self.caps.push(cap);
                Ok(format!(
                    "${} = {} on node {node}",
                    self.caps.len() - 1,
                    cap.name()
                ))
            }
            "invoke" | "from" => {
                let (node, rest) = if cmd == "from" {
                    let n: usize = args
                        .first()
                        .and_then(|t| t.parse().ok())
                        .ok_or("from <node> <$N> <op> [args…]")?;
                    (n, &args[1..])
                } else {
                    (0, &args[..])
                };
                let cap = self.cap(rest.first().ok_or("missing $N")?)?;
                let op = rest.get(1).ok_or("missing op")?;
                let values: Vec<Value> = rest[2..]
                    .iter()
                    .map(|t| {
                        if t.starts_with('$') {
                            self.cap(t).map(Value::Cap)
                        } else {
                            Ok(Self::parse_value(t))
                        }
                    })
                    .collect::<Result<_, _>>()?;
                match self.cluster.node(node).invoke(cap, op, &values) {
                    Ok(out) => Ok(format!("-> {out:?}")),
                    Err(e) => Ok(format!("!! {e}")),
                }
            }
            "move" => {
                let cap = self.cap(args.first().ok_or("move <$N> <node>")?)?;
                let dst: usize = args
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or("move <$N> <node>")?;
                // Find the node currently hosting it.
                let host = (0..NODES)
                    .find(|&i| self.cluster.node(i).is_local(cap.name()))
                    .ok_or("object is not active anywhere here")?;
                self.cluster
                    .node(host)
                    .move_object(cap, eden::capability::NodeId(dst as u16))
                    .map_err(|e| e.to_string())?;
                Ok(format!("move requested: node {host} -> node {dst}"))
            }
            "freeze" => {
                let cap = self.cap(args.first().ok_or("freeze <$N>")?)?;
                match self.cluster.node(0).invoke(cap, "freeze", &[]) {
                    Ok(_) => Ok("frozen".into()),
                    Err(e) => Ok(format!("(type has no freeze op: {e})")),
                }
            }
            "cache" => {
                let node: usize = args
                    .first()
                    .and_then(|t| t.parse().ok())
                    .ok_or("cache <node> <$N>")?;
                let cap = self.cap(args.get(1).ok_or("cache <node> <$N>")?)?;
                self.cluster
                    .node(node)
                    .cache_replica(cap)
                    .map_err(|e| e.to_string())?;
                Ok(format!("replica cached on node {node}"))
            }
            "info" => {
                let cap = self.cap(args.first().ok_or("info <$N>")?)?;
                for i in 0..NODES {
                    if let Some(info) = self.cluster.node(i).object_info(cap.name()) {
                        return Ok(format!("on node {i}: {info:#?}"));
                    }
                }
                Ok("not active on any node (passive or destroyed)".into())
            }
            "ls" => {
                let node: usize = args
                    .first()
                    .and_then(|t| t.parse().ok())
                    .ok_or("ls <node>")?;
                let mut out = String::new();
                for name in self.cluster.node(node).active_objects() {
                    let info = self.cluster.node(node).object_info(name);
                    let type_name = info.map(|i| i.type_name).unwrap_or_default();
                    out.push_str(&format!("{name}  {type_name}\n"));
                }
                Ok(out.trim_end().to_string())
            }
            "vprocs" => {
                let node: usize = args
                    .first()
                    .and_then(|t| t.parse().ok())
                    .filter(|n| *n < NODES)
                    .ok_or(format!("vprocs <node>  (0..{})", NODES - 1))?;
                let s = self.cluster.node(node).vproc_stats();
                Ok(format!(
                    "workers    {} configured, {} live ({} idle, {} blocked)\n\
                     queue      {} of {} slots used\n\
                     lifetime   {} executed, {} rejected, {} spares spawned, {} panicked",
                    s.workers,
                    s.live,
                    s.idle,
                    s.blocked,
                    s.queued,
                    s.queue_cap,
                    s.executed,
                    s.rejected,
                    s.spares_spawned,
                    s.panicked,
                ))
            }
            "metrics" => {
                let node: usize = args
                    .first()
                    .and_then(|t| t.parse().ok())
                    .filter(|n| *n < NODES)
                    .ok_or(format!("metrics <node>  (0..{})", NODES - 1))?;
                let obs = self.cluster.node(node).obs();
                let mut out = String::new();
                let counters = obs.counters_snapshot();
                if !counters.is_empty() {
                    out.push_str("counters:\n");
                    for (name, v) in counters {
                        if v > 0 {
                            out.push_str(&format!("  {name:<40} {v}\n"));
                        }
                    }
                }
                let gauges = obs.gauges_snapshot();
                if !gauges.is_empty() {
                    out.push_str("gauges:\n");
                    for (name, v) in gauges {
                        out.push_str(&format!("  {name:<40} {v}\n"));
                    }
                }
                let hists = obs.histograms_snapshot();
                if !hists.is_empty() {
                    out.push_str("latency histograms (ns):\n");
                    for (name, h) in hists {
                        out.push_str(&format!("  {name:<40} {}\n", h.summary()));
                    }
                }
                Ok(out.trim_end().to_string())
            }
            "trace" => {
                let node: usize = args
                    .first()
                    .and_then(|t| t.parse().ok())
                    .filter(|n| *n < NODES)
                    .ok_or(format!("trace <node> [n]  (0..{})", NODES - 1))?;
                let n: usize = args.get(1).and_then(|t| t.parse().ok()).unwrap_or(16);
                let dump = self.cluster.node(node).obs().recorder().dump(n);
                if dump.is_empty() {
                    Ok("(flight recorder empty)".into())
                } else {
                    Ok(dump.trim_end().to_string())
                }
            }
            "members" => match args.first() {
                Some(t) => {
                    let n: usize = t
                        .parse()
                        .ok()
                        .filter(|n| *n < NODES)
                        .ok_or(format!("members [node]  (0..{})", NODES - 1))?;
                    let mut out = format!("node {n} gossip view:\n");
                    for (node, status, incarnation) in self.cluster.node(n).membership() {
                        out.push_str(&format!(
                            "  node {:<4} {:<8} incarnation {incarnation}\n",
                            node.0,
                            status.label(),
                        ));
                    }
                    Ok(out.trim_end().to_string())
                }
                None => {
                    let monitor = self.monitor_for("all")?;
                    let scrape = monitor.scrape_membership().map_err(|e| e.to_string())?;
                    let mut out = String::new();
                    for (observer, members) in &scrape.per_node {
                        out.push_str(&format!("node {observer} sees:\n"));
                        for m in members {
                            out.push_str(&format!(
                                "  node {:<4} {:<8} incarnation {}\n",
                                m.node, m.status, m.incarnation
                            ));
                        }
                    }
                    if !scrape.down.is_empty() {
                        out.push_str(&format!("unreachable: {:?}\n", scrape.down));
                    }
                    Ok(out.trim_end().to_string())
                }
            },
            "watchdog" => {
                let target = *args.first().ok_or("watchdog <node|all>")?;
                if target != "all" {
                    let n: usize = target
                        .parse()
                        .map_err(|_| "watchdog <node|all>".to_string())?;
                    if n >= NODES {
                        return Err(format!("no such node {n} (0..{})", NODES - 1));
                    }
                }
                let monitor = self.monitor_for(target)?;
                let scrape = monitor.scrape_watchdog().map_err(|e| e.to_string())?;
                let mut out = String::new();
                for row in &scrape.per_node {
                    out.push_str(&format!("node {:<4} stalls {}\n", row.node, row.stalls));
                    if row.snapshot.is_empty() {
                        out.push_str("  (no stall snapshot)\n");
                    } else {
                        for line in row.snapshot.lines() {
                            out.push_str(&format!("  {line}\n"));
                        }
                    }
                }
                if !scrape.down.is_empty() {
                    out.push_str(&format!("unreachable: {:?}\n", scrape.down));
                }
                Ok(out.trim_end().to_string())
            }
            "critpath" => {
                let token = args.first().ok_or("critpath <trace-id>")?;
                let trace_id: u64 = token
                    .strip_prefix("0x")
                    .map_or_else(|| token.parse().ok(), |h| u64::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("bad trace id '{token}'"))?;
                let monitor = self.monitor_for("all")?;
                match monitor.critical_path(trace_id).map_err(|e| e.to_string())? {
                    Some(cp) => Ok(cp.text_table().trim_end().to_string()),
                    None => Ok(format!(
                        "no spans for trace {trace_id} — was the invocation sampled?"
                    )),
                }
            }
            "export" => {
                let usage = "export <node|all> <prom|trace|events> [path]";
                let target = *args.first().ok_or(usage)?;
                let format = *args.get(1).ok_or(usage)?;
                if target != "all" {
                    let n: usize = target.parse().map_err(|_| usage.to_string())?;
                    if n >= NODES {
                        return Err(format!("no such node {n} (0..{})", NODES - 1));
                    }
                }
                if !matches!(format, "prom" | "trace" | "events") {
                    return Err(format!("unknown format '{format}' ({usage})"));
                }
                let monitor = self.monitor_for(target)?;
                let (text, default_path) = match format {
                    "prom" => (
                        monitor.prometheus().map_err(|e| e.to_string())?,
                        format!("eden-{target}.prom"),
                    ),
                    "trace" => (
                        monitor.chrome_trace(None).map_err(|e| e.to_string())?,
                        format!("eden-{target}.trace.json"),
                    ),
                    _ => (
                        monitor.events_jsonl().map_err(|e| e.to_string())?,
                        format!("eden-{target}.jsonl"),
                    ),
                };
                let path = args.get(2).map_or(default_path, |p| p.to_string());
                std::fs::write(&path, &text).map_err(|e| format!("write {path}: {e}"))?;
                Ok(format!("wrote {} bytes to {path}", text.len()))
            }
            "label" => {
                let name = args.first().ok_or("label <name> <$N>")?;
                let idx: usize = args
                    .get(1)
                    .and_then(|t| t.strip_prefix('$'))
                    .and_then(|t| t.parse().ok())
                    .ok_or("label <name> <$N>")?;
                self.labels.insert(name.to_string(), idx);
                Ok(format!("{name} -> ${idx}"))
            }
            other => Err(format!("unknown command '{other}' (try 'help')")),
        }
    }
}

fn main() {
    let cluster = with_apps(Cluster::builder().nodes(NODES)).build();
    println!("eden shell — {NODES} nodes up; 'help' for commands, 'quit' to exit");
    let mut shell = Shell {
        cluster,
        caps: Vec::new(),
        labels: HashMap::new(),
        monitors: HashMap::new(),
    };
    let stdin = std::io::stdin();
    loop {
        print!("eden> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        match shell.exec(line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
    shell.cluster.shutdown();
    println!("bye");
}
