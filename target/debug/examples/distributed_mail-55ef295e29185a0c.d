/root/repo/target/debug/examples/distributed_mail-55ef295e29185a0c.d: examples/distributed_mail.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_mail-55ef295e29185a0c.rmeta: examples/distributed_mail.rs Cargo.toml

examples/distributed_mail.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
