//! Critical-path attribution and the stall watchdog, end to end over
//! real TCP sockets.
//!
//! The slow peer is injected with the backlog trick from
//! `crates/transport/tests/tcp_pipeline.rs`: the client's address for
//! the serving node initially points at a listener whose accept backlog
//! is full, so the background dial hangs and the invocation's frames
//! sit in the transport send queue. A repair thread then re-points the
//! peer at the real mesh; the invocation completes, and the stitched
//! critical-path report must charge the delay to the `xport-queue`
//! stage — not to execution, and not to the untracked residue.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eden::apps::counter::CounterType;
use eden::capability::NodeId;
use eden::kernel::{node_object_cap, Node, NodeConfig, TypeRegistry};
use eden::obs::{critical_path, SpanRecord};
use eden::store::MemStore;
use eden::transport::{Endpoint, TcpMesh, TcpMeshConfig, TcpTuning};
use eden::wire::{Frame, Message, Value};

/// A listener whose accept backlog is full: dials to `addr` hang for
/// the dialer's whole connect timeout instead of completing.
struct StuckPeer {
    _listener: TcpListener,
    _held: Vec<TcpStream>,
    addr: SocketAddr,
}

fn stuck_peer() -> StuckPeer {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stuck listener");
    let addr = listener.local_addr().expect("local addr");
    let mut held = Vec::new();
    for _ in 0..512 {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(50)) {
            Ok(s) => held.push(s),
            Err(_) => break, // Backlog is full: mission accomplished.
        }
    }
    assert!(
        held.len() < 512,
        "could not exhaust the accept backlog; the backlog trick needs \
         connects to start timing out"
    );
    StuckPeer {
        _listener: listener,
        _held: held,
        addr,
    }
}

/// Fast dial/backoff tuning so a failed dial burns milliseconds, not
/// the default half second.
fn fast_tuning() -> TcpTuning {
    TcpTuning {
        connect_timeout: Duration::from_millis(150),
        dial_backoff_min: Duration::from_millis(25),
        dial_backoff_max: Duration::from_millis(100),
        ..TcpTuning::default()
    }
}

fn node_over(mesh: Arc<TcpMesh>, config: NodeConfig) -> Node {
    let registry = Arc::new(TypeRegistry::new());
    registry.register(Arc::new(CounterType)).unwrap();
    Node::new(config, mesh, Arc::new(MemStore::new()), registry)
}

#[test]
fn critpath_attributes_slow_peer_delay_to_the_transport_queue() {
    // Three meshes, wired by hand so node 1's address for node 0 can
    // start out pointing at the stuck listener.
    let stuck = stuck_peer();
    let meshes: Vec<Arc<TcpMesh>> = (0..3u16)
        .map(|i| {
            let mut cfg = TcpMeshConfig::new(NodeId(i), "127.0.0.1:0".parse().unwrap());
            cfg.tuning = fast_tuning();
            Arc::new(TcpMesh::bind(cfg).expect("bind mesh"))
        })
        .collect();
    let addrs: Vec<SocketAddr> = meshes.iter().map(|m| m.local_addr()).collect();
    for (i, mesh) in meshes.iter().enumerate() {
        for (j, &addr) in addrs.iter().enumerate() {
            if i == j {
                continue;
            }
            if i == 1 && j == 0 {
                mesh.add_peer(NodeId(0), stuck.addr); // The slow path.
            } else {
                mesh.add_peer(NodeId(j as u16), addr);
            }
        }
    }

    // Long gossip suspicion window: the stalled link must not get
    // node 0 declared dead before the repair lands.
    let config = NodeConfig {
        gossip_suspect_timeout: Duration::from_secs(30),
        ..NodeConfig::default()
    };
    let nodes: Vec<Node> = meshes
        .iter()
        .map(|m| node_over(Arc::clone(m), config.clone()))
        .collect();
    let cap = nodes[0]
        .create_object(CounterType::NAME, &[Value::I64(0)])
        .unwrap();

    // Repair the link mid-flight: after 400 ms node 1 learns node 0's
    // real address and the next dial attempt succeeds.
    let client_mesh = Arc::clone(&meshes[1]);
    let real0 = addrs[0];
    let repair = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(400));
        client_mesh.add_peer(NodeId(0), real0);
    });

    let started = Instant::now();
    let out = nodes[1]
        .invoke_with_timeout(cap, "add", &[Value::I64(5)], Duration::from_secs(10))
        .expect("invocation completes once the link is repaired");
    let elapsed = started.elapsed();
    assert_eq!(out, vec![Value::I64(5)]);
    assert!(
        elapsed >= Duration::from_millis(200),
        "the stall must actually delay the invocation, took {elapsed:?}"
    );
    repair.join().unwrap();

    // Stitch every node's spans — exactly what the monitor scrape feeds
    // the report — and attribute the caller's wall clock.
    let spans: Vec<SpanRecord> = nodes
        .iter()
        .flat_map(|n| n.obs().traces().spans())
        .collect();
    let root = nodes[1]
        .obs()
        .traces()
        .spans()
        .into_iter()
        .find(|s| s.name == "invoke" && s.parent_span == 0)
        .expect("client root span");
    let cp = critical_path(&spans, root.trace_id).expect("critical path");
    eprintln!("{}", cp.text_table()); // The EXPERIMENTS.md E15 capture.

    assert_eq!(cp.root_node, 1);
    assert!(
        cp.coverage() >= 0.95,
        "named stages must account for >=95% of the wall clock, got {:.1}% of {} ns:\n{}",
        cp.coverage() * 100.0,
        cp.total_ns,
        cp.text_table()
    );
    let (stage, ns) = cp.dominant_stage().expect("a dominant stage");
    assert_eq!(
        stage,
        "xport-queue",
        "the stall happened in the send queue:\n{}",
        cp.text_table()
    );
    assert!(
        ns >= 100_000_000 && ns * 2 >= cp.total_ns,
        "xport-queue must hold the bulk of {} ns, got {ns} ns:\n{}",
        cp.total_ns,
        cp.text_table()
    );

    for node in &nodes {
        node.shutdown();
    }
}

#[test]
fn watchdog_snapshots_a_non_draining_writer_within_twice_the_deadline() {
    // One node whose only peer is permanently stuck; frames to it queue
    // and never drain.
    let stuck = stuck_peer();
    let mut cfg = TcpMeshConfig::new(NodeId(0), "127.0.0.1:0".parse().unwrap());
    cfg.tuning = fast_tuning();
    cfg.peers.insert(NodeId(9), stuck.addr);
    let mesh = Arc::new(TcpMesh::bind(cfg).expect("bind"));

    let deadline = Duration::from_millis(250);
    let config = NodeConfig {
        watchdog_interval: Duration::from_millis(25),
        watchdog_stall_deadline: deadline,
        ..NodeConfig::default()
    };
    let node = node_over(Arc::clone(&mesh), config);

    let started = Instant::now();
    mesh.send(Frame::to(NodeId(0), NodeId(9), Message::Ping { token: 1 }))
        .expect("enqueue to the stuck peer");

    // The snapshot must land within 2x the stall deadline.
    let budget = 2 * deadline;
    let mut detected = None;
    while started.elapsed() <= budget {
        if node.obs().counter("watchdog.stalls").get() > 0 {
            detected = Some(started.elapsed());
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let detected = detected.unwrap_or_else(|| {
        panic!(
            "no watchdog stall within {budget:?} (stalls={})",
            node.obs().counter("watchdog.stalls").get()
        )
    });
    assert!(detected <= budget, "detected after {detected:?}");

    // The typed event reached the flight recorder...
    let dump = node.obs().recorder().dump(64);
    assert!(
        dump.contains("writer-stall dst node 9"),
        "flight recorder:\n{dump}"
    );

    // ...and the structured snapshot is served through the reserved
    // telemetry object, like any other scrape.
    let reply = node
        .invoke(node_object_cap(NodeId(0)), "get_watchdog", &[])
        .expect("get_watchdog");
    let state = reply.first().and_then(Value::as_map).expect("state map");
    assert!(state.get("stalls").and_then(Value::as_u64).unwrap() >= 1);
    let snapshot = state.get("snapshot").and_then(Value::as_str).unwrap();
    for needle in [
        "watchdog snapshot node=N0",
        "writer-stall",
        "writer-queue dst=N9",
        "threads:",
    ] {
        assert!(
            snapshot.contains(needle),
            "missing {needle:?} in:\n{snapshot}"
        );
    }

    node.shutdown();
}
