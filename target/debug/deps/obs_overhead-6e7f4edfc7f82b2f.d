/root/repo/target/debug/deps/obs_overhead-6e7f4edfc7f82b2f.d: crates/bench/benches/obs_overhead.rs

/root/repo/target/debug/deps/obs_overhead-6e7f4edfc7f82b2f: crates/bench/benches/obs_overhead.rs

crates/bench/benches/obs_overhead.rs:
