/root/repo/target/debug/deps/efs-c2d2ccf458ba2ee9.d: crates/bench/benches/efs.rs

/root/repo/target/debug/deps/efs-c2d2ccf458ba2ee9: crates/bench/benches/efs.rs

crates/bench/benches/efs.rs:
