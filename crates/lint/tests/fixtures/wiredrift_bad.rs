// Fixture: wire-schema drift (scanned as crates/wire/src/message.rs).
// The tag table, the enum declaration and the codec arms disagree in
// every way the rule distinguishes.

pub const TAG_PING: u8 = 1;
pub const TAG_PONG: u8 = 2;
pub const TAG_GONE: u8 = 3;
pub const TAG_DUP: u8 = 1; // collides with TAG_PING, and is never used

pub enum Message {
    Ping,
    Pong,
    Halt,
}

impl WireEncode for Message {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Message::Ping => out.put_u8(TAG_PING),
            Message::Pong => out.put_u8(TAG_PONG),
            Message::Retired => out.put_u8(TAG_GONE), // variant no longer declared
        }
    }
}

impl WireDecode for Message {
    fn decode(tag: u8) -> Option<Message> {
        match tag {
            TAG_PING => Some(Message::Ping),
            other => None, // Pong and Halt have no decode arm
        }
    }
}
