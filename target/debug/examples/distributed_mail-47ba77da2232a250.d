/root/repo/target/debug/examples/distributed_mail-47ba77da2232a250.d: examples/distributed_mail.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_mail-47ba77da2232a250.rmeta: examples/distributed_mail.rs Cargo.toml

examples/distributed_mail.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
