/root/repo/target/release/deps/obs_overhead-97fb072e617caec4.d: crates/bench/benches/obs_overhead.rs

/root/repo/target/release/deps/obs_overhead-97fb072e617caec4: crates/bench/benches/obs_overhead.rs

crates/bench/benches/obs_overhead.rs:
