//! L5 `metric-discipline`: telemetry flows through the obs registry. An
//! atomic integer field or static with a metric-shaped name (`*_count`,
//! `*_sent`, `*_total`, …) in kernel or transport code is a parallel
//! metrics system: it is invisible to Prometheus export, metric
//! merging, and the monitor, and it skips the registry's naming
//! discipline. The one sanctioned cell is `crates/transport/src/stats.rs`,
//! which implements the public `Endpoint::stats()` contract.

use std::collections::HashSet;

use crate::lexer::{is_ident_char, word_occurrences, SourceModel};
use crate::{Finding, Rule};

pub(crate) fn check(rel_path: &str, model: &SourceModel, out: &mut Vec<Finding>) {
    let scoped =
        rel_path.starts_with("crates/core/src/") || rel_path.starts_with("crates/transport/src/");
    if !scoped || rel_path == "crates/transport/src/stats.rs" {
        return;
    }
    const TYPES: [&str; 4] = ["AtomicU64", "AtomicU32", "AtomicUsize", "AtomicI64"];
    let code = &model.code;
    let mut seen_lines: HashSet<usize> = HashSet::new();
    for ty in TYPES {
        for at in word_occurrences(code, ty) {
            let line = model.line_of(at);
            if model.is_test_line(line) || !seen_lines.insert(line) {
                continue;
            }
            let Some(name) = declared_name(model.code_line(line)) else {
                continue;
            };
            if !is_metric_name(&name) {
                continue;
            }
            out.push(Finding {
                rule: Rule::MetricDiscipline,
                file: rel_path.to_string(),
                line,
                message: format!(
                    "ad-hoc atomic metric `{name}` in kernel/transport code; counters, \
                     gauges and histograms must go through the obs registry \
                     (ObsRegistry::counter/gauge/histogram) so they export, merge and \
                     scrape like every other metric"
                ),
                suppressed: false,
            });
        }
    }
}

/// The declared name on a `name: Type` line — a struct field, a
/// struct-literal initializer, or a (possibly `pub`) `static` item.
/// Returns `None` for lines that are not declarations (method chains,
/// imports, locals).
fn declared_name(line_code: &str) -> Option<String> {
    let mut t = line_code.trim_start();
    for prefix in ["pub ", "static ", "mut "] {
        loop {
            if let Some(rest) = t.strip_prefix(prefix) {
                t = rest.trim_start();
            } else if prefix == "pub " && t.starts_with("pub(") {
                t = t.split_once(')')?.1.trim_start();
            } else {
                break;
            }
        }
    }
    let (name, _) = t.split_once(':')?;
    let name = name.trim_end();
    (!name.is_empty() && name.bytes().all(is_ident_char)).then(|| name.to_string())
}

/// Whether an identifier reads as a metric: exactly one of the metric
/// words, or carrying one as an underscore-separated component.
fn is_metric_name(name: &str) -> bool {
    const METRIC_WORDS: [&str; 22] = [
        "count",
        "counts",
        "counter",
        "counters",
        "total",
        "totals",
        "hits",
        "misses",
        "dropped",
        "drops",
        "shed",
        "sent",
        "received",
        "failures",
        "retries",
        "stalls",
        "errors",
        "rejected",
        "executed",
        "evictions",
        "broadcasts",
        "latency",
    ];
    let lname = name.to_ascii_lowercase();
    METRIC_WORDS.iter().any(|w| {
        lname == *w
            || lname.starts_with(&format!("{w}_"))
            || lname.ends_with(&format!("_{w}"))
            || lname.contains(&format!("_{w}_"))
    })
}
