/root/repo/target/debug/deps/eden_store-c7f1871555a0a7ca.d: crates/store/src/lib.rs crates/store/src/crc.rs crates/store/src/disk.rs crates/store/src/faulty.rs crates/store/src/mem.rs crates/store/src/replicated.rs

/root/repo/target/debug/deps/libeden_store-c7f1871555a0a7ca.rlib: crates/store/src/lib.rs crates/store/src/crc.rs crates/store/src/disk.rs crates/store/src/faulty.rs crates/store/src/mem.rs crates/store/src/replicated.rs

/root/repo/target/debug/deps/libeden_store-c7f1871555a0a7ca.rmeta: crates/store/src/lib.rs crates/store/src/crc.rs crates/store/src/disk.rs crates/store/src/faulty.rs crates/store/src/mem.rs crates/store/src/replicated.rs

crates/store/src/lib.rs:
crates/store/src/crc.rs:
crates/store/src/disk.rs:
crates/store/src/faulty.rs:
crates/store/src/mem.rs:
crates/store/src/replicated.rs:
