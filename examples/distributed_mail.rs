//! The Figure-1 system running a distributed mail application.
//!
//! Five node machines on one network, one of them (node 4) acting as the
//! file server (§3: "five fully-configured prototype node machines …
//! one of which will be configured with a 300 megabyte disk to act as a
//! file server"). Users live on nodes 0–3; the mail registry is an EFS
//! directory on the file server; mailboxes follow their users around.
//!
//! ```sh
//! cargo run --example distributed_mail
//! ```

use std::time::Duration;

use eden::apps::{with_apps, MailClient};
use eden::efs::Efs;
use eden::kernel::Cluster;
use eden::wire::Value;

fn main() {
    let dir = std::env::temp_dir().join(format!("eden-mail-{}", std::process::id()));
    let cluster = with_apps(Cluster::builder().nodes(5).disk_stores(&dir)).build();
    println!("booted 5 node machines; node 4 is the file server (disk-backed checkpoints)");

    // The file server hosts the EFS root and the mail registry.
    let efs = Efs::format(cluster.node(4).clone()).expect("format EFS");
    let registry = efs.mkdir_p("/system/mail").expect("create registry");
    println!("EFS formatted on node 4; mail registry at /system/mail");

    // Users register from their own workstations.
    let users = ["alice", "bob", "carol", "dave"];
    let mut clients = Vec::new();
    let mut boxes = Vec::new();
    for (i, user) in users.iter().enumerate() {
        let client = MailClient::new(cluster.node(i).clone(), registry);
        let mailbox = client.register_user(user).expect("register");
        println!(
            "  {user} registered from node {i}; mailbox {} lives there",
            mailbox.name()
        );
        clients.push(client);
        boxes.push(mailbox);
    }

    // Cross-node mail: everyone writes to alice.
    for (i, user) in users.iter().enumerate().skip(1) {
        clients[i]
            .send(
                user,
                "alice",
                &format!("hello from {user}"),
                "integrated *and* distributed!",
            )
            .expect("send");
    }
    let headers = clients[0].headers(boxes[0]).expect("alice reads");
    println!("\nalice's inbox ({} messages):", headers.len());
    for (id, from, subject) in &headers {
        println!("  #{id} from {from}: {subject}");
    }

    // Alice moves offices: her mailbox follows her to node 2. Delivery
    // keeps working throughout — invocations queue and forward.
    println!("\nalice moves from node 0 to node 2; her mailbox follows…");
    cluster
        .node(0)
        .invoke(boxes[0], "relocate", &[Value::U64(2)])
        .expect("relocate");
    while !cluster.node(2).is_local(boxes[0].name()) {
        std::thread::sleep(Duration::from_millis(5));
    }
    clients[1]
        .send("bob", "alice", "found you", "mail is location-transparent")
        .expect("send after move");
    let headers = clients[0].headers(boxes[0]).expect("alice reads again");
    println!(
        "alice's inbox after the move: {} messages (read from node 0, served by node 2)",
        headers.len()
    );

    // Show the layering at work.
    let listing = efs.list("/system/mail").expect("ls");
    println!("\n/system/mail on the file server: {listing:?}");
    let m = cluster.node(2).metrics();
    println!(
        "node 2 now serves alice's mailbox: {} remote invocations served, {} move(s) in",
        m.remote_invocations_served, m.moves_in
    );

    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
