//! The virtual-processor pool: a bounded worker set for kernel tasks.
//!
//! §3: the Eden node machine multiplexes a *fixed* complement of
//! processors (two GDPs, "field upgradable" to four) over however many
//! invocation processes exist. The kernel used to spawn one OS thread
//! per invocation process, async invoke, move, reincarnation and
//! redelivery, so a fan-out burst created unbounded threads and the
//! [`EdenSemaphore`](crate::sync::EdenSemaphore) gate throttled only
//! *execution*, never *thread creation*. [`VirtualProcessorPool`] is the
//! fixed supply of workers those tasks now share; excess work queues,
//! and past [`NodeConfig::vproc_queue_cap`](crate::NodeConfig) the
//! kernel sheds load with `Status::Overloaded` instead of falling over.
//!
//! ## Blocked-worker replacement
//!
//! Kernel tasks legitimately block: an async-invoke task waits for its
//! invocation's reply, a nested invocation waits for the inner result, a
//! move task waits for the transfer ack. With a strictly fixed worker
//! count those waits could consume every worker while the tasks able to
//! *unblock* them sit in the queue — a thread-starvation deadlock. The
//! kernel therefore wraps each such wait in [`VirtualProcessorPool::
//! blocking`], which parks the worker *outside* the pool's accounting
//! and, when runnable work would otherwise stall, injects a temporary
//! *spare* worker. Spares drain the queue and exit as soon as it is
//! empty, so the pool returns to its configured size once the burst
//! passes. The invariant maintained is that the number of unblocked
//! workers stays at the configured target whenever work is queued —
//! blocked workers cost memory, not processors, exactly like the
//! paper's invocation processes multiplexed over a fixed set of GDPs.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eden_capability::NodeId;
use eden_obs::{now_ns, stage, Counter, Gauge, Histogram, ObsRegistry, TraceCtx};

use crate::sync::shim::{self, Condvar, Mutex};

thread_local! {
    /// Identity (by [`Shared`] address) of the pool whose worker loop
    /// owns this thread, so [`VirtualProcessorPool::blocking`] performs
    /// replacement accounting only on the pool's own workers — a client
    /// thread waiting inside `Node::invoke` needs no spare.
    static WORKER_OF: Cell<usize> = const { Cell::new(0) };
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Task {
    job: Job,
    enqueued_ns: u64,
    /// Trace context of the invocation this task belongs to. `None` for
    /// untraced (sampled-out or internal) tasks, which then pay zero
    /// span cost at dequeue — not even an allocation.
    trace: Option<TraceCtx>,
}

struct State {
    queue: VecDeque<Task>,
    /// Worker threads currently alive (base workers + spares).
    live: usize,
    /// Workers parked on the condvar waiting for work.
    idle: usize,
    /// Workers inside a [`VirtualProcessorPool::blocking`] scope.
    blocked: usize,
    /// Per-worker busy-since timestamps (worker id → ns), maintained
    /// around task execution so the stall watchdog can spot a worker
    /// wedged in one task past the deadline.
    busy_since: std::collections::BTreeMap<u16, u64>,
    stop: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    node: NodeId,
    /// Target number of unblocked workers (the configured pool size).
    workers: usize,
    queue_cap: usize,
    /// Registry the queue-residency spans of traced tasks are recorded
    /// into at dequeue.
    obs: Arc<ObsRegistry>,
    busy: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
    task_wait: Arc<Histogram>,
    executed: Arc<Counter>,
    rejected: Arc<Counter>,
    spares: Arc<Counter>,
    panicked: Arc<Counter>,
}

/// Why [`VirtualProcessorPool::submit`] refused a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The task queue is at `vproc_queue_cap`; the kernel sheds this
    /// request with `Status::Overloaded`.
    Overloaded,
    /// The pool has been shut down.
    Closed,
}

/// What the stall watchdog sees in one [`VirtualProcessorPool::
/// stall_probe`]: queue backlog and the longest-running in-flight task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VprocProbe {
    /// Tasks waiting in the queue.
    pub queued: usize,
    /// Age of the oldest queued task in nanoseconds (0 when empty).
    pub oldest_wait_ns: u64,
    /// Longest-running in-flight task as `(worker id, busy ns)`;
    /// `None` when every worker is idle or blocked.
    pub busiest: Option<(u16, u64)>,
}

/// A point-in-time snapshot of one node's pool (see
/// [`Node::vproc_stats`](crate::Node::vproc_stats)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VprocStats {
    /// Configured worker count (the fixed processor complement).
    pub workers: usize,
    /// Worker threads currently alive (base workers + live spares).
    pub live: usize,
    /// Workers parked waiting for work.
    pub idle: usize,
    /// Workers parked inside a blocking scope (nested/remote waits).
    pub blocked: usize,
    /// Tasks waiting in the queue.
    pub queued: usize,
    /// Queue capacity before `Overloaded` shedding starts.
    pub queue_cap: usize,
    /// Tasks executed to completion since boot.
    pub executed: u64,
    /// Tasks refused because the queue was full.
    pub rejected: u64,
    /// Spare workers injected to replace blocked ones.
    pub spares_spawned: u64,
    /// Tasks that panicked (the worker survives).
    pub panicked: u64,
}

/// A fixed set of named worker threads executing the kernel's deferred
/// tasks; see the module docs for the scheduling model.
pub struct VirtualProcessorPool {
    shared: Arc<Shared>,
    base: Mutex<Vec<shim::thread::JoinHandle<()>>>,
}

impl VirtualProcessorPool {
    /// Starts `workers` base workers for `node`, with a task queue
    /// bounded at `queue_cap`. Pressure metrics are registered in `obs`
    /// (`vproc.busy`, `vproc.queue_depth`, `vproc.task_wait`, …), so
    /// the Monitor object and the Prometheus export see them.
    pub fn new(node: NodeId, workers: usize, queue_cap: usize, obs: &Arc<ObsRegistry>) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                live: workers,
                idle: 0,
                blocked: 0,
                busy_since: std::collections::BTreeMap::new(),
                stop: false,
            }),
            cv: Condvar::new(),
            node,
            workers,
            queue_cap: queue_cap.max(1),
            obs: Arc::clone(obs),
            busy: obs.gauge("vproc.busy"),
            queue_depth: obs.gauge("vproc.queue_depth"),
            task_wait: obs.histogram("vproc.task_wait"),
            executed: obs.counter("vproc.executed"),
            rejected: obs.counter("vproc.rejected"),
            spares: obs.counter("vproc.spares_spawned"),
            panicked: obs.counter("vproc.panicked"),
        });
        let pool = VirtualProcessorPool {
            shared,
            base: Mutex::new(Vec::with_capacity(workers)),
        };
        let mut base = pool.base.lock();
        for i in 0..workers {
            let shared = pool.shared.clone();
            let handle = shim::thread::Builder::new()
                .name(format!("eden-vproc-{node}-{i}"))
                .spawn(move || worker_loop(shared, false, i as u16))
                .expect("spawn virtual-processor worker");
            base.push(handle);
        }
        drop(base);
        pool
    }

    /// Queues `job` for execution on a pool worker.
    ///
    /// Fails with [`SubmitError::Overloaded`] when the queue is at
    /// capacity (the job is dropped; the caller owes the invoker a
    /// `Status::Overloaded` reply) and [`SubmitError::Closed`] after
    /// shutdown.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        self.submit_traced(job, None)
    }

    /// [`submit`](Self::submit) for a task belonging to a traced
    /// invocation: at dequeue the worker records a retroactive
    /// `vproc-wait` span (stage `vproc-queue`) covering the task's whole
    /// queue residency, parented on `trace`. Untraced tasks (`None`)
    /// skip all span work.
    pub fn submit_traced(
        &self,
        job: impl FnOnce() + Send + 'static,
        trace: Option<TraceCtx>,
    ) -> Result<(), SubmitError> {
        let spawn_spare = {
            let mut st = self.shared.state.lock();
            if st.stop {
                return Err(SubmitError::Closed);
            }
            if st.queue.len() >= self.shared.queue_cap {
                self.shared.rejected.inc();
                return Err(SubmitError::Overloaded);
            }
            st.queue.push_back(Task {
                job: Box::new(job),
                enqueued_ns: now_ns(),
                trace,
            });
            self.shared.queue_depth.inc();
            self.reserve_spare(&mut st)
        };
        self.shared.cv.notify_one();
        if spawn_spare {
            self.spawn_spare();
        }
        Ok(())
    }

    /// [`submit_traced`](Self::submit_traced) for a whole batch: all
    /// `tasks` are enqueued under **one** lock acquisition and one
    /// wakeup, so a receive-loop frame batch pays the pool's
    /// synchronization cost once instead of once per invocation.
    ///
    /// Admission is per task: the i-th result mirrors what
    /// `submit_traced` would have returned for the i-th task (tasks past
    /// the queue cap shed with `Overloaded`; the caller owes each
    /// rejected invocation its backpressure reply).
    pub fn submit_batch(
        &self,
        tasks: Vec<(Box<dyn FnOnce() + Send + 'static>, Option<TraceCtx>)>,
    ) -> Vec<Result<(), SubmitError>> {
        if tasks.is_empty() {
            return Vec::new();
        }
        let mut results = Vec::with_capacity(tasks.len());
        let mut accepted = 0usize;
        let spawn_spare = {
            let mut st = self.shared.state.lock();
            for (job, trace) in tasks {
                if st.stop {
                    results.push(Err(SubmitError::Closed));
                    continue;
                }
                if st.queue.len() >= self.shared.queue_cap {
                    self.shared.rejected.inc();
                    results.push(Err(SubmitError::Overloaded));
                    continue;
                }
                st.queue.push_back(Task {
                    job,
                    enqueued_ns: now_ns(),
                    trace,
                });
                accepted += 1;
                results.push(Ok(()));
            }
            if accepted > 0 {
                self.shared.queue_depth.add(accepted as i64);
            }
            self.reserve_spare(&mut st)
        };
        match accepted {
            0 => {}
            1 => self.shared.cv.notify_one(),
            _ => self.shared.cv.notify_all(),
        }
        if spawn_spare {
            self.spawn_spare();
        }
        results
    }

    /// Runs `f` — a wait whose completion may itself need pool capacity
    /// (a nested or remote invocation's reply, a move ack) — with this
    /// worker marked *blocked*. If runnable work would otherwise stall,
    /// a spare worker is injected for the duration; see the module docs.
    /// On a thread that is not one of this pool's workers, `f` runs
    /// unadorned.
    pub fn blocking<R>(&self, f: impl FnOnce() -> R) -> R {
        if WORKER_OF.with(Cell::get) != Arc::as_ptr(&self.shared) as usize {
            return f();
        }
        let spawn_spare = {
            let mut st = self.shared.state.lock();
            st.blocked += 1;
            self.reserve_spare(&mut st)
        };
        if spawn_spare {
            self.spawn_spare();
        }
        struct Unblock<'a>(&'a Shared);
        impl Drop for Unblock<'_> {
            fn drop(&mut self) {
                self.0.state.lock().blocked -= 1;
            }
        }
        let guard = Unblock(&self.shared);
        let r = f();
        drop(guard);
        r
    }

    /// Whether a spare is needed right now: queued work exists, no idle
    /// worker will pick it up, and blocking waits have eaten into the
    /// configured processor complement. Reserves the spare's `live` slot
    /// under the lock so concurrent callers do not over-inject.
    fn reserve_spare(&self, st: &mut State) -> bool {
        let need = !st.stop
            && !st.queue.is_empty()
            && st.idle == 0
            && st.live.saturating_sub(st.blocked) < self.shared.workers;
        if need {
            st.live += 1;
        }
        need
    }

    fn spawn_spare(&self) {
        self.shared.spares.inc();
        let n = self.shared.spares.get();
        let shared = self.shared.clone();
        // Spare ids live above the base range so a probe can tell them
        // apart; u16::MAX is reserved for the queue-age pseudo-worker.
        let wid = (self.shared.workers as u64 + n).min(u16::MAX as u64 - 1) as u16;
        let spawned = shim::thread::Builder::new()
            .name(format!("eden-vproc-{}-s{n}", self.shared.node))
            .spawn(move || worker_loop(shared, true, wid));
        if spawned.is_err() {
            // Could not create the thread: release the reserved slot.
            self.shared.state.lock().live -= 1;
        }
    }

    /// One stall-watchdog probe: queue backlog with the oldest task's
    /// residency, and the longest-running in-flight task, ages computed
    /// at probe time. Cheap — one lock acquisition, no allocation
    /// beyond the map walk.
    pub fn stall_probe(&self) -> VprocProbe {
        let now = now_ns();
        let st = self.shared.state.lock();
        VprocProbe {
            queued: st.queue.len(),
            oldest_wait_ns: st
                .queue
                .front()
                .map(|t| now.saturating_sub(t.enqueued_ns))
                .unwrap_or(0),
            busiest: st
                .busy_since
                .iter()
                .map(|(&wid, &since)| (wid, now.saturating_sub(since)))
                .max_by_key(|&(_, age)| age),
        }
    }

    /// Current pool shape and lifetime counters.
    pub fn stats(&self) -> VprocStats {
        let st = self.shared.state.lock();
        VprocStats {
            workers: self.shared.workers,
            live: st.live,
            idle: st.idle,
            blocked: st.blocked,
            queued: st.queue.len(),
            queue_cap: self.shared.queue_cap,
            executed: self.shared.executed.get(),
            rejected: self.shared.rejected.get(),
            spares_spawned: self.shared.spares.get(),
            panicked: self.shared.panicked.get(),
        }
    }

    /// Stops accepting work and drains: base workers finish every task
    /// already queued, then exit. Workers wedged in a long-running
    /// operation are abandoned after a grace period rather than hanging
    /// the caller (they still exit once their task completes).
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock();
            if st.stop {
                return;
            }
            st.stop = true;
        }
        self.shared.cv.notify_all();
        let deadline = Instant::now() + Duration::from_millis(500);
        for handle in self.base.lock().drain(..) {
            while !handle.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>, spare: bool, wid: u16) {
    WORKER_OF.with(|c| c.set(Arc::as_ptr(&shared) as usize));
    loop {
        let dequeued_ns;
        let task = {
            let mut st = shared.state.lock();
            let task = loop {
                if let Some(task) = st.queue.pop_front() {
                    break Some(task);
                }
                // Spares exist only to cover a blocked-worker gap: once
                // the queue is empty they retire. Base workers park —
                // and drain the remaining queue on stop before exiting.
                if st.stop || spare {
                    break None;
                }
                st.idle += 1;
                shared.cv.wait(&mut st);
                st.idle -= 1;
            };
            dequeued_ns = now_ns();
            if task.is_some() {
                st.busy_since.insert(wid, dequeued_ns);
            }
            task
        };
        let Some(task) = task else { break };
        shared.queue_depth.dec();
        shared
            .task_wait
            .record(dequeued_ns.saturating_sub(task.enqueued_ns));
        // Queue residency becomes a retroactive critical-path span —
        // only for traced tasks; sampled-out work does no span work.
        if let Some(trace) = task.trace {
            shared.obs.record_span_staged(
                "vproc-wait",
                stage::VPROC_QUEUE,
                trace,
                task.enqueued_ns,
                dequeued_ns,
            );
        }
        shared.busy.inc();
        // Panic isolation: one panicking task must not kill its worker.
        // (Operation panics are already caught in `run_invocation`; this
        // is the backstop for every other task the kernel queues.)
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(task.job));
        shared.busy.dec();
        shared.executed.inc();
        if outcome.is_err() {
            shared.panicked.inc();
        }
        shared.state.lock().busy_since.remove(&wid);
    }
    let mut st = shared.state.lock();
    st.busy_since.remove(&wid);
    st.live -= 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(workers: usize, cap: usize) -> VirtualProcessorPool {
        let obs = Arc::new(ObsRegistry::new(0));
        VirtualProcessorPool::new(NodeId(0), workers, cap, &obs)
    }

    #[test]
    fn executes_submitted_tasks() {
        let p = pool(2, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let done = done.clone();
            p.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::SeqCst) < 16 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(done.load(Ordering::SeqCst), 16);
        p.shutdown();
    }

    #[test]
    fn overflow_is_rejected_not_queued() {
        let p = pool(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Wedge the single worker so the queue backs up.
        let g = gate.clone();
        p.submit(move || {
            let mut open = g.0.lock();
            while !*open {
                g.1.wait(&mut open);
            }
        })
        .unwrap();
        // Wait until the worker has actually taken the wedge task.
        let deadline = Instant::now() + Duration::from_secs(5);
        while p.stats().queued > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        p.submit(|| {}).unwrap();
        p.submit(|| {}).unwrap();
        assert_eq!(p.submit(|| {}), Err(SubmitError::Overloaded));
        assert!(p.stats().rejected >= 1);
        *gate.0.lock() = true;
        gate.1.notify_all();
        p.shutdown();
    }

    #[test]
    fn submit_batch_runs_all_and_sheds_past_the_cap() {
        let p = pool(1, 4);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = gate.clone();
        // Wedge the single worker so the batch lands in the queue.
        p.submit(move || {
            let mut open = g.0.lock();
            while !*open {
                g.1.wait(&mut open);
            }
        })
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while p.stats().queued > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Six tasks into a cap-4 queue: per-item verdicts, the first
        // four accepted, the tail shed with Overloaded.
        let done = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<(Box<dyn FnOnce() + Send>, Option<TraceCtx>)> = (0..6)
            .map(|_| {
                let d = done.clone();
                let job: Box<dyn FnOnce() + Send> = Box::new(move || {
                    d.fetch_add(1, Ordering::SeqCst);
                });
                (job, None)
            })
            .collect();
        let results = p.submit_batch(tasks);
        assert_eq!(results.len(), 6);
        assert!(results[..4].iter().all(Result::is_ok));
        assert_eq!(results[4], Err(SubmitError::Overloaded));
        assert_eq!(results[5], Err(SubmitError::Overloaded));
        *gate.0.lock() = true;
        gate.1.notify_all();
        let deadline = Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::SeqCst) < 4 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(done.load(Ordering::SeqCst), 4, "accepted tasks all ran");
        p.shutdown();
        assert_eq!(
            p.submit_batch(vec![(Box::new(|| {}) as Box<dyn FnOnce() + Send>, None)]),
            vec![Err(SubmitError::Closed)]
        );
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        let p = pool(1, 64);
        p.submit(|| panic!("boom")).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        p.submit(move || {
            d.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(p.stats().panicked, 1);
        p.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_tasks() {
        let p = pool(1, 1024);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let d = done.clone();
            p.submit(move || {
                d.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        p.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 64);
        assert_eq!(p.submit(|| {}), Err(SubmitError::Closed));
    }

    #[test]
    fn blocked_worker_is_replaced_by_a_spare() {
        let p = Arc::new(pool(1, 64));
        let unblocker = Arc::new(AtomicUsize::new(0));
        // The single worker's task blocks until a *second* task — which
        // can only run if a spare is injected — unblocks it.
        let (p2, u2) = (p.clone(), unblocker.clone());
        p.submit(move || {
            p2.blocking(|| {
                let deadline = Instant::now() + Duration::from_secs(5);
                while u2.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let u3 = unblocker.clone();
        p.submit(move || {
            u3.store(1, Ordering::SeqCst);
        })
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while unblocker.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(unblocker.load(Ordering::SeqCst), 1, "spare never ran");
        assert!(p.stats().spares_spawned >= 1);
        p.shutdown();
    }

    #[test]
    fn traced_task_records_queue_residency_span() {
        let obs = Arc::new(ObsRegistry::new(7));
        let p = VirtualProcessorPool::new(NodeId(7), 1, 64, &obs);
        let root = obs.root_span("invoke");
        let ctx = root.ctx();
        p.submit_traced(|| {}, Some(ctx)).unwrap();
        // An untraced task must add nothing.
        p.submit(|| {}).unwrap();
        p.shutdown();
        root.finish();
        let spans = obs.traces().spans_for(ctx.trace_id);
        let waits: Vec<_> = spans.iter().filter(|s| s.name == "vproc-wait").collect();
        assert_eq!(waits.len(), 1, "spans: {spans:?}");
        assert_eq!(waits[0].stage, stage::VPROC_QUEUE);
        assert_eq!(waits[0].parent_span, ctx.span_id);
        assert!(waits[0].end_ns >= waits[0].start_ns);
    }

    #[test]
    fn stall_probe_sees_backlog_and_busy_worker() {
        let p = pool(1, 64);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = gate.clone();
        p.submit(move || {
            let mut open = g.0.lock();
            while !*open {
                g.1.wait(&mut open);
            }
        })
        .unwrap();
        // Wait for the worker to take the wedge, then queue one more.
        let deadline = Instant::now() + Duration::from_secs(5);
        while p.stats().queued > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        p.submit(|| {}).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let probe = p.stall_probe();
        assert_eq!(probe.queued, 1);
        assert!(probe.oldest_wait_ns > 0, "queued task must age");
        let (wid, busy_ns) = probe.busiest.expect("wedged worker visible");
        assert_eq!(wid, 0);
        assert!(busy_ns > 0);
        *gate.0.lock() = true;
        gate.1.notify_all();
        p.shutdown();
        let after = p.stall_probe();
        assert_eq!(after.queued, 0);
        assert!(after.busiest.is_none(), "probe after drain: {after:?}");
    }

    #[test]
    fn steady_state_thread_count_is_bounded() {
        let p = pool(3, 4096);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..256 {
            let d = done.clone();
            p.submit(move || {
                d.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
            assert!(
                p.stats().live <= 3,
                "non-blocking load must not grow the pool"
            );
        }
        p.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 256);
    }
}
