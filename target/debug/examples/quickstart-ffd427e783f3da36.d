/root/repo/target/debug/examples/quickstart-ffd427e783f3da36.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ffd427e783f3da36: examples/quickstart.rs

examples/quickstart.rs:
