/root/repo/target/debug/examples/mobile_calendar-956e00f495cbbfac.d: examples/mobile_calendar.rs

/root/repo/target/debug/examples/mobile_calendar-956e00f495cbbfac: examples/mobile_calendar.rs

examples/mobile_calendar.rs:
