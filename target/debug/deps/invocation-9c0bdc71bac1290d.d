/root/repo/target/debug/deps/invocation-9c0bdc71bac1290d.d: crates/bench/benches/invocation.rs

/root/repo/target/debug/deps/invocation-9c0bdc71bac1290d: crates/bench/benches/invocation.rs

crates/bench/benches/invocation.rs:
