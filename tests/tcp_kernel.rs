//! The kernel over real TCP sockets: the multi-process transport driven
//! in-process (three endpoints, three kernels, one object space).

use std::sync::Arc;
use std::time::Duration;

use eden::apps::counter::CounterType;
use eden::capability::Rights;
use eden::kernel::{Node, NodeConfig, TypeRegistry};
use eden::store::MemStore;
use eden::transport::TcpMesh;
use eden::wire::Value;

fn tcp_cluster(n: usize) -> Vec<Node> {
    let meshes = TcpMesh::bind_local_cluster(n).expect("bind cluster");
    meshes
        .into_iter()
        .map(|mesh| {
            let registry = Arc::new(TypeRegistry::new());
            registry.register(Arc::new(CounterType)).unwrap();
            Node::new(
                NodeConfig::default(),
                Arc::new(mesh),
                Arc::new(MemStore::new()),
                registry,
            )
        })
        .collect()
}

#[test]
fn invocation_crosses_tcp() {
    let nodes = tcp_cluster(3);
    let cap = nodes[0]
        .create_object(CounterType::NAME, &[Value::I64(0)])
        .unwrap();
    // Every node invokes over real sockets.
    for (i, node) in nodes.iter().enumerate().skip(1) {
        let out = node
            .invoke_with_timeout(cap, "add", &[Value::I64(i as i64)], Duration::from_secs(5))
            .unwrap();
        assert!(out[0].as_i64().is_some());
    }
    let out = nodes[0].invoke(cap, "get", &[]).unwrap();
    assert_eq!(out, vec![Value::I64(3)]);
    for node in &nodes {
        node.shutdown();
    }
}

#[test]
fn rights_enforcement_is_transport_independent() {
    let nodes = tcp_cluster(2);
    let cap = nodes[0]
        .create_object(CounterType::NAME, &[Value::I64(0)])
        .unwrap();
    let read_only = cap.restrict(Rights::READ);
    let err = nodes[1]
        .invoke_with_timeout(read_only, "add", &[Value::I64(1)], Duration::from_secs(5))
        .unwrap_err();
    assert!(format!("{err}").contains("rights violation"));
    for node in &nodes {
        node.shutdown();
    }
}

#[test]
fn checkpoint_crash_reincarnate_works_over_tcp() {
    let nodes = tcp_cluster(2);
    let cap = nodes[0]
        .create_object(CounterType::NAME, &[Value::I64(41)])
        .unwrap();
    nodes[1]
        .invoke_with_timeout(cap, "add", &[Value::I64(1)], Duration::from_secs(5))
        .unwrap();
    nodes[0].invoke(cap, "checkpoint", &[]).unwrap();
    // No crash op on CounterType beyond reset; drive passivation through
    // the kernel-level store instead: verify the checkpoint exists.
    assert!(matches!(nodes[0].store().latest(cap.name()), Ok(Some(_))));
    let out = nodes[1]
        .invoke_with_timeout(cap, "get", &[], Duration::from_secs(5))
        .unwrap();
    assert_eq!(out, vec![Value::I64(42)]);
    for node in &nodes {
        node.shutdown();
    }
}
