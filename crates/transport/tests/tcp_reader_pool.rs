//! The multiplexed receive path: inbound connections share a small
//! fixed pool of reader threads (`eden-tcp-rdr-*`) instead of spawning
//! one thread per connection, so the kernel's thread count stays flat
//! as peers scale. Kept in its own test binary so sibling tests'
//! threads cannot confuse the per-name counting.

#![cfg(target_os = "linux")]

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use eden_capability::NodeId;
use eden_transport::{Endpoint, TcpMesh, TcpTuning};
use eden_wire::{Frame, Message, WireEncode};

/// Inbound connections driven at the server — well past the pool size.
const CONNECTIONS: usize = 64;
/// The configured reader-pool cap.
const READERS: usize = 4;

/// Live threads in this process whose name marks them as TCP readers.
/// Thread names truncate at 15 bytes, so `eden-tcp-rdr-0-3` shows up
/// as `eden-tcp-rdr-0-`; the pool prefix survives the cut.
fn reader_threads_alive() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("procfs")
        .filter(|entry| {
            let Ok(entry) = entry else { return false };
            std::fs::read_to_string(entry.path().join("comm"))
                .map(|comm| comm.starts_with("eden-tcp-rdr-"))
                .unwrap_or(false)
        })
        .count()
}

#[test]
fn sixty_four_connections_share_a_fixed_reader_pool() {
    let tuning = TcpTuning {
        reader_threads: READERS,
        ..TcpTuning::default()
    };
    let meshes = TcpMesh::bind_local_cluster_with(1, tuning).expect("bind");
    let mesh = &meshes[0];
    let addr = mesh.local_addr();

    // 64 raw inbound connections, each delivering one frame. The
    // streams stay open for the whole test: a per-connection-thread
    // design would be pinned at 64 readers here.
    let mut conns = Vec::with_capacity(CONNECTIONS);
    for i in 0..CONNECTIONS {
        let mut s = TcpStream::connect(addr).expect("connect");
        let frame = Frame::to(NodeId((i + 1) as u16), NodeId(0), Message::Ping { token: i as u64 });
        let payload = frame.encode_to_bytes();
        s.write_all(&(payload.len() as u32).to_le_bytes())
            .expect("write len");
        s.write_all(&payload).expect("write payload");
        conns.push(s);
    }

    // Every frame arrives...
    let deadline = Instant::now() + Duration::from_secs(10);
    while mesh.stats().frames_received < CONNECTIONS as u64 {
        assert!(
            Instant::now() < deadline,
            "only {} of {CONNECTIONS} frames arrived",
            mesh.stats().frames_received
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // ...through exactly the configured pool: the reader count is the
    // cap, not the connection count.
    assert_eq!(mesh.reader_thread_count(), READERS);
    assert_eq!(reader_threads_alive(), READERS);

    // And the frames are really consumable in batches downstream.
    let mut drained = 0usize;
    while drained < CONNECTIONS {
        let batch = mesh
            .recv_batch(CONNECTIONS, Duration::from_secs(2))
            .expect("recv_batch");
        assert!(!batch.is_empty(), "drained only {drained} frames");
        drained += batch.len();
    }

    drop(conns);
    for m in &meshes {
        m.shutdown();
    }
    assert_eq!(
        reader_threads_alive(),
        0,
        "shutdown must reap the reader pool"
    );
}
