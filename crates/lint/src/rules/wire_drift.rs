//! L8 `wire-schema-drift`: the wire schema's three representations —
//! `TAG_*` constants, message/enum variant lists, and the obs_codec
//! `*_to_value` / `*_from_value` Value codecs — must agree.
//!
//! Checks, all scoped to `crates/wire` (enum declarations are gathered
//! workspace-wide so codecs for e.g. `eden-obs`'s `KernelEvent` are
//! checked too):
//!
//! * no two `TAG_*` constants in one file share a value;
//! * every tag is both encoded (`put_u8(TAG_X)`) and decoded
//!   (`TAG_X =>` match arm) somewhere in the workspace — a tag with
//!   neither is retired and must be deleted;
//! * for an enum with both `WireEncode` and `WireDecode` impls, every
//!   declared variant appears in both impl bodies, and no impl arm
//!   references a variant the declaration no longer has;
//! * for `*_to_value` / `*_from_value` function pairs, the variant sets
//!   referenced on the two sides must match (checked only for enums
//!   referenced on *both* sides, so pure value-algebra helpers don't
//!   false-positive), and every referenced variant must still be
//!   declared.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::word_occurrences;
use crate::model::Workspace;
use crate::{Finding, Rule};

pub(crate) fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    let enum_map = ws.enum_map();
    let wire_files = || ws.files.iter().filter(|f| f.crate_key == "wire");

    // Duplicate tag values within one file's tag namespace.
    for file in wire_files() {
        let mut by_value: BTreeMap<u64, &str> = BTreeMap::new();
        for t in &file.tags {
            if let Some(prev) = by_value.insert(t.value, &t.name) {
                out.push(Finding {
                    rule: Rule::WireSchemaDrift,
                    file: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "duplicate wire tag value {}: `{}` collides with `{prev}`; \
                         a decoder cannot tell the two messages apart",
                        t.value, t.name
                    ),
                    suppressed: false,
                });
            }
        }
    }

    // Every tag both encoded and decoded somewhere in the workspace.
    for file in wire_files() {
        for t in &file.tags {
            let (enc, dec) = tag_uses(ws, &t.name);
            let message = match (enc > 0, dec > 0) {
                (true, true) => continue,
                (false, false) => format!(
                    "retired wire tag `{}`: declared but neither encoded nor decoded \
                     anywhere; delete the constant",
                    t.name
                ),
                (true, false) => format!(
                    "wire tag `{}` is encoded but has no `{0} =>` decode arm; peers \
                     sending it will be rejected as BadTag",
                    t.name
                ),
                (false, true) => format!(
                    "wire tag `{}` has a decode arm but is never encoded; the arm is \
                     dead schema — retire it or add the encoder",
                    t.name
                ),
            };
            out.push(Finding {
                rule: Rule::WireSchemaDrift,
                file: file.rel_path.clone(),
                line: t.line,
                message,
                suppressed: false,
            });
        }
    }

    // WireEncode/WireDecode impl coverage per enum.
    for file in wire_files() {
        let has_both = |name: &str| {
            file.impls.iter().any(|i| i.enum_name == name && i.encode)
                && file.impls.iter().any(|i| i.enum_name == name && !i.encode)
        };
        for imp in &file.impls {
            let Some(def) = enum_map.get(imp.enum_name.as_str()) else {
                continue;
            };
            if !has_both(&imp.enum_name) {
                continue;
            }
            let refs: BTreeSet<&str> = imp
                .refs
                .iter()
                .filter(|r| r.enum_name == imp.enum_name)
                .map(|r| r.variant.as_str())
                .collect();
            if refs.is_empty() {
                continue; // numeric-cast codec; variant arms live elsewhere
            }
            let side = if imp.encode { "encode" } else { "decode" };
            for v in &def.variants {
                if !refs.contains(v.as_str()) {
                    out.push(Finding {
                        rule: Rule::WireSchemaDrift,
                        file: file.rel_path.clone(),
                        line: imp.line,
                        message: format!(
                            "variant `{}::{v}` has no arm in `impl Wire{}`; every \
                             declared variant needs both an encode and a decode arm",
                            imp.enum_name,
                            if imp.encode { "Encode" } else { "Decode" },
                        ),
                        suppressed: false,
                    });
                }
            }
            for r in &imp.refs {
                if r.enum_name == imp.enum_name && !def.variants.iter().any(|v| v == &r.variant) {
                    out.push(Finding {
                        rule: Rule::WireSchemaDrift,
                        file: file.rel_path.clone(),
                        line: r.line,
                        message: format!(
                            "retired variant `{}::{}` still has a {side} arm; the enum \
                             no longer declares it",
                            r.enum_name, r.variant
                        ),
                        suppressed: false,
                    });
                }
            }
        }
    }

    // *_to_value / *_from_value pairing per referenced enum.
    for file in wire_files() {
        // enum name → (encode refs, decode refs) with site lines.
        let mut sides: BTreeMap<&str, (BTreeMap<&str, usize>, BTreeMap<&str, usize>)> =
            BTreeMap::new();
        for cf in &file.codec_fns {
            for r in &cf.refs {
                let entry = sides.entry(r.enum_name.as_str()).or_default();
                let side = if cf.encode {
                    &mut entry.0
                } else {
                    &mut entry.1
                };
                side.entry(r.variant.as_str()).or_insert(r.line);
            }
        }
        for (enum_name, (enc, dec)) in &sides {
            if enc.is_empty() || dec.is_empty() {
                continue; // value-algebra helper, not a variant dispatch
            }
            for (v, &line) in enc {
                if !dec.contains_key(v) {
                    out.push(Finding {
                        rule: Rule::WireSchemaDrift,
                        file: file.rel_path.clone(),
                        line,
                        message: format!(
                            "variant `{enum_name}::{v}` is encoded by a *_to_value codec \
                             but never decoded by the paired *_from_value; round-trips drop it"
                        ),
                        suppressed: false,
                    });
                }
            }
            for (v, &line) in dec {
                if !enc.contains_key(v) {
                    out.push(Finding {
                        rule: Rule::WireSchemaDrift,
                        file: file.rel_path.clone(),
                        line,
                        message: format!(
                            "variant `{enum_name}::{v}` is decoded by a *_from_value codec \
                             but never produced by the paired *_to_value; dead decode arm"
                        ),
                        suppressed: false,
                    });
                }
            }
            if let Some(def) = enum_map.get(enum_name) {
                for (v, &line) in enc.iter().chain(dec.iter()) {
                    if !def.variants.iter().any(|d| d == v) {
                        out.push(Finding {
                            rule: Rule::WireSchemaDrift,
                            file: file.rel_path.clone(),
                            line,
                            message: format!(
                                "retired variant `{enum_name}::{v}` still has a Value codec \
                                 arm; the enum no longer declares it"
                            ),
                            suppressed: false,
                        });
                    }
                }
            }
        }
    }
}

/// Workspace-wide `(encode, decode)` use counts for one tag constant:
/// encode = the tag passed as a call argument (`put_u8(TAG_X)`),
/// decode = the tag used as a match-arm pattern (`TAG_X =>`, or-patterns
/// included). The declaration itself counts as neither.
fn tag_uses(ws: &Workspace, tag: &str) -> (usize, usize) {
    let mut enc = 0usize;
    let mut dec = 0usize;
    for file in &ws.files {
        let code = &file.model.code;
        for at in word_occurrences(code, tag) {
            if file.model.is_test_line(file.model.line_of(at)) {
                continue;
            }
            let lead = code[..at].trim_end();
            let tail = code[at + tag.len()..].trim_start();
            if lead.ends_with("const") {
                continue;
            }
            // Decode first: a match arm's lead is often the previous
            // arm's trailing `,`, which must not read as a call argument.
            if tail.starts_with("=>") || tail.starts_with('|') {
                dec += 1;
            } else if lead.ends_with('(') || lead.ends_with(',') {
                enc += 1;
            }
        }
    }
    (enc, dec)
}
