//! TCP transport for multi-process Eden clusters.
//!
//! Each kernel process binds one [`TcpMesh`] endpoint and declares its
//! peers' addresses. Frames travel length-prefixed over per-destination
//! TCP connections; inbound connections are accepted by a listener
//! thread and drained by one reader thread each. Broadcast is unicast
//! to every configured peer — on a switched network that is what
//! Ethernet broadcast degenerates to anyway.
//!
//! The send side is an asynchronous per-peer pipeline (see
//! [`writer`](crate::writer)): `send()` is a non-blocking enqueue onto
//! a bounded per-peer queue; a dedicated writer thread per destination
//! coalesces pending frames into single-syscall batches and dials in
//! the background with exponential backoff, so a cold or dead peer
//! never stalls the caller.
//!
//! Delivery remains best-effort to match the [`Endpoint`] contract: a
//! peer that is down simply does not receive (its frames shed at the
//! bounded queue, counted as drops); the kernel's timeout and retry
//! machinery is responsible for coping, exactly as over the mesh.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::{BufReader, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use eden_capability::NodeId;
use eden_obs::ObsRegistry;
use eden_wire::{Dest, Frame, WireDecode, WireEncode};
use parking_lot::Mutex;

use crate::stats::{StatsCell, TransportStats};
use crate::writer::{SendPipeline, TcpTuning};
use crate::{Endpoint, TransportError};

/// Maximum accepted frame size; guards the length prefix on untrusted
/// input (matches the wire codec's sequence limit).
const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Static configuration of one TCP endpoint.
#[derive(Debug, Clone)]
pub struct TcpMeshConfig {
    /// This endpoint's node id.
    pub node: NodeId,
    /// Address to listen on (use port 0 to let the OS choose, then read
    /// [`TcpMesh::local_addr`]).
    pub listen: SocketAddr,
    /// Peer node ids and their listen addresses.
    pub peers: HashMap<NodeId, SocketAddr>,
    /// Send-pipeline knobs (queue capacity, coalescing budget, dial
    /// backoff); the defaults suit small-frame kernel traffic.
    pub tuning: TcpTuning,
}

impl TcpMeshConfig {
    /// A config with default tuning and no peers yet.
    pub fn new(node: NodeId, listen: SocketAddr) -> Self {
        TcpMeshConfig {
            node,
            listen,
            peers: HashMap::new(),
            tuning: TcpTuning::default(),
        }
    }
}

struct TcpInner {
    node: NodeId,
    pipeline: Arc<SendPipeline>,
    rx_tx: Sender<Frame>,
    stats: Arc<StatsCell>,
    closed: AtomicBool,
    /// Inbound connections accepted so far (test observability for the
    /// one-connection-per-peer invariant).
    inbound_accepted: AtomicU64,
    /// Handles to the live inbound streams, so shutdown can unblock the
    /// reader threads parked in `read_exact`.
    inbound_streams: Mutex<Vec<TcpStream>>,
    reader_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A TCP-backed [`Endpoint`].
///
/// See `examples/multiprocess_net.rs` for a whole cluster of these, one
/// per OS process.
pub struct TcpMesh {
    inner: Arc<TcpInner>,
    rx: Receiver<Frame>,
    local_addr: SocketAddr,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TcpMesh {
    /// Binds the listener and starts the accept loop.
    pub fn bind(config: TcpMeshConfig) -> Result<Self, TransportError> {
        let listener =
            TcpListener::bind(config.listen).map_err(|e| TransportError::Io(e.to_string()))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let (rx_tx, rx) = unbounded();
        let stats = StatsCell::new_shared();
        let pipeline =
            SendPipeline::new(config.node, config.peers, config.tuning, Arc::clone(&stats));
        let inner = Arc::new(TcpInner {
            node: config.node,
            pipeline,
            rx_tx,
            stats,
            closed: AtomicBool::new(false),
            inbound_accepted: AtomicU64::new(0),
            inbound_streams: Mutex::new(Vec::new()),
            reader_threads: Mutex::new(Vec::new()),
        });

        let accept_inner = inner.clone();
        let accept_thread = std::thread::Builder::new()
            .name(format!("eden-tcp-accept-{}", config.node))
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_inner.closed.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    stream.set_nodelay(true).ok();
                    accept_inner
                        .inbound_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    // Keep a handle so shutdown can sever the stream and
                    // unblock the reader; reap finished readers as we go
                    // so long-lived endpoints don't accumulate handles.
                    if let Ok(clone) = stream.try_clone() {
                        accept_inner.inbound_streams.lock().push(clone);
                    }
                    let reader_inner = accept_inner.clone();
                    let spawned = std::thread::Builder::new()
                        .name(format!("eden-tcp-read-{}", reader_inner.node))
                        .spawn(move || reader_loop(&reader_inner, stream));
                    if let Ok(handle) = spawned {
                        let mut readers = accept_inner.reader_threads.lock();
                        readers.retain(|h| !h.is_finished());
                        readers.push(handle);
                    }
                }
            })
            .map_err(|e| TransportError::Io(e.to_string()))?;

        Ok(TcpMesh {
            inner,
            rx,
            local_addr,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The actual bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Registers (or updates) a peer after construction.
    pub fn add_peer(&self, node: NodeId, addr: SocketAddr) {
        self.inner.pipeline.add_peer(node, addr);
    }

    /// Inbound connections accepted over this endpoint's lifetime.
    /// One live peer dials at most once (its writer owns the
    /// connection), so tests assert this stays at the peer count.
    pub fn inbound_connections(&self) -> u64 {
        self.inner.inbound_accepted.load(Ordering::Relaxed)
    }

    /// Binds `n` endpoints on ephemeral loopback ports, fully meshed —
    /// the in-process test harness for the TCP path.
    pub fn bind_local_cluster(n: usize) -> Result<Vec<TcpMesh>, TransportError> {
        Self::bind_local_cluster_with(n, TcpTuning::default())
    }

    /// [`TcpMesh::bind_local_cluster`] with explicit pipeline tuning.
    pub fn bind_local_cluster_with(
        n: usize,
        tuning: TcpTuning,
    ) -> Result<Vec<TcpMesh>, TransportError> {
        let mut meshes = Vec::with_capacity(n);
        for i in 0..n {
            meshes.push(TcpMesh::bind(TcpMeshConfig {
                node: NodeId(i as u16),
                listen: "127.0.0.1:0".parse().expect("literal addr"),
                peers: HashMap::new(),
                tuning: tuning.clone(),
            })?);
        }
        let addrs: Vec<SocketAddr> = meshes.iter().map(|m| m.local_addr()).collect();
        for (i, mesh) in meshes.iter().enumerate() {
            for (j, &addr) in addrs.iter().enumerate() {
                if i != j {
                    mesh.add_peer(NodeId(j as u16), addr);
                }
            }
        }
        Ok(meshes)
    }
}

/// Reads length-prefixed frames from one inbound connection until EOF,
/// error, or shutdown. Reads are buffered (syscalls amortized across
/// the sender's coalesced batches) and frames decode zero-copy: blob
/// fields slice the receive buffer instead of copying out of it.
fn reader_loop(inner: &Arc<TcpInner>, stream: TcpStream) {
    let mut stream = BufReader::with_capacity(64 << 10, stream);
    loop {
        if inner.closed.load(Ordering::Acquire) {
            return;
        }
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return;
        }
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME_BYTES {
            return; // Hostile or corrupt peer: drop the connection.
        }
        let mut payload = BytesMut::zeroed(len as usize);
        if stream.read_exact(&mut payload).is_err() {
            return;
        }
        let payload = payload.freeze();
        let Ok(frame) = Frame::decode_shared(&payload) else {
            return; // Codec failure: the stream is unsynchronized; drop it.
        };
        inner.stats.record_recv(payload.len());
        if inner.rx_tx.send(frame).is_err() {
            return;
        }
    }
}

impl Endpoint for TcpMesh {
    fn node(&self) -> NodeId {
        self.inner.node
    }

    fn send(&self, frame: Frame) -> Result<(), TransportError> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        thread_local! {
            // Encode scratch: frames split off a reused allocation, so
            // the steady state allocates no per-frame BytesMut.
            static SCRATCH: RefCell<BytesMut> = RefCell::new(BytesMut::new());
        }
        let payload: Bytes =
            SCRATCH.with(|scratch| frame.encode_reusing(&mut scratch.borrow_mut()));
        self.inner.stats.record_send(payload.len());
        match frame.dst {
            Dest::Node(dst) => self
                .inner
                .pipeline
                .enqueue_unicast(dst, payload, frame.trace)?,
            Dest::Broadcast => self.inner.pipeline.broadcast(payload, frame.trace),
        }
        Ok(())
    }

    fn recv(&self) -> Result<Frame, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Closed)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Frame>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(f) => Ok(Some(f)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn peers(&self) -> Vec<NodeId> {
        self.inner.pipeline.peer_ids()
    }

    fn stats(&self) -> TransportStats {
        let mut s = self.inner.stats.snapshot();
        s.queue_depth = self.inner.pipeline.queue_depth() as u64;
        s
    }

    fn attach_obs(&self, obs: Arc<ObsRegistry>) {
        self.inner.pipeline.attach_obs(obs);
    }

    fn writer_probe(&self) -> Vec<(NodeId, u64, u64)> {
        self.inner.pipeline.stall_probe()
    }

    fn shutdown(&self) {
        self.inner.closed.store(true, Ordering::Release);
        // Drain and join the per-peer writers first (graceful flush)...
        self.inner.pipeline.shutdown();
        // ...then sever inbound streams so readers parked in
        // `read_exact` wake up and exit (streams are moved out first so
        // the lock is not held across the shutdown syscalls — readers
        // touch this list while exiting),...
        let streams: Vec<_> = self.inner.inbound_streams.lock().drain(..).collect();
        for stream in streams {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // ...poke the listener so the accept loop observes the closed
        // flag,...
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(100));
        if let Some(h) = self.accept_thread.lock().take() {
            let _ = h.join();
        }
        // ...and join the readers: drop(TcpMesh) leaves no live threads.
        for h in self.inner.reader_threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TcpMesh {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_wire::Message;

    fn ping(token: u64) -> Message {
        Message::Ping { token }
    }

    #[test]
    fn two_endpoints_exchange_frames() {
        let meshes = TcpMesh::bind_local_cluster(2).unwrap();
        let (a, b) = (&meshes[0], &meshes[1]);
        a.send(Frame::to(NodeId(0), NodeId(1), ping(1))).unwrap();
        let got = b.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        assert_eq!(got.msg, ping(1));
        assert_eq!(got.src, NodeId(0));

        b.send(Frame::to(NodeId(1), NodeId(0), ping(2))).unwrap();
        let got = a.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        assert_eq!(got.msg, ping(2));
    }

    #[test]
    fn frames_are_fifo_per_sender() {
        let meshes = TcpMesh::bind_local_cluster(2).unwrap();
        let (a, b) = (&meshes[0], &meshes[1]);
        for i in 0..200 {
            a.send(Frame::to(NodeId(0), NodeId(1), ping(i))).unwrap();
        }
        for i in 0..200 {
            let got = b.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
            assert_eq!(got.msg, ping(i));
        }
    }

    #[test]
    fn broadcast_reaches_all_peers() {
        let meshes = TcpMesh::bind_local_cluster(3).unwrap();
        meshes[0]
            .send(Frame::broadcast(NodeId(0), ping(9)))
            .unwrap();
        for m in &meshes[1..] {
            let got = m.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
            assert_eq!(got.msg, ping(9));
        }
    }

    #[test]
    fn unknown_unicast_peer_is_an_error() {
        let meshes = TcpMesh::bind_local_cluster(1).unwrap();
        assert_eq!(
            meshes[0].send(Frame::to(NodeId(0), NodeId(42), ping(0))),
            Err(TransportError::UnknownPeer(NodeId(42)))
        );
    }

    #[test]
    fn sending_to_dead_peer_is_best_effort() {
        let meshes = TcpMesh::bind_local_cluster(2).unwrap();
        let dead_addr = meshes[1].local_addr();
        meshes[1].shutdown();
        // Give the OS a moment to release the port.
        std::thread::sleep(Duration::from_millis(50));
        let a = &meshes[0];
        a.add_peer(NodeId(1), dead_addr);
        // Must not error: Ethernet semantics.
        a.send(Frame::to(NodeId(0), NodeId(1), ping(1))).unwrap();
    }

    #[test]
    fn large_frames_survive_the_wire() {
        let meshes = TcpMesh::bind_local_cluster(2).unwrap();
        let blob = vec![0xa5u8; 1 << 20];
        let msg = Message::InvokeRequest {
            inv_id: 1,
            target: eden_capability::Capability::mint(
                eden_capability::NameGenerator::with_epoch(NodeId(0), 1).next_name(),
            ),
            operation: "put".into(),
            args: vec![eden_wire::Value::Blob(bytes::Bytes::from(blob.clone()))],
            reply_to: NodeId(0),
            hops: 1,
        };
        meshes[0]
            .send(Frame::to(NodeId(0), NodeId(1), msg.clone()))
            .unwrap();
        let got = meshes[1]
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .unwrap();
        assert_eq!(got.msg, msg);
    }

    #[test]
    fn stats_track_bytes_on_the_wire() {
        let meshes = TcpMesh::bind_local_cluster(2).unwrap();
        meshes[0]
            .send(Frame::to(NodeId(0), NodeId(1), ping(1)))
            .unwrap();
        meshes[1].recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(meshes[0].stats().frames_sent, 1);
        assert!(meshes[0].stats().bytes_sent > 0);
        assert_eq!(meshes[1].stats().frames_received, 1);
    }

    #[test]
    fn coalescing_batches_are_counted() {
        let meshes = TcpMesh::bind_local_cluster(2).unwrap();
        let (a, b) = (&meshes[0], &meshes[1]);
        for i in 0..64 {
            a.send(Frame::to(NodeId(0), NodeId(1), ping(i))).unwrap();
        }
        for _ in 0..64 {
            b.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        }
        let s = a.stats();
        assert_eq!(s.frames_sent, 64);
        assert!(s.batches_sent >= 1, "batches must be counted");
        assert!(
            s.batches_sent <= 64,
            "batches cannot exceed frames: {}",
            s.batches_sent
        );
        assert_eq!(s.dials, 1, "one peer, one dial");
        assert_eq!(s.queue_depth, 0, "queue drained after delivery");
    }

    #[test]
    fn shutdown_is_idempotent_and_closes_send() {
        let meshes = TcpMesh::bind_local_cluster(2).unwrap();
        meshes[0].shutdown();
        meshes[0].shutdown();
        assert_eq!(
            meshes[0].send(Frame::to(NodeId(0), NodeId(1), ping(0))),
            Err(TransportError::Closed)
        );
    }
}

#[cfg(test)]
mod reconnect_tests {
    use super::*;
    use eden_wire::Message;

    #[test]
    fn sender_redials_after_the_peer_restarts() {
        // Endpoint A talks to B; B dies and a new endpoint rebinds the
        // same port; A's next sends reach the reincarnated B.
        let a = TcpMesh::bind(TcpMeshConfig::new(
            NodeId(0),
            "127.0.0.1:0".parse().unwrap(),
        ))
        .unwrap();
        let b1 = TcpMesh::bind(TcpMeshConfig::new(
            NodeId(1),
            "127.0.0.1:0".parse().unwrap(),
        ))
        .unwrap();
        let b_addr = b1.local_addr();
        a.add_peer(NodeId(1), b_addr);

        a.send(Frame::to(NodeId(0), NodeId(1), Message::Ping { token: 1 }))
            .unwrap();
        assert!(b1.recv_timeout(Duration::from_secs(2)).unwrap().is_some());

        // B restarts on the same address.
        b1.shutdown();
        std::thread::sleep(Duration::from_millis(50));
        let b2 =
            TcpMesh::bind(TcpMeshConfig::new(NodeId(1), b_addr)).expect("rebind the released port");

        // A's first send may land on the dead connection (best-effort
        // drop); the redial then delivers. Retry a few times like the
        // kernel's retransmission layer would.
        let mut got = None;
        for token in 10..20 {
            a.send(Frame::to(NodeId(0), NodeId(1), Message::Ping { token }))
                .unwrap();
            if let Some(frame) = b2.recv_timeout(Duration::from_millis(300)).unwrap() {
                got = Some(frame);
                break;
            }
        }
        let frame = got.expect("reconnection must eventually deliver");
        assert!(matches!(frame.msg, Message::Ping { .. }));
        a.shutdown();
        b2.shutdown();
    }
}
