//! Kernel error types.

use eden_store::StoreError;
use eden_transport::TransportError;
use eden_wire::Status;

/// Errors surfaced by kernel primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdenError {
    /// An invocation completed with a non-`Ok` status (the status word of
    /// §4.2's `Returns (status)`).
    Invoke(Status),
    /// The network layer failed outright (closed transport, unknown peer).
    Transport(TransportError),
    /// Long-term storage failed.
    Store(StoreError),
    /// The named type is not registered on the node that needed it.
    UnknownType(String),
    /// A type registration was rejected (duplicate, bad classes, missing
    /// parent, …), with the reason.
    BadTypeSpec(String),
    /// The kernel is shutting down.
    ShuttingDown,
    /// Invalid arguments to a kernel primitive.
    BadRequest(String),
}

impl EdenError {
    /// The invocation status, if this error carries one.
    pub fn status(&self) -> Option<&Status> {
        match self {
            EdenError::Invoke(s) => Some(s),
            _ => None,
        }
    }

    /// Shorthand: is this an invocation timeout?
    pub fn is_timeout(&self) -> bool {
        matches!(self, EdenError::Invoke(Status::Timeout))
    }
}

impl core::fmt::Display for EdenError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EdenError::Invoke(s) => write!(f, "invocation failed: {s}"),
            EdenError::Transport(e) => write!(f, "transport: {e}"),
            EdenError::Store(e) => write!(f, "store: {e}"),
            EdenError::UnknownType(t) => write!(f, "unknown type: {t}"),
            EdenError::BadTypeSpec(m) => write!(f, "bad type spec: {m}"),
            EdenError::ShuttingDown => write!(f, "kernel shutting down"),
            EdenError::BadRequest(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for EdenError {}

impl From<TransportError> for EdenError {
    fn from(e: TransportError) -> Self {
        EdenError::Transport(e)
    }
}

impl From<StoreError> for EdenError {
    fn from(e: StoreError) -> Self {
        EdenError::Store(e)
    }
}

/// Kernel result alias.
pub type Result<T> = std::result::Result<T, EdenError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_accessor() {
        let e = EdenError::Invoke(Status::Timeout);
        assert_eq!(e.status(), Some(&Status::Timeout));
        assert!(e.is_timeout());
        assert_eq!(EdenError::ShuttingDown.status(), None);
    }

    #[test]
    fn conversions_wrap() {
        let e: EdenError = TransportError::Closed.into();
        assert_eq!(e, EdenError::Transport(TransportError::Closed));
        let e: EdenError = StoreError::Injected("x").into();
        assert_eq!(e, EdenError::Store(StoreError::Injected("x")));
    }

    #[test]
    fn display_is_informative() {
        let s = format!("{}", EdenError::UnknownType("mailbox".into()));
        assert!(s.contains("mailbox"));
    }
}
