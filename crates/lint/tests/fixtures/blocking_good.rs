// Fixture: sanctioned blocking (scanned as crates/directory/src/work.rs).
// Pool-reachable waits are wrapped in blocking(); dedicated threads may
// block freely.

impl Node {
    fn dispatch(&self) {
        self.pool.submit(move || self.execute());
    }

    fn execute(&self) {
        // The pool is told this path may stall: a spare gets injected.
        let out = self.pool.blocking(|| self.step());
        self.fanout(out);
    }

    fn step(&self) {
        self.cv.wait(&mut guard); // only reached under blocking()
    }

    fn fanout(&self, out: u64) {
        std::thread::spawn(move || {
            std::thread::sleep(NAP); // a dedicated thread is allowed to block
        });
    }
}
