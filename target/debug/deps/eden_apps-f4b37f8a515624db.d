/root/repo/target/debug/deps/eden_apps-f4b37f8a515624db.d: crates/apps/src/lib.rs crates/apps/src/calendar.rs crates/apps/src/counter.rs crates/apps/src/hierarchy.rs crates/apps/src/mail.rs crates/apps/src/policy.rs crates/apps/src/queue.rs

/root/repo/target/debug/deps/libeden_apps-f4b37f8a515624db.rlib: crates/apps/src/lib.rs crates/apps/src/calendar.rs crates/apps/src/counter.rs crates/apps/src/hierarchy.rs crates/apps/src/mail.rs crates/apps/src/policy.rs crates/apps/src/queue.rs

/root/repo/target/debug/deps/libeden_apps-f4b37f8a515624db.rmeta: crates/apps/src/lib.rs crates/apps/src/calendar.rs crates/apps/src/counter.rs crates/apps/src/hierarchy.rs crates/apps/src/mail.rs crates/apps/src/policy.rs crates/apps/src/queue.rs

crates/apps/src/lib.rs:
crates/apps/src/calendar.rs:
crates/apps/src/counter.rs:
crates/apps/src/hierarchy.rs:
crates/apps/src/mail.rs:
crates/apps/src/policy.rs:
crates/apps/src/queue.rs:
