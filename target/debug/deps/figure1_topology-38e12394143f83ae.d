/root/repo/target/debug/deps/figure1_topology-38e12394143f83ae.d: tests/figure1_topology.rs

/root/repo/target/debug/deps/figure1_topology-38e12394143f83ae: tests/figure1_topology.rs

tests/figure1_topology.rs:
