//! Kernel-supplied intra-object synchronization primitives.
//!
//! §4.2: "for fine-grained synchronization control, programmers can use
//! kernel-supplied *semaphore* and *message port* primitives." Both are
//! per-object, created on demand by name through the [`OpCtx`], and live
//! in the short-term state — they are never checkpointed and are rebuilt
//! empty on reincarnation (§4.1: short-term state "is never written to
//! long-term storage").
//!
//! [`OpCtx`]: crate::OpCtx

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use eden_wire::Value;

use self::shim::{Condvar, Mutex};

/// The sync primitives the kernel's concurrency-sensitive paths build
/// on, swappable at compile time for model checking.
///
/// Normally these are `parking_lot` and `std::thread`. Under
/// `RUSTFLAGS="--cfg loom"` (the `scripts/ci.sh loom` target) they
/// become the `loom` crate's instrumented equivalents, so the
/// [`VirtualProcessorPool`](crate::vproc::VirtualProcessorPool) and the
/// intra-object primitives in this module run under the model checker's
/// schedule exploration without any source changes. The two APIs are
/// kept parking_lot-shaped (`lock()` returns the guard directly).
pub mod shim {
    #[cfg(loom)]
    pub use loom::sync::{Condvar, Mutex};
    #[cfg(loom)]
    pub use loom::thread;
    #[cfg(not(loom))]
    pub use parking_lot::{Condvar, Mutex};
    #[cfg(not(loom))]
    pub use std::thread;
}

/// A counting semaphore for invocation processes and behaviors within one
/// object.
pub struct EdenSemaphore {
    count: Mutex<u64>,
    cv: Condvar,
}

impl EdenSemaphore {
    /// A semaphore with `initial` permits.
    pub fn new(initial: u64) -> Self {
        EdenSemaphore {
            count: Mutex::new(initial),
            cv: Condvar::new(),
        }
    }

    /// P: blocks until a permit is available, then takes it.
    pub fn p(&self) {
        let mut count = self.count.lock();
        while *count == 0 {
            // eden-lint: allow(blocking-discipline): P parks by design —
            // the vproc gate sizes permits to the pool and V()s around
            // nested invokes (HOLDS_VPROC), so wrapping this wait in
            // blocking() would inject spares that immediately park on the
            // same gate; user-level semaphore waits are §4.2 semantics.
            self.cv.wait(&mut count);
        }
        *count -= 1;
    }

    /// P with a deadline; `false` if it expired.
    pub fn p_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut count = self.count.lock();
        while *count == 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.cv.wait_for(&mut count, deadline - now);
        }
        *count -= 1;
        true
    }

    /// Non-blocking P.
    pub fn try_p(&self) -> bool {
        let mut count = self.count.lock();
        if *count == 0 {
            return false;
        }
        *count -= 1;
        true
    }

    /// V: releases one permit.
    pub fn v(&self) {
        let mut count = self.count.lock();
        *count += 1;
        self.cv.notify_one();
    }

    /// Current permit count (diagnostics only; racy by nature).
    pub fn permits(&self) -> u64 {
        *self.count.lock()
    }
}

/// A many-producer, many-consumer port carrying [`Value`]s between the
/// processes of one object (invocations and behaviors).
pub struct MessagePort {
    queue: Mutex<PortState>,
    recv_cv: Condvar,
    send_cv: Condvar,
}

struct PortState {
    items: VecDeque<Value>,
    capacity: Option<usize>,
    closed: bool,
}

impl MessagePort {
    /// An unbounded port.
    pub fn unbounded() -> Self {
        MessagePort::with_capacity(None)
    }

    /// A port that blocks senders beyond `capacity` queued messages.
    pub fn bounded(capacity: usize) -> Self {
        MessagePort::with_capacity(Some(capacity))
    }

    fn with_capacity(capacity: Option<usize>) -> Self {
        MessagePort {
            queue: Mutex::new(PortState {
                items: VecDeque::new(),
                capacity,
                closed: false,
            }),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
        }
    }

    /// Sends a message, blocking while the port is full. Returns `false`
    /// if the port is closed.
    pub fn send(&self, value: Value) -> bool {
        let mut q = self.queue.lock();
        loop {
            if q.closed {
                return false;
            }
            match q.capacity {
                Some(cap) if q.items.len() >= cap => self.send_cv.wait(&mut q),
                _ => break,
            }
        }
        q.items.push_back(value);
        self.recv_cv.notify_one();
        true
    }

    /// Receives the next message, blocking until one arrives or the port
    /// closes (then `None`).
    pub fn recv(&self) -> Option<Value> {
        let mut q = self.queue.lock();
        loop {
            if let Some(v) = q.items.pop_front() {
                self.send_cv.notify_one();
                return Some(v);
            }
            if q.closed {
                return None;
            }
            self.recv_cv.wait(&mut q);
        }
    }

    /// Receives with a deadline; `None` on timeout or closure.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Value> {
        let deadline = Instant::now() + timeout;
        let mut q = self.queue.lock();
        loop {
            if let Some(v) = q.items.pop_front() {
                self.send_cv.notify_one();
                return Some(v);
            }
            if q.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.recv_cv.wait_for(&mut q, deadline - now);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Value> {
        let mut q = self.queue.lock();
        let v = q.items.pop_front();
        if v.is_some() {
            self.send_cv.notify_one();
        }
        v
    }

    /// Closes the port: senders fail, receivers drain then get `None`.
    /// Called by the kernel when the object crashes or moves.
    pub fn close(&self) {
        let mut q = self.queue.lock();
        q.closed = true;
        self.recv_cv.notify_all();
        self.send_cv.notify_all();
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.queue.lock().items.len()
    }

    /// Tests whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn semaphore_counts_permits() {
        let s = EdenSemaphore::new(2);
        assert!(s.try_p());
        assert!(s.try_p());
        assert!(!s.try_p());
        s.v();
        assert!(s.try_p());
    }

    #[test]
    fn semaphore_p_blocks_until_v() {
        let s = Arc::new(EdenSemaphore::new(0));
        let s2 = s.clone();
        let t = std::thread::spawn(move || {
            s2.p();
            "woke"
        });
        std::thread::sleep(Duration::from_millis(20));
        s.v();
        assert_eq!(t.join().unwrap(), "woke");
    }

    #[test]
    fn semaphore_p_timeout_expires() {
        let s = EdenSemaphore::new(0);
        let start = Instant::now();
        assert!(!s.p_timeout(Duration::from_millis(25)));
        assert!(start.elapsed() >= Duration::from_millis(23));
        s.v();
        assert!(s.p_timeout(Duration::from_millis(25)));
    }

    #[test]
    fn semaphore_provides_mutual_exclusion() {
        let s = Arc::new(EdenSemaphore::new(1));
        let counter = Arc::new(Mutex::new((0u32, 0u32))); // (inside, max_inside)
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = s.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    s.p();
                    {
                        let mut c = counter.lock();
                        c.0 += 1;
                        c.1 = c.1.max(c.0);
                    }
                    std::thread::yield_now();
                    {
                        let mut c = counter.lock();
                        c.0 -= 1;
                    }
                    s.v();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.lock().1, 1, "critical section was never shared");
    }

    #[test]
    fn port_is_fifo() {
        let p = MessagePort::unbounded();
        for i in 0..10 {
            assert!(p.send(Value::I64(i)));
        }
        for i in 0..10 {
            assert_eq!(p.recv(), Some(Value::I64(i)));
        }
    }

    #[test]
    fn bounded_port_blocks_senders() {
        let p = Arc::new(MessagePort::bounded(1));
        assert!(p.send(Value::Unit));
        let p2 = p.clone();
        let t = std::thread::spawn(move || {
            let start = Instant::now();
            assert!(p2.send(Value::Bool(true)));
            start.elapsed()
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(p.recv(), Some(Value::Unit));
        let blocked_for = t.join().unwrap();
        assert!(blocked_for >= Duration::from_millis(25), "{blocked_for:?}");
        assert_eq!(p.recv(), Some(Value::Bool(true)));
    }

    #[test]
    fn recv_timeout_expires_empty() {
        let p = MessagePort::unbounded();
        assert_eq!(p.recv_timeout(Duration::from_millis(20)), None);
    }

    #[test]
    fn close_wakes_everyone() {
        let p = Arc::new(MessagePort::unbounded());
        let p2 = p.clone();
        let receiver = std::thread::spawn(move || p2.recv());
        std::thread::sleep(Duration::from_millis(20));
        p.close();
        assert_eq!(receiver.join().unwrap(), None);
        assert!(!p.send(Value::Unit), "send after close must fail");
    }

    #[test]
    fn close_lets_receivers_drain() {
        let p = MessagePort::unbounded();
        p.send(Value::I64(1));
        p.close();
        assert_eq!(p.recv(), Some(Value::I64(1)));
        assert_eq!(p.recv(), None);
    }

    #[test]
    fn many_producers_one_consumer() {
        let p = Arc::new(MessagePort::unbounded());
        let mut handles = Vec::new();
        for t in 0..4i64 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    p.send(Value::I64(t * 1000 + i));
                }
            }));
        }
        let mut got = Vec::new();
        for _ in 0..1000 {
            got.push(p.recv().unwrap());
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 1000);
    }
}
