/root/repo/target/debug/deps/model-bfacd81ac5b6b4b5.d: crates/core/tests/model.rs

/root/repo/target/debug/deps/model-bfacd81ac5b6b4b5: crates/core/tests/model.rs

crates/core/tests/model.rs:
