//! Unique, for-all-time object names.
//!
//! §4.1: "The name is a system-wide, unique-for-all-time binary identifier
//! for the object; the name is location-independent, although it may
//! indicate where the object was created."
//!
//! An [`ObjName`] packs three fields:
//!
//! * the **birth node** — the node machine on which the object was created.
//!   This is a *hint*, not an address: objects move, and the kernel's
//!   location service treats the birth node only as the first place to ask.
//! * a **boot epoch** — a random value drawn when the creating kernel boots,
//!   making names unique across restarts of the same node without stable
//!   storage for a counter.
//! * a **sequence number** — monotonically increasing within one boot epoch.

use core::fmt;
use core::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;

/// Identifies one node machine (equivalently, one kernel instance) in an
/// Eden system.
///
/// Eden interconnects homogeneous node machines on one local network (§3);
/// sixteen bits comfortably covers the twenty machines the project planned
/// and any cluster this reproduction simulates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A system-wide, unique-for-all-time object name.
///
/// Names are plain values: copying a name conveys no authority (authority
/// lives in [`Capability`](crate::Capability) rights). Names order first by
/// birth node, then epoch, then sequence, which gives a stable total order
/// convenient for deterministic iteration in tests and benchmarks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjName {
    birth_node: NodeId,
    epoch: u32,
    seq: u64,
}

impl ObjName {
    /// Reassembles a name from its packed fields (wire decoding, stores).
    pub fn from_parts(birth_node: NodeId, epoch: u32, seq: u64) -> Self {
        ObjName {
            birth_node,
            epoch,
            seq,
        }
    }

    /// The node on which this object was created — a location *hint* only.
    pub fn birth_node(&self) -> NodeId {
        self.birth_node
    }

    /// The boot epoch of the creating kernel.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The per-epoch sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Packs the name into a single `u128` (used by the wire codec).
    pub fn to_u128(&self) -> u128 {
        ((self.birth_node.0 as u128) << 96) | ((self.epoch as u128) << 64) | self.seq as u128
    }

    /// Unpacks a name from the `u128` produced by [`ObjName::to_u128`].
    pub fn from_u128(raw: u128) -> Self {
        ObjName {
            birth_node: NodeId((raw >> 96) as u16),
            epoch: (raw >> 64) as u32,
            seq: raw as u64,
        }
    }
}

impl fmt::Debug for ObjName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:08x}.{}", self.birth_node, self.epoch, self.seq)
    }
}

impl fmt::Display for ObjName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Mints fresh [`ObjName`]s for one kernel boot.
///
/// Thread-safe: the kernel shares one generator among all virtual
/// processors. Sequence numbers never repeat within an epoch, and the
/// random epoch makes collision across boots of the same node vanishingly
/// unlikely (2^-32 per pair of boots).
pub struct NameGenerator {
    node: NodeId,
    epoch: u32,
    next_seq: AtomicU64,
}

impl NameGenerator {
    /// Creates a generator for `node` with a random boot epoch.
    pub fn new(node: NodeId) -> Self {
        let epoch = rand::rng().random::<u32>();
        NameGenerator::with_epoch(node, epoch)
    }

    /// Creates a generator with an explicit epoch (deterministic tests).
    pub fn with_epoch(node: NodeId, epoch: u32) -> Self {
        NameGenerator {
            node,
            epoch,
            next_seq: AtomicU64::new(0),
        }
    }

    /// Mints the next unique name.
    pub fn next_name(&self) -> ObjName {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        ObjName {
            birth_node: self.node,
            epoch: self.epoch,
            seq,
        }
    }

    /// The node this generator mints names for.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn names_are_unique_within_generator() {
        let g = NameGenerator::with_epoch(NodeId(7), 42);
        let names: HashSet<ObjName> = (0..10_000).map(|_| g.next_name()).collect();
        assert_eq!(names.len(), 10_000);
    }

    #[test]
    fn names_record_birth_node() {
        let g = NameGenerator::with_epoch(NodeId(9), 1);
        assert_eq!(g.next_name().birth_node(), NodeId(9));
    }

    #[test]
    fn names_are_unique_across_nodes() {
        let a = NameGenerator::with_epoch(NodeId(1), 5);
        let b = NameGenerator::with_epoch(NodeId(2), 5);
        assert_ne!(a.next_name(), b.next_name());
    }

    #[test]
    fn names_are_unique_across_epochs() {
        let a = NameGenerator::with_epoch(NodeId(1), 5);
        let b = NameGenerator::with_epoch(NodeId(1), 6);
        assert_ne!(a.next_name(), b.next_name());
    }

    #[test]
    fn concurrent_minting_never_collides() {
        let g = std::sync::Arc::new(NameGenerator::with_epoch(NodeId(3), 0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                (0..1_000).map(|_| g.next_name()).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for n in h.join().unwrap() {
                assert!(all.insert(n), "duplicate name {n:?}");
            }
        }
        assert_eq!(all.len(), 8_000);
    }

    proptest! {
        #[test]
        fn u128_round_trip(node in 0u16.., epoch in 0u32.., seq in 0u64..) {
            let n = ObjName::from_parts(NodeId(node), epoch, seq);
            prop_assert_eq!(ObjName::from_u128(n.to_u128()), n);
        }

        #[test]
        fn ordering_matches_field_ordering(
            a in (0u16.., 0u32.., 0u64..),
            b in (0u16.., 0u32.., 0u64..),
        ) {
            let na = ObjName::from_parts(NodeId(a.0), a.1, a.2);
            let nb = ObjName::from_parts(NodeId(b.0), b.1, b.2);
            prop_assert_eq!(na.cmp(&nb), a.cmp(&b));
        }
    }
}
