//! Simulated time.
//!
//! The simulator counts nanoseconds in a `u64`, which covers ~584 years of
//! simulated time — far beyond any experiment. Times are opaque ordered
//! values; durations are plain nanosecond counts.

use core::fmt;

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Advances by `ns` nanoseconds.
    #[must_use]
    pub fn after_ns(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }

    /// The elapsed nanoseconds since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` — a simulator logic error.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0
            .checked_sub(earlier.0)
            .expect("time arithmetic went backwards")
    }

    /// This time as fractional seconds (for rate computations).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0 / 1_000;
        let ns = self.0 % 1_000;
        write!(f, "{us}.{ns:03}us")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Converts a bit count to nanoseconds at `bit_rate_bps`.
pub fn bits_to_ns(bits: u64, bit_rate_bps: u64) -> u64 {
    // Round up: a partial nanosecond still occupies the channel.
    (bits * 1_000_000_000).div_ceil(bit_rate_bps)
}

/// Converts a microsecond count to nanoseconds.
pub const fn us(n: u64) -> u64 {
    n * 1_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn after_and_since_are_inverse() {
        let t = SimTime::ZERO.after_ns(1500);
        assert_eq!(t.since(SimTime::ZERO), 1500);
        assert_eq!(t.after_ns(300).since(t), 300);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn since_earlier_panics() {
        SimTime(5).since(SimTime(10));
    }

    #[test]
    fn bits_convert_at_ten_megabit() {
        // 10 Mb/s: one bit = 100 ns.
        assert_eq!(bits_to_ns(1, 10_000_000), 100);
        // A 512-bit slot = 51.2 us.
        assert_eq!(bits_to_ns(512, 10_000_000), 51_200);
        // A 1500-byte frame = 1.2 ms.
        assert_eq!(bits_to_ns(1500 * 8, 10_000_000), 1_200_000);
    }

    #[test]
    fn bits_round_up() {
        // 3 bits at 7 bps is 428571428.57.. ns; must round up.
        assert_eq!(bits_to_ns(3, 7), 428_571_429);
    }

    #[test]
    fn seconds_conversion() {
        assert_eq!(SimTime(2_500_000_000).as_secs_f64(), 2.5);
    }
}
