/root/repo/target/debug/deps/trace-7d7161c87625328b.d: tests/trace.rs Cargo.toml

/root/repo/target/debug/deps/libtrace-7d7161c87625328b.rmeta: tests/trace.rs Cargo.toml

tests/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
