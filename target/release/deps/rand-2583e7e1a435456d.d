/root/repo/target/release/deps/rand-2583e7e1a435456d.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-2583e7e1a435456d.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-2583e7e1a435456d.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
