/root/repo/target/debug/deps/eden-58a704af5f68fa7b.d: src/lib.rs

/root/repo/target/debug/deps/eden-58a704af5f68fa7b: src/lib.rs

src/lib.rs:
