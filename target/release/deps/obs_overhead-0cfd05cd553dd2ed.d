/root/repo/target/release/deps/obs_overhead-0cfd05cd553dd2ed.d: crates/bench/benches/obs_overhead.rs

/root/repo/target/release/deps/obs_overhead-0cfd05cd553dd2ed: crates/bench/benches/obs_overhead.rs

crates/bench/benches/obs_overhead.rs:
