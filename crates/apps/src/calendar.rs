//! Per-user calendars and a distributed meeting scheduler.
//!
//! The scheduler is the shape of distributed application the paper
//! motivates: one logical operation ("find a meeting slot for these
//! people") fans out into invocations on several objects that may live
//! on different node machines, with no shared memory anywhere.

use eden_capability::{Capability, NodeId, Rights};
use eden_kernel::{Node, OpCtx, OpError, OpResult, TypeManager, TypeSpec};
use eden_wire::Value;

/// Hours a calendar manages per day (9:00–17:00 here).
pub const FIRST_HOUR: u64 = 9;
/// One past the last bookable hour.
pub const LAST_HOUR: u64 = 17;

fn slot_segment(day: u64, hour: u64) -> String {
    format!("slot:{day:06}:{hour:02}")
}

/// A user's appointment calendar.
///
/// Operations:
///
/// | op | class | rights | effect |
/// |---|---|---|---|
/// | `book [day, hour, title]` | writes (1) | WRITE | book if free; `Bool` granted |
/// | `cancel [day, hour]` | writes | WRITE | free a slot |
/// | `agenda [day]` | reads (4) | READ | `[(hour, title)]` for a day |
/// | `free_hours [day]` | reads | READ | free hours of a day |
/// | `relocate [node]` | writes | MOVE | move to the user's node |
pub struct CalendarType;

impl CalendarType {
    /// The registered type name.
    pub const NAME: &'static str = "calendar";
}

impl TypeManager for CalendarType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(CalendarType::NAME)
            .class("writes", 1)
            .class("reads", 4)
            .op("book", "writes", Rights::WRITE)
            .op("cancel", "writes", Rights::WRITE)
            .op("agenda", "reads", Rights::READ)
            .op("free_hours", "reads", Rights::READ)
            .op("relocate", "writes", Rights::MOVE)
    }

    fn initialize(&self, ctx: &OpCtx<'_>, _args: &[Value]) -> Result<(), OpError> {
        ctx.checkpoint()?;
        Ok(())
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "book" => {
                let day = OpCtx::u64_arg(args, 0)?;
                let hour = OpCtx::u64_arg(args, 1)?;
                let title = OpCtx::str_arg(args, 2)?.to_string();
                if !(FIRST_HOUR..LAST_HOUR).contains(&hour) {
                    return Err(OpError::type_error(format!(
                        "hour must be in {FIRST_HOUR}..{LAST_HOUR}"
                    )));
                }
                let granted = ctx.mutate_repr(|r| {
                    let seg = slot_segment(day, hour);
                    if r.contains(&seg) {
                        false
                    } else {
                        r.put_str(seg, &title);
                        true
                    }
                })?;
                if granted {
                    ctx.checkpoint()?;
                }
                Ok(vec![Value::Bool(granted)])
            }
            "cancel" => {
                let day = OpCtx::u64_arg(args, 0)?;
                let hour = OpCtx::u64_arg(args, 1)?;
                let removed = ctx.mutate_repr(|r| r.remove(&slot_segment(day, hour)).is_some())?;
                if !removed {
                    return Err(OpError::app(404, "slot is not booked"));
                }
                ctx.checkpoint()?;
                Ok(vec![])
            }
            "agenda" => {
                let day = OpCtx::u64_arg(args, 0)?;
                let prefix = format!("slot:{day:06}:");
                let items: Vec<Value> = ctx.read_repr(|r| {
                    r.segments_with_prefix(&prefix)
                        .filter_map(|seg| {
                            let hour: u64 = seg[prefix.len()..].parse().ok()?;
                            let title = r.get_str(seg)?;
                            Some(Value::List(vec![Value::U64(hour), Value::Str(title)]))
                        })
                        .collect()
                });
                Ok(vec![Value::List(items)])
            }
            "free_hours" => {
                let day = OpCtx::u64_arg(args, 0)?;
                let free: Vec<Value> = ctx.read_repr(|r| {
                    (FIRST_HOUR..LAST_HOUR)
                        .filter(|&h| !r.contains(&slot_segment(day, h)))
                        .map(Value::U64)
                        .collect()
                });
                Ok(vec![Value::List(free)])
            }
            "relocate" => {
                let dst = OpCtx::u64_arg(args, 0)? as u16;
                ctx.move_to(NodeId(dst))?;
                Ok(vec![])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// Client-side scheduling across many calendars.
pub struct MeetingScheduler {
    node: Node,
}

impl MeetingScheduler {
    /// A scheduler issuing invocations through `node`.
    pub fn new(node: Node) -> Self {
        MeetingScheduler { node }
    }

    /// Finds the earliest hour on `day` free in *every* calendar and
    /// books it everywhere. Returns the hour, or `None` if no common
    /// slot exists. Booking races are handled by unbooking and moving to
    /// the next candidate (calendars themselves serialize via their
    /// `writes` class).
    pub fn schedule(
        &self,
        calendars: &[Capability],
        day: u64,
        title: &str,
    ) -> eden_kernel::Result<Option<u64>> {
        assert!(!calendars.is_empty(), "need at least one attendee");
        // Intersect free hours.
        let mut common: Option<Vec<u64>> = None;
        for cal in calendars {
            let out = self.node.invoke(*cal, "free_hours", &[Value::U64(day)])?;
            let free: Vec<u64> = out
                .first()
                .and_then(Value::as_list)
                .map(|l| l.iter().filter_map(Value::as_u64).collect())
                .unwrap_or_default();
            common = Some(match common {
                None => free,
                Some(prev) => prev.into_iter().filter(|h| free.contains(h)).collect(),
            });
        }
        let candidates = common.unwrap_or_default();

        'candidate: for hour in candidates {
            let mut booked: Vec<Capability> = Vec::new();
            for cal in calendars {
                let out = self.node.invoke(
                    *cal,
                    "book",
                    &[
                        Value::U64(day),
                        Value::U64(hour),
                        Value::Str(title.to_string()),
                    ],
                )?;
                if out.first().and_then(Value::as_bool) == Some(true) {
                    booked.push(*cal);
                } else {
                    // Someone raced us: roll back and try the next hour.
                    for b in &booked {
                        let _ =
                            self.node
                                .invoke(*b, "cancel", &[Value::U64(day), Value::U64(hour)]);
                    }
                    continue 'candidate;
                }
            }
            return Ok(Some(hour));
        }
        Ok(None)
    }
}
