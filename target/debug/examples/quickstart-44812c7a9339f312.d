/root/repo/target/debug/examples/quickstart-44812c7a9339f312.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-44812c7a9339f312: examples/quickstart.rs

examples/quickstart.rs:
