/root/repo/target/release/deps/eden_transport-cfb28e6802453b31.d: crates/transport/src/lib.rs crates/transport/src/latency.rs crates/transport/src/mesh.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs

/root/repo/target/release/deps/libeden_transport-cfb28e6802453b31.rlib: crates/transport/src/lib.rs crates/transport/src/latency.rs crates/transport/src/mesh.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs

/root/repo/target/release/deps/libeden_transport-cfb28e6802453b31.rmeta: crates/transport/src/lib.rs crates/transport/src/latency.rs crates/transport/src/mesh.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs

crates/transport/src/lib.rs:
crates/transport/src/latency.rs:
crates/transport/src/mesh.rs:
crates/transport/src/stats.rs:
crates/transport/src/tcp.rs:
