/root/repo/target/release/deps/eden_store-af3337cc98c20694.d: crates/store/src/lib.rs crates/store/src/crc.rs crates/store/src/disk.rs crates/store/src/faulty.rs crates/store/src/mem.rs crates/store/src/replicated.rs

/root/repo/target/release/deps/libeden_store-af3337cc98c20694.rlib: crates/store/src/lib.rs crates/store/src/crc.rs crates/store/src/disk.rs crates/store/src/faulty.rs crates/store/src/mem.rs crates/store/src/replicated.rs

/root/repo/target/release/deps/libeden_store-af3337cc98c20694.rmeta: crates/store/src/lib.rs crates/store/src/crc.rs crates/store/src/disk.rs crates/store/src/faulty.rs crates/store/src/mem.rs crates/store/src/replicated.rs

crates/store/src/lib.rs:
crates/store/src/crc.rs:
crates/store/src/disk.rs:
crates/store/src/faulty.rs:
crates/store/src/mem.rs:
crates/store/src/replicated.rs:
