#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, and the root test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --all-targets -- -D warnings
cargo build --release
cargo test --workspace -q
cargo bench --no-run

# Telemetry export smoke test: capture a cross-node trace through the
# monitor object and check the exported Chrome-trace JSON parses.
cargo run --release --example span_tree_capture -- --chrome target/span_tree.trace.json
test -s target/span_tree.trace.json
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool target/span_tree.trace.json >/dev/null
fi
