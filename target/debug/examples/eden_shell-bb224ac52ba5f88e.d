/root/repo/target/debug/examples/eden_shell-bb224ac52ba5f88e.d: examples/eden_shell.rs

/root/repo/target/debug/examples/eden_shell-bb224ac52ba5f88e: examples/eden_shell.rs

examples/eden_shell.rs:
