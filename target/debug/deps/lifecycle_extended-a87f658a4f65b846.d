/root/repo/target/debug/deps/lifecycle_extended-a87f658a4f65b846.d: crates/core/tests/lifecycle_extended.rs Cargo.toml

/root/repo/target/debug/deps/liblifecycle_extended-a87f658a4f65b846.rmeta: crates/core/tests/lifecycle_extended.rs Cargo.toml

crates/core/tests/lifecycle_extended.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
