/root/repo/target/debug/deps/trace-aeda31b8d295145b.d: tests/trace.rs

/root/repo/target/debug/deps/trace-aeda31b8d295145b: tests/trace.rs

tests/trace.rs:
