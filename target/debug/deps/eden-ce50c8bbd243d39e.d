/root/repo/target/debug/deps/eden-ce50c8bbd243d39e.d: src/lib.rs

/root/repo/target/debug/deps/eden-ce50c8bbd243d39e: src/lib.rs

src/lib.rs:
