/root/repo/target/debug/deps/eden-d5807ff176c47347.d: src/lib.rs

/root/repo/target/debug/deps/libeden-d5807ff176c47347.rlib: src/lib.rs

/root/repo/target/debug/deps/libeden-d5807ff176c47347.rmeta: src/lib.rs

src/lib.rs:
