/root/repo/target/debug/deps/figure3_layers-d13847b11b57264e.d: tests/figure3_layers.rs

/root/repo/target/debug/deps/figure3_layers-d13847b11b57264e: tests/figure3_layers.rs

tests/figure3_layers.rs:
