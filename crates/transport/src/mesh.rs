//! The in-process loopback mesh.
//!
//! A [`LoopbackMesh`] connects any number of endpoints inside one process
//! with crossbeam channels, optionally shaping traffic with a
//! [`LatencyModel`], seeded random loss, and directed link partitions.
//! The failure controls exist for the reliability experiments: §4.4's
//! checkpoint/reincarnation machinery is exercised by killing nodes and
//! partitioning links mid-run.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use eden_capability::NodeId;
use eden_obs::{now_ns, ObsRegistry};
use eden_wire::{Dest, Frame, Message};
use parking_lot::{Condvar, Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::latency::LatencyModel;
use crate::stats::{StatsCell, TransportStats};
use crate::{Endpoint, TransportError};

/// Traffic-shaping options for a mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshOptions {
    /// Delivery delay model.
    pub latency: LatencyModel,
    /// Independent per-frame drop probability in `[0, 1]`.
    pub loss_probability: f64,
    /// Seed for the loss and latency randomness.
    pub seed: u64,
}

impl Default for MeshOptions {
    fn default() -> Self {
        MeshOptions {
            latency: LatencyModel::Zero,
            loss_probability: 0.0,
            seed: 0,
        }
    }
}

/// An approximate encoded size for stats accounting, avoiding a full
/// encode on the loopback fast path.
pub fn message_size_hint(msg: &Message) -> usize {
    match msg {
        Message::InvokeRequest {
            operation, args, ..
        } => 40 + operation.len() + args.iter().map(|v| v.wire_size()).sum::<usize>(),
        Message::InvokeReply { results, .. } => {
            16 + results.iter().map(|v| v.wire_size()).sum::<usize>()
        }
        Message::MoveTransfer { image, .. } => 40 + image.data_size(),
        Message::ReplicaPush { image, .. } => {
            24 + image.as_ref().map(|i| i.data_size()).unwrap_or(0)
        }
        Message::CheckpointPut { image, .. } => 40 + image.data_size(),
        Message::CheckpointData { image, .. } => {
            24 + image.as_ref().map(|i| i.data_size()).unwrap_or(0)
        }
        _ => 32,
    }
}

struct Delayed {
    deliver_at: Instant,
    seq: u64,
    dst: NodeId,
    frame: Frame,
    enqueue_ns: u64,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest first.
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

struct DelayLine {
    heap: Mutex<BinaryHeap<Delayed>>,
    cv: Condvar,
    next_seq: Mutex<u64>,
}

struct MeshCore {
    options: MeshOptions,
    inboxes: RwLock<HashMap<NodeId, Sender<Frame>>>,
    stats: RwLock<HashMap<NodeId, Arc<StatsCell>>>,
    /// Directed (src, dst) pairs whose frames are silently dropped.
    blocked: RwLock<HashSet<(NodeId, NodeId)>>,
    /// Per-node observability registries (attached by the kernels).
    obs: RwLock<HashMap<NodeId, Arc<ObsRegistry>>>,
    rng: Mutex<SmallRng>,
    closed: AtomicBool,
    delay: Arc<DelayLine>,
}

impl MeshCore {
    /// Delivers (or drops) one unicast frame from `src` to `dst`.
    fn route(&self, src: NodeId, dst: NodeId, frame: Frame) {
        let enqueue_ns = now_ns();
        if self.blocked.read().contains(&(src, dst)) {
            self.drop_frame(src);
            return;
        }
        let loss = self.options.loss_probability;
        if loss > 0.0 && self.rng.lock().random::<f64>() < loss {
            self.drop_frame(src);
            return;
        }
        let delay = {
            let size = message_size_hint(&frame.msg);
            self.options.latency.sample(size, &mut self.rng.lock())
        };
        if delay.is_zero() {
            self.deliver(dst, frame, enqueue_ns);
        } else {
            let mut seq_guard = self.delay.next_seq.lock();
            let seq = *seq_guard;
            *seq_guard += 1;
            drop(seq_guard);
            self.delay.heap.lock().push(Delayed {
                deliver_at: Instant::now() + delay,
                seq,
                dst,
                frame,
                enqueue_ns,
            });
            self.delay.cv.notify_one();
        }
    }

    fn deliver(&self, dst: NodeId, frame: Frame, enqueue_ns: u64) {
        let size = message_size_hint(&frame.msg);
        let trace = frame.trace;
        let Some(tx) = self.inboxes.read().get(&dst).cloned() else {
            return; // Dead node: silent best-effort drop.
        };
        if tx.send(frame).is_ok() {
            if let Some(cell) = self.stats.read().get(&dst) {
                cell.record_recv(size);
            }
            if let Some(obs) = self.obs.read().get(&dst) {
                let delivered_ns = now_ns();
                obs.histogram("net.delivery")
                    .record(delivered_ns.saturating_sub(enqueue_ns));
                if let Some(ctx) = trace {
                    // The wire time, parented onto the sender's span.
                    obs.record_span("net", ctx, enqueue_ns, delivered_ns);
                }
            }
        }
    }

    fn drop_frame(&self, src: NodeId) {
        if let Some(cell) = self.stats.read().get(&src) {
            cell.record_drop();
        }
    }
}

/// A mesh of in-process endpoints.
///
/// # Examples
///
/// ```
/// use eden_transport::{Endpoint, LoopbackMesh};
/// use eden_capability::NodeId;
/// use eden_wire::{Frame, Message};
///
/// let mesh = LoopbackMesh::new(2);
/// let (a, b) = (mesh.endpoint(0), mesh.endpoint(1));
/// a.send(Frame::to(NodeId(0), NodeId(1), Message::Ping { token: 1 })).unwrap();
/// let got = b.recv().unwrap();
/// assert_eq!(got.msg, Message::Ping { token: 1 });
/// ```
pub struct LoopbackMesh {
    core: Arc<MeshCore>,
    endpoints: Vec<Arc<MeshEndpoint>>,
    delay_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// One node's attachment to a [`LoopbackMesh`].
pub struct MeshEndpoint {
    node: NodeId,
    core: Arc<MeshCore>,
    rx: Receiver<Frame>,
    stats: Arc<StatsCell>,
    detached: AtomicBool,
}

impl LoopbackMesh {
    /// A mesh of `n` endpoints with ids `0..n`, zero latency, no loss.
    pub fn new(n: usize) -> Self {
        LoopbackMesh::with_options(n, MeshOptions::default())
    }

    /// A mesh of `n` endpoints with traffic shaping.
    pub fn with_options(n: usize, options: MeshOptions) -> Self {
        let delay = Arc::new(DelayLine {
            heap: Mutex::new(BinaryHeap::new()),
            cv: Condvar::new(),
            next_seq: Mutex::new(0),
        });
        let core = Arc::new(MeshCore {
            options,
            inboxes: RwLock::new(HashMap::new()),
            stats: RwLock::new(HashMap::new()),
            blocked: RwLock::new(HashSet::new()),
            obs: RwLock::new(HashMap::new()),
            rng: Mutex::new(SmallRng::seed_from_u64(options.seed)),
            closed: AtomicBool::new(false),
            delay,
        });

        let mut endpoints = Vec::with_capacity(n);
        for i in 0..n {
            let node = NodeId(i as u16);
            let (tx, rx) = unbounded();
            let stats = StatsCell::new_shared();
            core.inboxes.write().insert(node, tx);
            core.stats.write().insert(node, stats.clone());
            endpoints.push(Arc::new(MeshEndpoint {
                node,
                core: core.clone(),
                rx,
                stats,
                detached: AtomicBool::new(false),
            }));
        }

        // The delay-line pump: delivers shaped frames when their time comes.
        let pump_core = core.clone();
        let handle = std::thread::Builder::new()
            .name("eden-mesh-delay".into())
            .spawn(move || {
                let delay = pump_core.delay.clone();
                loop {
                    let mut due: Vec<Delayed> = Vec::new();
                    {
                        let mut heap = delay.heap.lock();
                        loop {
                            if pump_core.closed.load(Ordering::Acquire) {
                                return;
                            }
                            let now = Instant::now();
                            match heap.peek() {
                                Some(d) if d.deliver_at <= now => {
                                    due.push(heap.pop().expect("peeked"));
                                    // Drain everything due before releasing.
                                    continue;
                                }
                                Some(d) => {
                                    if !due.is_empty() {
                                        break;
                                    }
                                    let wait = d.deliver_at - now;
                                    delay.cv.wait_for(&mut heap, wait);
                                }
                                None => {
                                    if !due.is_empty() {
                                        break;
                                    }
                                    delay.cv.wait_for(&mut heap, Duration::from_millis(50));
                                }
                            }
                        }
                    }
                    for d in due {
                        pump_core.deliver(d.dst, d.frame, d.enqueue_ns);
                    }
                }
            })
            .expect("spawn delay pump");

        LoopbackMesh {
            core,
            endpoints,
            delay_thread: Mutex::new(Some(handle)),
        }
    }

    /// The endpoint for node `i` (panics if out of range).
    pub fn endpoint(&self, i: usize) -> Arc<MeshEndpoint> {
        self.endpoints[i].clone()
    }

    /// Number of endpoints created.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// Tests whether the mesh has no endpoints.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Silently drops all traffic in both directions between `a` and `b`.
    pub fn partition(&self, a: NodeId, b: NodeId) {
        let mut blocked = self.core.blocked.write();
        blocked.insert((a, b));
        blocked.insert((b, a));
    }

    /// Restores traffic between `a` and `b`.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        let mut blocked = self.core.blocked.write();
        blocked.remove(&(a, b));
        blocked.remove(&(b, a));
    }

    /// Permanently disconnects `node`: its inbox is removed, so frames to
    /// it vanish and its endpoint's `recv` drains then reports closure.
    pub fn kill(&self, node: NodeId) {
        self.core.inboxes.write().remove(&node);
    }

    /// Shuts the whole mesh down.
    pub fn shutdown(&self) {
        self.core.closed.store(true, Ordering::Release);
        self.core.inboxes.write().clear();
        self.core.delay.cv.notify_all();
        if let Some(h) = self.delay_thread.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for LoopbackMesh {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Endpoint for MeshEndpoint {
    fn node(&self) -> NodeId {
        self.node
    }

    fn send(&self, frame: Frame) -> Result<(), TransportError> {
        if self.core.closed.load(Ordering::Acquire) || self.detached.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        self.stats.record_send(message_size_hint(&frame.msg));
        match frame.dst {
            Dest::Node(dst) => {
                self.core.route(self.node, dst, frame);
            }
            Dest::Broadcast => {
                let peers: Vec<NodeId> = self
                    .core
                    .inboxes
                    .read()
                    .keys()
                    .copied()
                    .filter(|&p| p != self.node)
                    .collect();
                for p in peers {
                    self.core.route(self.node, p, frame.clone());
                }
            }
        }
        Ok(())
    }

    fn recv(&self) -> Result<Frame, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Closed)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Frame>, TransportError> {
        match self.rx.recv_timeout(timeout) {
            Ok(f) => Ok(Some(f)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn recv_batch(&self, max: usize, timeout: Duration) -> Result<Vec<Frame>, TransportError> {
        // The inbox is a plain frame channel; batching here is just a
        // non-blocking drain after the first (blocking) pop.
        let max = max.max(1);
        let mut out = Vec::new();
        match self.rx.recv_timeout(timeout) {
            Ok(f) => out.push(f),
            Err(RecvTimeoutError::Timeout) => return Ok(out),
            Err(RecvTimeoutError::Disconnected) => return Err(TransportError::Closed),
        }
        while out.len() < max {
            match self.rx.try_recv() {
                Ok(f) => out.push(f),
                Err(_) => break,
            }
        }
        Ok(out)
    }

    fn peers(&self) -> Vec<NodeId> {
        self.core
            .inboxes
            .read()
            .keys()
            .copied()
            .filter(|&p| p != self.node)
            .collect()
    }

    fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }

    fn attach_obs(&self, obs: Arc<ObsRegistry>) {
        self.core.obs.write().insert(self.node, obs);
    }

    fn shutdown(&self) {
        self.detached.store(true, Ordering::Release);
        self.core.inboxes.write().remove(&self.node);
        self.core.obs.write().remove(&self.node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ping(token: u64) -> Message {
        Message::Ping { token }
    }

    #[test]
    fn unicast_is_fifo_per_sender() {
        let mesh = LoopbackMesh::new(2);
        let a = mesh.endpoint(0);
        let b = mesh.endpoint(1);
        for i in 0..100 {
            a.send(Frame::to(NodeId(0), NodeId(1), ping(i))).unwrap();
        }
        for i in 0..100 {
            assert_eq!(b.recv().unwrap().msg, ping(i));
        }
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let mesh = LoopbackMesh::new(4);
        let a = mesh.endpoint(0);
        a.send(Frame::broadcast(NodeId(0), ping(7))).unwrap();
        for i in 1..4 {
            assert_eq!(mesh.endpoint(i).recv().unwrap().msg, ping(7));
        }
        assert_eq!(
            a.recv_timeout(Duration::from_millis(20)).unwrap(),
            None,
            "sender must not hear its own broadcast"
        );
    }

    #[test]
    fn constant_latency_is_applied() {
        let mesh = LoopbackMesh::with_options(
            2,
            MeshOptions {
                latency: LatencyModel::Constant(Duration::from_millis(30)),
                ..Default::default()
            },
        );
        let a = mesh.endpoint(0);
        let b = mesh.endpoint(1);
        let start = Instant::now();
        a.send(Frame::to(NodeId(0), NodeId(1), ping(1))).unwrap();
        b.recv().unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(28), "got {elapsed:?}");
    }

    #[test]
    fn delayed_frames_preserve_order_for_equal_delay() {
        let mesh = LoopbackMesh::with_options(
            2,
            MeshOptions {
                latency: LatencyModel::Constant(Duration::from_millis(5)),
                ..Default::default()
            },
        );
        let a = mesh.endpoint(0);
        let b = mesh.endpoint(1);
        for i in 0..50 {
            a.send(Frame::to(NodeId(0), NodeId(1), ping(i))).unwrap();
        }
        for i in 0..50 {
            assert_eq!(b.recv().unwrap().msg, ping(i));
        }
    }

    #[test]
    fn total_loss_drops_everything() {
        let mesh = LoopbackMesh::with_options(
            2,
            MeshOptions {
                loss_probability: 1.0,
                seed: 3,
                ..Default::default()
            },
        );
        let a = mesh.endpoint(0);
        let b = mesh.endpoint(1);
        for i in 0..20 {
            a.send(Frame::to(NodeId(0), NodeId(1), ping(i))).unwrap();
        }
        assert_eq!(b.recv_timeout(Duration::from_millis(30)).unwrap(), None);
        assert_eq!(a.stats().frames_dropped, 20);
    }

    #[test]
    fn partial_loss_is_roughly_proportional() {
        let mesh = LoopbackMesh::with_options(
            2,
            MeshOptions {
                loss_probability: 0.5,
                seed: 42,
                ..Default::default()
            },
        );
        let a = mesh.endpoint(0);
        let b = mesh.endpoint(1);
        let n = 2000;
        for i in 0..n {
            a.send(Frame::to(NodeId(0), NodeId(1), ping(i))).unwrap();
        }
        let mut got = 0;
        while b.recv_timeout(Duration::from_millis(10)).unwrap().is_some() {
            got += 1;
        }
        let rate = got as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.05, "delivery rate {rate}");
    }

    #[test]
    fn partition_blocks_both_directions_and_heals() {
        let mesh = LoopbackMesh::new(3);
        let a = mesh.endpoint(0);
        let b = mesh.endpoint(1);
        let c = mesh.endpoint(2);
        mesh.partition(NodeId(0), NodeId(1));

        a.send(Frame::to(NodeId(0), NodeId(1), ping(1))).unwrap();
        b.send(Frame::to(NodeId(1), NodeId(0), ping(2))).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_millis(20)).unwrap(), None);
        assert_eq!(a.recv_timeout(Duration::from_millis(20)).unwrap(), None);

        // Third parties are unaffected.
        a.send(Frame::to(NodeId(0), NodeId(2), ping(3))).unwrap();
        assert_eq!(c.recv().unwrap().msg, ping(3));

        mesh.heal(NodeId(0), NodeId(1));
        a.send(Frame::to(NodeId(0), NodeId(1), ping(4))).unwrap();
        assert_eq!(b.recv().unwrap().msg, ping(4));
    }

    #[test]
    fn killed_node_vanishes() {
        let mesh = LoopbackMesh::new(2);
        let a = mesh.endpoint(0);
        mesh.kill(NodeId(1));
        // Sending to the dead node is best-effort, not an error.
        a.send(Frame::to(NodeId(0), NodeId(1), ping(1))).unwrap();
        assert!(!a.peers().contains(&NodeId(1)));
    }

    #[test]
    fn stats_count_frames_and_bytes() {
        let mesh = LoopbackMesh::new(2);
        let a = mesh.endpoint(0);
        let b = mesh.endpoint(1);
        a.send(Frame::to(NodeId(0), NodeId(1), ping(1))).unwrap();
        b.recv().unwrap();
        assert_eq!(a.stats().frames_sent, 1);
        assert_eq!(b.stats().frames_received, 1);
        assert!(b.stats().bytes_received > 0);
    }

    #[test]
    fn shutdown_closes_endpoints() {
        let mesh = LoopbackMesh::new(2);
        let a = mesh.endpoint(0);
        mesh.shutdown();
        assert_eq!(
            a.send(Frame::to(NodeId(0), NodeId(1), ping(1))),
            Err(TransportError::Closed)
        );
        assert_eq!(a.recv(), Err(TransportError::Closed));
    }

    #[test]
    fn endpoint_shutdown_detaches_only_itself() {
        let mesh = LoopbackMesh::new(3);
        let a = mesh.endpoint(0);
        let b = mesh.endpoint(1);
        let c = mesh.endpoint(2);
        b.shutdown();
        assert_eq!(
            b.send(Frame::to(NodeId(1), NodeId(2), ping(0))),
            Err(TransportError::Closed)
        );
        a.send(Frame::to(NodeId(0), NodeId(2), ping(5))).unwrap();
        assert_eq!(c.recv().unwrap().msg, ping(5));
    }
}
