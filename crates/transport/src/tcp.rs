//! TCP transport for multi-process Eden clusters.
//!
//! Each kernel process binds one [`TcpMesh`] endpoint and declares its
//! peers' addresses. Frames travel length-prefixed over per-destination
//! TCP connections. Broadcast is unicast to every configured peer — on
//! a switched network that is what Ethernet broadcast degenerates to
//! anyway.
//!
//! The send side is an asynchronous per-peer pipeline (see
//! [`writer`](crate::writer)): `send()` is a non-blocking enqueue onto
//! a bounded per-peer queue; a dedicated writer thread per destination
//! coalesces pending frames into single-syscall batches and dials in
//! the background with exponential backoff, so a cold or dead peer
//! never stalls the caller.
//!
//! The receive side is a small *fixed* pool of reader threads
//! (`eden-tcp-rdr-<node>-<i>`) multiplexing every inbound connection
//! over non-blocking sockets: the accept loop hands each new stream to
//! a reader round-robin, and each reader rotates over its connections,
//! draining everything available per pass and decoding complete frames
//! zero-copy ([`Frame::decode_shared`] slices the per-connection
//! receive buffer). Everything decoded in one pass is pushed to the
//! kernel as a single `Vec<Frame>` batch — one channel operation per
//! wakeup, however many frames the senders coalesced — which
//! [`Endpoint::recv_batch`] hands through intact. Thread count is
//! [`TcpTuning::reader_threads`] at most, flat as peers scale; the
//! seed's thread-per-connection reader (and its leak of accepted
//! stream handles) is gone.
//!
//! Delivery remains best-effort to match the [`Endpoint`] contract: a
//! peer that is down simply does not receive (its frames shed at the
//! bounded queue, counted as drops); the kernel's timeout and retry
//! machinery is responsible for coping, exactly as over the mesh.
//! A peer that sends garbage (an oversized length prefix or an
//! undecodable frame) has its connection dropped, counted in
//! `stats().inbound_dropped` and recorded as a flight-recorder event
//! naming the peer address and reason — never silently.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use eden_capability::NodeId;
use eden_obs::{InboundDropReason, KernelEvent, ObsRegistry};
use eden_wire::{Dest, Frame, WireDecode, WireEncode};
use parking_lot::Mutex;

use crate::stats::{StatsCell, TransportStats};
use crate::writer::{SendPipeline, TcpTuning};
use crate::{Endpoint, TransportError};

/// Maximum accepted frame size; guards the length prefix on untrusted
/// input (matches the wire codec's sequence limit).
const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Wire overhead per frame: the u32 length prefix. Counted in both
/// `bytes_sent` and `bytes_received` so the monitor's send/recv byte
/// columns agree with each other and with the wire.
const LEN_PREFIX_BYTES: usize = 4;

/// How long an idle reader naps between rotation passes. Short enough
/// that shutdown and a quiet connection's next frame are both observed
/// promptly; long enough that 4 idle readers cost ~nothing.
const READER_NAP: Duration = Duration::from_millis(1);

/// Per-pass read budget per connection, so one firehose socket cannot
/// starve the other connections multiplexed onto the same reader.
const READ_BUDGET_PER_PASS: usize = 1 << 20;

/// Static configuration of one TCP endpoint.
#[derive(Debug, Clone)]
pub struct TcpMeshConfig {
    /// This endpoint's node id.
    pub node: NodeId,
    /// Address to listen on (use port 0 to let the OS choose, then read
    /// [`TcpMesh::local_addr`]).
    pub listen: SocketAddr,
    /// Peer node ids and their listen addresses.
    pub peers: HashMap<NodeId, SocketAddr>,
    /// Send-pipeline and reader-pool knobs (queue capacity, coalescing
    /// budget, dial backoff, reader thread count); the defaults suit
    /// small-frame kernel traffic.
    pub tuning: TcpTuning,
}

impl TcpMeshConfig {
    /// A config with default tuning and no peers yet.
    pub fn new(node: NodeId, listen: SocketAddr) -> Self {
        TcpMeshConfig {
            node,
            listen,
            peers: HashMap::new(),
            tuning: TcpTuning::default(),
        }
    }
}

struct TcpInner {
    node: NodeId,
    pipeline: Arc<SendPipeline>,
    /// Readers push whole per-pass decode batches; `recv_batch` pops
    /// them intact, so a coalesced sender batch crosses the channel in
    /// one operation end to end.
    rx_tx: Sender<Vec<Frame>>,
    stats: Arc<StatsCell>,
    closed: AtomicBool,
    /// Inbound connections accepted so far (test observability for the
    /// one-connection-per-peer invariant).
    inbound_accepted: AtomicU64,
    /// The fixed reader pool's join handles (at most
    /// `tuning.reader_threads`, spawned lazily as connections arrive).
    reader_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Receiving node's registry, for the inbound-drop counter and
    /// flight-recorder events (`None` until `attach_obs`).
    obs: Mutex<Option<Arc<ObsRegistry>>>,
}

impl TcpInner {
    /// Records a dropped inbound connection: counter + flight-recorder
    /// event naming the peer and reason. Rare path (hostile or corrupt
    /// peer), so the obs lock is fine here.
    fn note_inbound_drop(&self, peer: SocketAddr, reason: InboundDropReason) {
        self.stats.record_inbound_drop();
        let obs = self.obs.lock().clone();
        if let Some(obs) = obs {
            obs.counter("tcp.inbound_dropped").inc();
            obs.recorder()
                .record(KernelEvent::InboundDropped { peer, reason });
        }
    }
}

/// A TCP-backed [`Endpoint`].
///
/// See `examples/multiprocess_net.rs` for a whole cluster of these, one
/// per OS process.
pub struct TcpMesh {
    inner: Arc<TcpInner>,
    rx: Receiver<Vec<Frame>>,
    /// Frames from a popped batch not yet consumed by the single-frame
    /// `recv`/`recv_timeout` compatibility API.
    pending: Mutex<VecDeque<Frame>>,
    local_addr: SocketAddr,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TcpMesh {
    /// Binds the listener and starts the accept loop.
    pub fn bind(config: TcpMeshConfig) -> Result<Self, TransportError> {
        let listener =
            TcpListener::bind(config.listen).map_err(|e| TransportError::Io(e.to_string()))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let (rx_tx, rx) = unbounded();
        let stats = StatsCell::new_shared();
        let reader_cap = config.tuning.reader_threads.max(1);
        let pipeline =
            SendPipeline::new(config.node, config.peers, config.tuning, Arc::clone(&stats));
        let inner = Arc::new(TcpInner {
            node: config.node,
            pipeline,
            rx_tx,
            stats,
            closed: AtomicBool::new(false),
            inbound_accepted: AtomicU64::new(0),
            reader_threads: Mutex::new(Vec::new()),
            obs: Mutex::new(None),
        });

        let accept_inner = inner.clone();
        let accept_thread = std::thread::Builder::new()
            .name(format!("eden-tcp-accept-{}", config.node))
            .spawn(move || {
                // Reader intake channels, created lazily: the first
                // `reader_cap` connections each bring a reader up; every
                // connection after that joins an existing reader
                // round-robin. A mostly-client endpoint thus runs one
                // reader; a 64-peer server still runs `reader_cap`.
                let mut readers: Vec<Sender<TcpStream>> = Vec::new();
                let mut next = 0usize;
                for stream in listener.incoming() {
                    if accept_inner.closed.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    stream.set_nodelay(true).ok();
                    accept_inner
                        .inbound_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    if readers.len() < reader_cap {
                        let (conn_tx, conn_rx) = unbounded();
                        let reader_inner = accept_inner.clone();
                        let spawned = std::thread::Builder::new()
                            .name(format!("eden-tcp-rdr-{}-{}", reader_inner.node, readers.len()))
                            .spawn(move || reader_loop(&reader_inner, &conn_rx));
                        if let Ok(handle) = spawned {
                            accept_inner.reader_threads.lock().push(handle);
                            readers.push(conn_tx);
                        }
                    }
                    if readers.is_empty() {
                        continue; // Spawn failed; drop the connection.
                    }
                    let slot = next % readers.len();
                    next = next.wrapping_add(1);
                    let _ = readers[slot].send(stream);
                }
            })
            .map_err(|e| TransportError::Io(e.to_string()))?;

        Ok(TcpMesh {
            inner,
            rx,
            pending: Mutex::new(VecDeque::new()),
            local_addr,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The actual bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Registers (or updates) a peer after construction.
    pub fn add_peer(&self, node: NodeId, addr: SocketAddr) {
        self.inner.pipeline.add_peer(node, addr);
    }

    /// Inbound connections accepted over this endpoint's lifetime.
    /// One live peer dials at most once (its writer owns the
    /// connection), so tests assert this stays at the peer count.
    pub fn inbound_connections(&self) -> u64 {
        self.inner.inbound_accepted.load(Ordering::Relaxed)
    }

    /// Reader threads currently live — bounded by
    /// [`TcpTuning::reader_threads`] no matter how many connections are
    /// accepted (the reader-pool invariant the E16 experiment asserts).
    pub fn reader_thread_count(&self) -> usize {
        self.inner.reader_threads.lock().len()
    }

    /// Binds `n` endpoints on ephemeral loopback ports, fully meshed —
    /// the in-process test harness for the TCP path.
    pub fn bind_local_cluster(n: usize) -> Result<Vec<TcpMesh>, TransportError> {
        Self::bind_local_cluster_with(n, TcpTuning::default())
    }

    /// [`TcpMesh::bind_local_cluster`] with explicit pipeline tuning.
    pub fn bind_local_cluster_with(
        n: usize,
        tuning: TcpTuning,
    ) -> Result<Vec<TcpMesh>, TransportError> {
        let mut meshes = Vec::with_capacity(n);
        for i in 0..n {
            meshes.push(TcpMesh::bind(TcpMeshConfig {
                node: NodeId(i as u16),
                listen: "127.0.0.1:0".parse().expect("literal addr"),
                peers: HashMap::new(),
                tuning: tuning.clone(),
            })?);
        }
        let addrs: Vec<SocketAddr> = meshes.iter().map(|m| m.local_addr()).collect();
        for (i, mesh) in meshes.iter().enumerate() {
            for (j, &addr) in addrs.iter().enumerate() {
                if i != j {
                    mesh.add_peer(NodeId(j as u16), addr);
                }
            }
        }
        Ok(meshes)
    }

    /// Moves up to `max` frames from `batch` into `out`, spilling the
    /// rest to the pending buffer (arrival order preserved).
    fn absorb(&self, out: &mut Vec<Frame>, batch: Vec<Frame>, max: usize) {
        let take = batch.len().min(max.saturating_sub(out.len()));
        let mut it = batch.into_iter();
        out.extend(it.by_ref().take(take));
        let mut pending = self.pending.lock();
        pending.extend(it);
    }
}

/// One inbound connection multiplexed onto a reader: its non-blocking
/// stream, who is on the other end, and the accumulation buffer partial
/// frames wait in between passes.
struct InboundConn {
    stream: TcpStream,
    peer: SocketAddr,
    buf: BytesMut,
}

/// Why a reader cut an inbound connection (EOF and plain I/O errors are
/// ordinary churn and carry no event).
enum ConnFate {
    /// Still open; `true` if the pass read any bytes.
    Open(bool),
    /// EOF or I/O error: the peer went away. Normal.
    Gone,
    /// Protocol violation: drop and record.
    Poisoned(InboundDropReason),
}

/// One reader of the fixed pool: adopts connections assigned by the
/// accept loop, rotates over them draining whatever is readable, and
/// pushes each pass's decoded frames as one batch.
fn reader_loop(inner: &Arc<TcpInner>, intake: &Receiver<TcpStream>) {
    let mut conns: Vec<InboundConn> = Vec::new();
    let mut chunk = vec![0u8; 64 << 10];
    let mut batch: Vec<Frame> = Vec::new();
    loop {
        if inner.closed.load(Ordering::Acquire) {
            return;
        }
        // Adopt newly assigned connections.
        loop {
            match intake.try_recv() {
                Ok(stream) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let peer = stream
                        .peer_addr()
                        .unwrap_or_else(|_| "0.0.0.0:0".parse().expect("literal addr"));
                    conns.push(InboundConn {
                        stream,
                        peer,
                        buf: BytesMut::new(),
                    });
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    if conns.is_empty() {
                        return; // Accept loop gone and nothing to drain.
                    }
                    break;
                }
            }
        }
        // One rotation pass over every connection.
        let mut progress = false;
        let mut i = 0;
        while i < conns.len() {
            match pump_conn(inner, &mut conns[i], &mut chunk, &mut batch) {
                ConnFate::Open(advanced) => {
                    progress |= advanced;
                    i += 1;
                }
                ConnFate::Gone => {
                    conns.swap_remove(i);
                }
                ConnFate::Poisoned(reason) => {
                    let peer = conns[i].peer;
                    inner.note_inbound_drop(peer, reason);
                    conns.swap_remove(i);
                }
            }
        }
        if !batch.is_empty() {
            progress = true;
            if inner.rx_tx.send(std::mem::take(&mut batch)).is_err() {
                return;
            }
        }
        if !progress {
            std::thread::sleep(READER_NAP);
        }
    }
}

/// Drains one connection's readable bytes (up to the per-pass budget)
/// and decodes every complete frame into `batch`.
fn pump_conn(
    inner: &TcpInner,
    conn: &mut InboundConn,
    chunk: &mut [u8],
    batch: &mut Vec<Frame>,
) -> ConnFate {
    let mut advanced = false;
    let mut budget = READ_BUDGET_PER_PASS;
    let mut eof = false;
    while budget > 0 {
        match conn.stream.read(chunk) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                advanced = true;
                budget = budget.saturating_sub(n);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                eof = true; // Connection error: deliver what we have, then drop.
                break;
            }
        }
    }
    // Decode every complete frame accumulated so far. Each payload
    // becomes one shared `Bytes` that `decode_shared` slices without
    // further copies; the buffer compacts once per pass, not per frame.
    let mut consumed = 0usize;
    loop {
        let avail = conn.buf.len() - consumed;
        if avail < LEN_PREFIX_BYTES {
            break;
        }
        let len = u32::from_le_bytes(
            conn.buf[consumed..consumed + LEN_PREFIX_BYTES]
                .try_into()
                .expect("4 bytes"),
        );
        if len > MAX_FRAME_BYTES {
            return ConnFate::Poisoned(InboundDropReason::Oversized);
        }
        let total = LEN_PREFIX_BYTES + len as usize;
        if avail < total {
            break;
        }
        let payload: Bytes =
            Bytes::copy_from_slice(&conn.buf[consumed + LEN_PREFIX_BYTES..consumed + total]);
        consumed += total;
        let Ok(frame) = Frame::decode_shared(&payload) else {
            // The stream is unsynchronized; nothing after this point can
            // be trusted to be framed correctly.
            return ConnFate::Poisoned(InboundDropReason::Codec);
        };
        inner.stats.record_recv(total);
        batch.push(frame);
    }
    if consumed > 0 {
        conn.buf.advance(consumed);
    }
    if eof {
        ConnFate::Gone
    } else {
        ConnFate::Open(advanced)
    }
}

impl Endpoint for TcpMesh {
    fn node(&self) -> NodeId {
        self.inner.node
    }

    fn send(&self, frame: Frame) -> Result<(), TransportError> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        thread_local! {
            // Encode scratch: frames split off a reused allocation, so
            // the steady state allocates no per-frame BytesMut.
            static SCRATCH: RefCell<BytesMut> = RefCell::new(BytesMut::new());
        }
        let payload: Bytes =
            SCRATCH.with(|scratch| frame.encode_reusing(&mut scratch.borrow_mut()));
        self.inner.stats.record_send(payload.len() + LEN_PREFIX_BYTES);
        match frame.dst {
            Dest::Node(dst) => self
                .inner
                .pipeline
                .enqueue_unicast(dst, payload, frame.trace)?,
            Dest::Broadcast => self.inner.pipeline.broadcast(payload, frame.trace),
        }
        Ok(())
    }

    fn recv(&self) -> Result<Frame, TransportError> {
        if let Some(f) = self.pending.lock().pop_front() {
            return Ok(f);
        }
        let batch = self.rx.recv().map_err(|_| TransportError::Closed)?;
        let mut it = batch.into_iter();
        let first = it.next().expect("readers never send empty batches");
        self.pending.lock().extend(it);
        Ok(first)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Frame>, TransportError> {
        if let Some(f) = self.pending.lock().pop_front() {
            return Ok(Some(f));
        }
        match self.rx.recv_timeout(timeout) {
            Ok(batch) => {
                let mut it = batch.into_iter();
                let first = it.next().expect("readers never send empty batches");
                self.pending.lock().extend(it);
                Ok(Some(first))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn recv_batch(&self, max: usize, timeout: Duration) -> Result<Vec<Frame>, TransportError> {
        let max = max.max(1);
        let mut out = Vec::new();
        {
            let mut pending = self.pending.lock();
            while out.len() < max {
                match pending.pop_front() {
                    Some(f) => out.push(f),
                    None => break,
                }
            }
        }
        if out.is_empty() {
            match self.rx.recv_timeout(timeout) {
                Ok(batch) => self.absorb(&mut out, batch, max),
                Err(RecvTimeoutError::Timeout) => return Ok(out),
                Err(RecvTimeoutError::Disconnected) => return Err(TransportError::Closed),
            }
        }
        // Opportunistically top up from batches already queued, without
        // blocking again.
        while out.len() < max {
            match self.rx.try_recv() {
                Ok(batch) => self.absorb(&mut out, batch, max),
                Err(_) => break,
            }
        }
        Ok(out)
    }

    fn peers(&self) -> Vec<NodeId> {
        self.inner.pipeline.peer_ids()
    }

    fn stats(&self) -> TransportStats {
        let mut s = self.inner.stats.snapshot();
        s.queue_depth = self.inner.pipeline.queue_depth() as u64;
        s
    }

    fn attach_obs(&self, obs: Arc<ObsRegistry>) {
        *self.inner.obs.lock() = Some(Arc::clone(&obs));
        self.inner.pipeline.attach_obs(obs);
    }

    fn writer_probe(&self) -> Vec<(NodeId, u64, u64)> {
        self.inner.pipeline.stall_probe()
    }

    fn shutdown(&self) {
        self.inner.closed.store(true, Ordering::Release);
        // Drain and join the per-peer writers first (graceful flush)...
        self.inner.pipeline.shutdown();
        // ...poke the listener so the accept loop observes the closed
        // flag,...
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(100));
        if let Some(h) = self.accept_thread.lock().take() {
            let _ = h.join();
        }
        // ...and join the readers — they never block in reads (the
        // sockets are non-blocking), so they observe the flag within one
        // nap: drop(TcpMesh) leaves no live threads.
        for h in self.inner.reader_threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TcpMesh {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_wire::Message;

    fn ping(token: u64) -> Message {
        Message::Ping { token }
    }

    #[test]
    fn two_endpoints_exchange_frames() {
        let meshes = TcpMesh::bind_local_cluster(2).unwrap();
        let (a, b) = (&meshes[0], &meshes[1]);
        a.send(Frame::to(NodeId(0), NodeId(1), ping(1))).unwrap();
        let got = b.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        assert_eq!(got.msg, ping(1));
        assert_eq!(got.src, NodeId(0));

        b.send(Frame::to(NodeId(1), NodeId(0), ping(2))).unwrap();
        let got = a.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        assert_eq!(got.msg, ping(2));
    }

    #[test]
    fn frames_are_fifo_per_sender() {
        let meshes = TcpMesh::bind_local_cluster(2).unwrap();
        let (a, b) = (&meshes[0], &meshes[1]);
        for i in 0..200 {
            a.send(Frame::to(NodeId(0), NodeId(1), ping(i))).unwrap();
        }
        for i in 0..200 {
            let got = b.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
            assert_eq!(got.msg, ping(i));
        }
    }

    #[test]
    fn recv_batch_returns_coalesced_frames() {
        let meshes = TcpMesh::bind_local_cluster(2).unwrap();
        let (a, b) = (&meshes[0], &meshes[1]);
        for i in 0..100 {
            a.send(Frame::to(NodeId(0), NodeId(1), ping(i))).unwrap();
        }
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.len() < 100 && std::time::Instant::now() < deadline {
            got.extend(b.recv_batch(64, Duration::from_millis(200)).unwrap());
        }
        assert_eq!(got.len(), 100);
        // FIFO per sender holds across batch boundaries.
        for (i, f) in got.iter().enumerate() {
            assert_eq!(f.msg, ping(i as u64));
        }
    }

    #[test]
    fn recv_batch_interleaves_with_single_frame_recv() {
        let meshes = TcpMesh::bind_local_cluster(2).unwrap();
        let (a, b) = (&meshes[0], &meshes[1]);
        for i in 0..10 {
            a.send(Frame::to(NodeId(0), NodeId(1), ping(i))).unwrap();
        }
        // A single-frame recv may buffer the rest of its batch; the
        // following recv_batch must deliver those buffered frames first.
        let first = b.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        assert_eq!(first.msg, ping(0));
        let mut got = vec![first];
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.len() < 10 && std::time::Instant::now() < deadline {
            got.extend(b.recv_batch(8, Duration::from_millis(200)).unwrap());
        }
        for (i, f) in got.iter().enumerate() {
            assert_eq!(f.msg, ping(i as u64));
        }
    }

    #[test]
    fn broadcast_reaches_all_peers() {
        let meshes = TcpMesh::bind_local_cluster(3).unwrap();
        meshes[0]
            .send(Frame::broadcast(NodeId(0), ping(9)))
            .unwrap();
        for m in &meshes[1..] {
            let got = m.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
            assert_eq!(got.msg, ping(9));
        }
    }

    #[test]
    fn unknown_unicast_peer_is_an_error() {
        let meshes = TcpMesh::bind_local_cluster(1).unwrap();
        assert_eq!(
            meshes[0].send(Frame::to(NodeId(0), NodeId(42), ping(0))),
            Err(TransportError::UnknownPeer(NodeId(42)))
        );
    }

    #[test]
    fn sending_to_dead_peer_is_best_effort() {
        let meshes = TcpMesh::bind_local_cluster(2).unwrap();
        let dead_addr = meshes[1].local_addr();
        meshes[1].shutdown();
        // Give the OS a moment to release the port.
        std::thread::sleep(Duration::from_millis(50));
        let a = &meshes[0];
        a.add_peer(NodeId(1), dead_addr);
        // Must not error: Ethernet semantics.
        a.send(Frame::to(NodeId(0), NodeId(1), ping(1))).unwrap();
    }

    #[test]
    fn large_frames_survive_the_wire() {
        let meshes = TcpMesh::bind_local_cluster(2).unwrap();
        let blob = vec![0xa5u8; 1 << 20];
        let msg = Message::InvokeRequest {
            inv_id: 1,
            target: eden_capability::Capability::mint(
                eden_capability::NameGenerator::with_epoch(NodeId(0), 1).next_name(),
            ),
            operation: "put".into(),
            args: vec![eden_wire::Value::Blob(bytes::Bytes::from(blob.clone()))],
            reply_to: NodeId(0),
            hops: 1,
        };
        meshes[0]
            .send(Frame::to(NodeId(0), NodeId(1), msg.clone()))
            .unwrap();
        let got = meshes[1]
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .unwrap();
        assert_eq!(got.msg, msg);
    }

    #[test]
    fn stats_track_bytes_on_the_wire() {
        let meshes = TcpMesh::bind_local_cluster(2).unwrap();
        meshes[0]
            .send(Frame::to(NodeId(0), NodeId(1), ping(1)))
            .unwrap();
        meshes[1].recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(meshes[0].stats().frames_sent, 1);
        assert!(meshes[0].stats().bytes_sent > 0);
        assert_eq!(meshes[1].stats().frames_received, 1);
        // Both directions count the length prefix, so one delivered
        // frame reads the same number of bytes on each side.
        assert_eq!(
            meshes[0].stats().bytes_sent,
            meshes[1].stats().bytes_received
        );
    }

    #[test]
    fn oversized_frame_drops_the_connection_and_counts() {
        use std::io::Write;
        let meshes = TcpMesh::bind_local_cluster(1).unwrap();
        let m = &meshes[0];
        let mut raw = TcpStream::connect(m.local_addr()).unwrap();
        // A length prefix past MAX_FRAME_BYTES: hostile or corrupt.
        raw.write_all(&(MAX_FRAME_BYTES + 1).to_le_bytes()).unwrap();
        raw.flush().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while m.stats().inbound_dropped == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(m.stats().inbound_dropped, 1);
    }

    #[test]
    fn undecodable_frame_drops_the_connection_and_counts() {
        use std::io::Write;
        let meshes = TcpMesh::bind_local_cluster(1).unwrap();
        let m = &meshes[0];
        let mut raw = TcpStream::connect(m.local_addr()).unwrap();
        // A well-framed payload that is not a Frame.
        raw.write_all(&8u32.to_le_bytes()).unwrap();
        raw.write_all(&[0xffu8; 8]).unwrap();
        raw.flush().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while m.stats().inbound_dropped == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(m.stats().inbound_dropped, 1);
    }

    #[test]
    fn coalescing_batches_are_counted() {
        let meshes = TcpMesh::bind_local_cluster(2).unwrap();
        let (a, b) = (&meshes[0], &meshes[1]);
        for i in 0..64 {
            a.send(Frame::to(NodeId(0), NodeId(1), ping(i))).unwrap();
        }
        for _ in 0..64 {
            b.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        }
        let s = a.stats();
        assert_eq!(s.frames_sent, 64);
        assert!(s.batches_sent >= 1, "batches must be counted");
        assert!(
            s.batches_sent <= 64,
            "batches cannot exceed frames: {}",
            s.batches_sent
        );
        assert_eq!(s.dials, 1, "one peer, one dial");
        assert_eq!(s.queue_depth, 0, "queue drained after delivery");
    }

    #[test]
    fn shutdown_is_idempotent_and_closes_send() {
        let meshes = TcpMesh::bind_local_cluster(2).unwrap();
        meshes[0].shutdown();
        meshes[0].shutdown();
        assert_eq!(
            meshes[0].send(Frame::to(NodeId(0), NodeId(1), ping(0))),
            Err(TransportError::Closed)
        );
    }
}

#[cfg(test)]
mod reconnect_tests {
    use super::*;
    use eden_wire::Message;

    #[test]
    fn sender_redials_after_the_peer_restarts() {
        // Endpoint A talks to B; B dies and a new endpoint rebinds the
        // same port; A's next sends reach the reincarnated B.
        let a = TcpMesh::bind(TcpMeshConfig::new(
            NodeId(0),
            "127.0.0.1:0".parse().unwrap(),
        ))
        .unwrap();
        let b1 = TcpMesh::bind(TcpMeshConfig::new(
            NodeId(1),
            "127.0.0.1:0".parse().unwrap(),
        ))
        .unwrap();
        let b_addr = b1.local_addr();
        a.add_peer(NodeId(1), b_addr);

        a.send(Frame::to(NodeId(0), NodeId(1), Message::Ping { token: 1 }))
            .unwrap();
        assert!(b1.recv_timeout(Duration::from_secs(2)).unwrap().is_some());

        // B restarts on the same address.
        b1.shutdown();
        std::thread::sleep(Duration::from_millis(50));
        let b2 =
            TcpMesh::bind(TcpMeshConfig::new(NodeId(1), b_addr)).expect("rebind the released port");

        // A's first send may land on the dead connection (best-effort
        // drop); the redial then delivers. Retry a few times like the
        // kernel's retransmission layer would.
        let mut got = None;
        for token in 10..20 {
            a.send(Frame::to(NodeId(0), NodeId(1), Message::Ping { token }))
                .unwrap();
            if let Some(frame) = b2.recv_timeout(Duration::from_millis(300)).unwrap() {
                got = Some(frame);
                break;
            }
        }
        let frame = got.expect("reconnection must eventually deliver");
        assert!(matches!(frame.msg, Message::Ping { .. }));
        a.shutdown();
        b2.shutdown();
    }
}
