/root/repo/target/debug/deps/figure3_layers-87e29d85ab62ab63.d: tests/figure3_layers.rs Cargo.toml

/root/repo/target/debug/deps/libfigure3_layers-87e29d85ab62ab63.rmeta: tests/figure3_layers.rs Cargo.toml

tests/figure3_layers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
