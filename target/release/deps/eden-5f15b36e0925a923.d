/root/repo/target/release/deps/eden-5f15b36e0925a923.d: src/lib.rs

/root/repo/target/release/deps/libeden-5f15b36e0925a923.rlib: src/lib.rs

/root/repo/target/release/deps/libeden-5f15b36e0925a923.rmeta: src/lib.rs

src/lib.rs:
