//! # Eden — a reproduction of *The Architecture of the Eden System* (SOSP 1981)
//!
//! Eden is an "integrated distributed" computing system: a set of node
//! machines on a local network presenting users with a single,
//! location-independent address space of **objects**. Each object has a
//! unique name, a representation, a type (a type manager defining its
//! operations) and some number of invocations; objects refer to one another
//! with **capabilities** and interact only by **invocation**.
//!
//! This crate is a facade re-exporting the public API of the workspace:
//!
//! * [`capability`] — names, rights, capabilities, capability lists.
//! * [`wire`] — values, invocation messages and the binary codec.
//! * [`transport`] — frame delivery between kernels (in-process mesh, TCP).
//! * [`ethersim`] — a discrete-event CSMA/CD Ethernet simulator.
//! * [`store`] — crash-safe checkpoint storage with replication.
//! * [`kernel`] — the Eden kernel: nodes, objects, invocation, location,
//!   mobility, freezing, checkpoint/crash, behaviors, intra-object sync.
//! * [`efs`] — the Eden File System: versions, directories, transactions.
//! * [`apps`] — example type managers (mail, calendar, shared queue).
//! * [`obs`] — observability: distributed invocation tracing, lock-free
//!   latency histograms, and the per-node flight recorder.
//!
//! ## Quickstart
//!
//! ```
//! use eden::kernel::Cluster;
//! use eden::apps::counter::CounterType;
//! use eden::wire::Value;
//!
//! // Build a two-node Eden system connected by an in-process network.
//! let cluster = Cluster::builder()
//!     .nodes(2)
//!     .register(|| Box::new(CounterType))
//!     .build();
//!
//! // Create a counter object on node 0 and invoke it from node 1:
//! // the invocation is location-independent.
//! let cap = cluster.node(0).create_object("counter", &[]).unwrap();
//! let reply = cluster.node(1).invoke(cap, "add", &[Value::I64(5)]).unwrap();
//! assert_eq!(reply, vec![Value::I64(5)]);
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]

pub use eden_apps as apps;
pub use eden_capability as capability;
pub use eden_efs as efs;
pub use eden_ethersim as ethersim;
pub use eden_kernel as kernel;
pub use eden_obs as obs;
pub use eden_store as store;
pub use eden_transport as transport;
pub use eden_wire as wire;
