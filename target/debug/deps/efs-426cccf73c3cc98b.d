/root/repo/target/debug/deps/efs-426cccf73c3cc98b.d: crates/bench/benches/efs.rs Cargo.toml

/root/repo/target/debug/deps/libefs-426cccf73c3cc98b.rmeta: crates/bench/benches/efs.rs Cargo.toml

crates/bench/benches/efs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
