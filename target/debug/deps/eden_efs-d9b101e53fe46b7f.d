/root/repo/target/debug/deps/eden_efs-d9b101e53fe46b7f.d: crates/efs/src/lib.rs crates/efs/src/dir.rs crates/efs/src/efs.rs crates/efs/src/file.rs crates/efs/src/records.rs crates/efs/src/txn.rs

/root/repo/target/debug/deps/eden_efs-d9b101e53fe46b7f: crates/efs/src/lib.rs crates/efs/src/dir.rs crates/efs/src/efs.rs crates/efs/src/file.rs crates/efs/src/records.rs crates/efs/src/txn.rs

crates/efs/src/lib.rs:
crates/efs/src/dir.rs:
crates/efs/src/efs.rs:
crates/efs/src/file.rs:
crates/efs/src/records.rs:
crates/efs/src/txn.rs:
