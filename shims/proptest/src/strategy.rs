//! The [`Strategy`] trait and the core combinators.

use std::fmt::Debug;
use std::ops::{Range, RangeFrom, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws one value directly from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Builds a recursive strategy: `self` generates leaves, and
    /// `recurse` wraps an inner strategy into one level of nesting.
    /// `depth` bounds the nesting; the size/branch hints are accepted for
    /// compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![(2, leaf.clone()), (1, deeper)]).boxed();
        }
        strat
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Weighted choice between strategies; built by `prop_oneof!`.
#[derive(Clone)]
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted option");
        Union { options, total }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.options {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum mismatch")
    }
}

macro_rules! uint_range_strategies {
    ($($ty:ty),*) => { $(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + rng.below_u128(span) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                lo + rng.below_u128(span) as $ty
            }
        }
        impl Strategy for RangeFrom<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                (self.start..=<$ty>::MAX).generate(rng)
            }
        }
    )* };
}

uint_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below_u128(self.end - self.start)
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),*) => { $(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below_u128(span) as i128) as $ty
            }
        }
        impl Strategy for RangeFrom<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                (self.start..=<$ty>::MAX).generate(rng)
            }
        }
    )* };
}

int_range_strategies!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($ty:ty),*) => { $(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $ty * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.unit_f64() as $ty * (hi - lo)
            }
        }
    )* };
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+);)*) => { $(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )* };
}

tuple_strategies! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_unions_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let u = crate::prop_oneof![2 => 0u32..10, 1 => 90u32..100];
        for _ in 0..200 {
            let v = u.generate(&mut rng);
            assert!(v < 10 || (90..100).contains(&v));
            let w = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..16)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::from_seed(9);
        for _ in 0..100 {
            let _ = strat.generate(&mut rng);
        }
    }
}
