/root/repo/target/debug/deps/eden-e8bb8d7416a0846c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libeden-e8bb8d7416a0846c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
