/root/repo/target/debug/deps/kernel-b763d2ab0d48d8db.d: crates/core/tests/kernel.rs

/root/repo/target/debug/deps/kernel-b763d2ab0d48d8db: crates/core/tests/kernel.rs

crates/core/tests/kernel.rs:
