//! E14 — the sharded location directory vs broadcast `WhereIs`.
//!
//! The seed kernel's only search was a broadcast: a locate miss (no
//! cached hint, dead birth hint) cost `WhereIs` to every peer plus a
//! fixed 250 ms collection window whenever nothing answered. The
//! directory (DESIGN.md §27) hashes each name to a *home* node that
//! tracks the current holder, and gossip membership turns dead-holder
//! detection push-based. Two claims, measured at 8/16/64 nodes:
//!
//! * **locate-miss messages are O(1)** — a miss is one query to the
//!   home plus one answer, independent of cluster size, where the seed
//!   pays `WhereIs` to n-1 peers plus the holder's `HereIs`.
//!
//! * **failover loses the 250 ms floor** — invoking a genuinely lost
//!   object (holder dead, no checkpoint) fails fast: gossip already
//!   knows the holder is dead and every live peer answers `NotHeld`,
//!   completing the fallback collector, where the seed always waits
//!   out the full locate window.
//!
//! The scenario per cluster size: an object born on node 1 and moved to
//! node 2 (so the birth hint dead-ends), plus an uncheckpointed object
//! that dies with node 1; node 1 is killed; node 3 invokes both with a
//! cold hint cache.

use std::time::{Duration, Instant};

use eden_capability::{Capability, NodeId};
use eden_kernel::{Cluster, NodeConfig};
use eden_wire::MemberStatus;

use crate::artifact_path;
use crate::table::Table;

/// Cluster sizes measured.
const SIZES: [usize; 3] = [8, 16, 64];
/// The seed's broadcast collection window (NodeConfig default).
const LOCATE_WINDOW_MS: u64 = 250;

/// One variant's measurements at one cluster size.
struct Arm {
    /// Location frames for the locate-miss invocation of a live,
    /// moved object (computed from the kernel's own counters).
    locate_messages: u64,
    /// Latency of that invocation, milliseconds.
    hit_ms: f64,
    /// Latency of invoking the lost object until failure, milliseconds.
    lost_ms: f64,
    /// Broadcasts the miss cost (0 with the directory).
    broadcasts: u64,
    /// Directory queries the miss cost (0 in the seed).
    queries: u64,
}

fn build(n: usize, directory: bool) -> Cluster {
    eden_apps::with_apps(Cluster::builder().nodes(n).node_config(NodeConfig {
        enable_directory: directory,
        remote_try_timeout: Duration::from_millis(200),
        gossip_interval: Duration::from_millis(40),
        gossip_probe_timeout: Duration::from_millis(120),
        gossip_suspect_timeout: Duration::from_millis(400),
        ..NodeConfig::default()
    }))
    .build()
}

fn wait_until(secs: u64, what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !check() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Creates a counter on `birth` whose directory home (when enabled) is
/// neither the doomed birth node nor the invoker, so the measured query
/// is one real round trip to a surviving home.
fn counter_homed_away(c: &Cluster, birth: usize, avoid: &[NodeId]) -> Capability {
    for _ in 0..256 {
        let cap = c.node(birth).create_object("counter", &[]).unwrap();
        match c.node(birth).directory_home(cap.name()) {
            Some(home) if avoid.contains(&home) => continue,
            _ => return cap,
        }
    }
    panic!("no object homed away from {avoid:?} in 256 draws");
}

/// Runs the miss-and-failover scenario on one cluster.
fn measure(n: usize, directory: bool) -> Arm {
    let c = build(n, directory);
    let invoker_id = NodeId(3);

    // The live object: born on 1, moved to 2, so hints dead-end once
    // node 1 is gone. The doomed object stays on node 1 unreplicated.
    let moved = counter_homed_away(&c, 1, &[NodeId(1), invoker_id]);
    let doomed = counter_homed_away(&c, 1, &[NodeId(1)]);
    c.node(1).move_object(moved, NodeId(2)).unwrap();
    wait_until(10, "move to settle", || c.node(2).is_local(moved.name()));

    c.kill(1);
    let invoker = c.node(3);
    if directory {
        // Failure detection is gossip's job: wait for the push-based
        // verdict, then for the re-homed registration to be servable.
        wait_until(60, "gossip death verdict", || {
            invoker
                .membership()
                .iter()
                .any(|(node, s, _)| *node == NodeId(1) && *s == MemberStatus::Dead)
        });
        wait_until(60, "registration to re-home", || {
            invoker.directory_locate(moved.name()) == Some(NodeId(2))
        });
    }

    // Locate miss on a live object: no cached hint, dead birth hint.
    let m0 = invoker.metrics();
    let start = Instant::now();
    invoker
        .invoke_with_timeout(moved, "get", &[], Duration::from_secs(30))
        .expect("moved object is alive on node 2");
    let hit_ms = start.elapsed().as_secs_f64() * 1e3;
    let m1 = invoker.metrics();
    let broadcasts = m1.location_broadcasts - m0.location_broadcasts;
    let queries = m1.directory_queries - m0.directory_queries;
    // The kernel's own counters translate to location frames: a
    // broadcast is WhereIs to n-1 peers plus the holder's HereIs; a
    // directory query is one request plus one answer.
    let locate_messages = broadcasts * (n as u64 - 1) + u64::from(broadcasts > 0) + queries * 2;

    // Failover on a lost object: the invocation must fail, the question
    // is how long the search takes to conclude "gone".
    let start = Instant::now();
    let err = invoker.invoke_with_timeout(doomed, "get", &[], Duration::from_secs(30));
    let lost_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(err.is_err(), "uncheckpointed object must be lost");

    c.shutdown();
    Arm {
        locate_messages,
        hit_ms,
        lost_ms,
        broadcasts,
        queries,
    }
}

fn write_artifact(rows: &[(usize, Arm, Arm)]) {
    let mut sizes = String::new();
    for (i, (n, seed, dir)) in rows.iter().enumerate() {
        if i > 0 {
            sizes.push_str(",\n");
        }
        sizes.push_str(&format!(
            "    {{\"nodes\": {n}, \
             \"seed\": {{\"locate_messages\": {}, \"broadcasts\": {}, \
             \"hit_ms\": {:.2}, \"lost_miss_ms\": {:.2}}}, \
             \"directory\": {{\"locate_messages\": {}, \"queries\": {}, \
             \"hit_ms\": {:.2}, \"lost_miss_ms\": {:.2}}}}}",
            seed.locate_messages,
            seed.broadcasts,
            seed.hit_ms,
            seed.lost_ms,
            dir.locate_messages,
            dir.queries,
            dir.hit_ms,
            dir.lost_ms,
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"e14\",\n  \"locate_window_ms\": {LOCATE_WINDOW_MS},\n  \
         \"sizes\": [\n{sizes}\n  ]\n}}\n"
    );
    let path = artifact_path("BENCH_E14.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Runs E14 and returns the table.
pub fn run() -> Table {
    let mut rows = Vec::new();
    for n in SIZES {
        let seed = measure(n, false);
        let dir = measure(n, true);

        // The two acceptance claims, enforced where they are measured.
        assert_eq!(
            dir.locate_messages, 2,
            "directory locate miss must be O(1) messages at {n} nodes"
        );
        assert!(
            dir.lost_ms < LOCATE_WINDOW_MS as f64,
            "directory failover must beat the {LOCATE_WINDOW_MS}ms locate window \
             at {n} nodes, took {:.1}ms",
            dir.lost_ms
        );
        assert!(
            seed.lost_ms >= LOCATE_WINDOW_MS as f64,
            "the seed search cannot conclude a miss before the locate window, \
             took {:.1}ms",
            seed.lost_ms
        );
        rows.push((n, seed, dir));
    }

    let mut t = Table::new(
        "E14 — location search: broadcast WhereIs (seed) vs sharded directory",
        &[
            "nodes",
            "search",
            "locate-miss msgs",
            "hit latency",
            "lost-object failover",
        ],
    );
    for (n, seed, dir) in &rows {
        t.row(vec![
            n.to_string(),
            "seed: broadcast".into(),
            seed.locate_messages.to_string(),
            format!("{:.2} ms", seed.hit_ms),
            format!("{:.1} ms", seed.lost_ms),
        ]);
        t.row(vec![
            n.to_string(),
            "directory".into(),
            dir.locate_messages.to_string(),
            format!("{:.2} ms", dir.hit_ms),
            format!("{:.1} ms", dir.lost_ms),
        ]);
    }
    t.note(
        "a locate miss = no cached hint and a dead birth hint; seed messages \
         grow with n (WhereIs to n-1 peers + HereIs), directory stays at 2",
    );
    t.note(format!(
        "lost-object failover: the seed waits out the full {LOCATE_WINDOW_MS}ms \
         collection window; with gossip the holder is already a known corpse \
         and every live peer's NotHeld completes the search"
    ));
    write_artifact(&rows);
    t
}
