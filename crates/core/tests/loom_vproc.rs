//! Loom models for the virtual-processor pool's three load-bearing
//! properties: queue-full shedding, blocked-worker spare injection, and
//! shutdown draining. Compiled only under `RUSTFLAGS="--cfg loom"` —
//! run them with `scripts/ci.sh loom`, which also swaps the kernel's
//! sync shims (see `eden_kernel::sync::shim`) to loom's instrumented
//! primitives so the pool's lock/condvar traffic is under the model's
//! schedule control.
#![cfg(loom)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use eden_capability::NodeId;
use eden_kernel::vproc::{SubmitError, VirtualProcessorPool};
use eden_obs::ObsRegistry;
use loom::sync::{Arc, Condvar, Mutex};

fn pool(workers: usize, cap: usize) -> VirtualProcessorPool {
    let obs = std::sync::Arc::new(ObsRegistry::new(0));
    VirtualProcessorPool::new(NodeId(0), workers, cap, &obs)
}

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while !done() {
        if Instant::now() >= end {
            return false;
        }
        loom::thread::yield_now();
        std::thread::sleep(Duration::from_millis(1));
    }
    true
}

/// A full queue sheds with `Overloaded` — never blocks, never grows —
/// under every explored interleaving of submitter vs. worker.
#[test]
fn model_queue_full_sheds_overloaded() {
    loom::model(|| {
        let p = pool(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = gate.clone();
        p.submit(move || {
            let mut open = g.0.lock();
            while !*open {
                g.1.wait(&mut open);
            }
        })
        .unwrap();
        // The wedge task must leave the queue before it can back up.
        assert!(
            wait_until(Duration::from_secs(5), || p.stats().queued == 0),
            "worker never picked up the wedge task"
        );
        p.submit(|| {}).unwrap();
        p.submit(|| {}).unwrap();
        assert_eq!(p.submit(|| {}), Err(SubmitError::Overloaded));
        let stats = p.stats();
        assert!(stats.rejected >= 1);
        assert!(stats.queued <= 2, "shedding must cap the queue");
        *gate.0.lock() = true;
        gate.1.notify_all();
        p.shutdown();
    });
}

/// A worker parked in a `blocking` scope is replaced by a spare, so the
/// task that unblocks it always gets a processor (no starvation
/// deadlock), and the pool shrinks back afterwards.
#[test]
fn model_blocked_worker_gets_a_spare() {
    loom::model(|| {
        let p = Arc::new(pool(1, 64));
        let unblocker = Arc::new(AtomicUsize::new(0));
        let (p2, u2) = (p.clone(), unblocker.clone());
        p.submit(move || {
            p2.blocking(|| {
                let end = Instant::now() + Duration::from_secs(5);
                while u2.load(Ordering::SeqCst) == 0 && Instant::now() < end {
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        })
        .unwrap();
        assert!(
            wait_until(Duration::from_secs(5), || p.stats().blocked == 1),
            "worker never entered the blocking scope"
        );
        let u3 = unblocker.clone();
        p.submit(move || {
            u3.store(1, Ordering::SeqCst);
        })
        .unwrap();
        assert!(
            wait_until(Duration::from_secs(5), || unblocker.load(Ordering::SeqCst)
                == 1),
            "spare never ran the unblocking task"
        );
        assert!(p.stats().spares_spawned >= 1);
        // Spares retire once the queue is empty and the blocked worker
        // returns: live settles back to the configured complement.
        assert!(
            wait_until(Duration::from_secs(5), || p.stats().live <= 1),
            "pool did not shrink back after the blocking scope"
        );
        p.shutdown();
    });
}

/// Shutdown drains every queued task exactly once, then refuses new
/// work, regardless of how submits interleave with the stop flag.
#[test]
fn model_shutdown_drains_then_closes() {
    loom::model(|| {
        let p = pool(1, 1024);
        let done = Arc::new(AtomicUsize::new(0));
        let mut accepted = 0usize;
        for _ in 0..24 {
            let d = done.clone();
            if p.submit(move || {
                d.fetch_add(1, Ordering::SeqCst);
            })
            .is_ok()
            {
                accepted += 1;
            }
        }
        p.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), accepted);
        assert_eq!(p.submit(|| {}), Err(SubmitError::Closed));
        assert_eq!(done.load(Ordering::SeqCst), accepted, "no task ran twice");
    });
}
