/root/repo/target/debug/deps/eden_transport-9e450a92c7d0a53e.d: crates/transport/src/lib.rs crates/transport/src/latency.rs crates/transport/src/mesh.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs

/root/repo/target/debug/deps/eden_transport-9e450a92c7d0a53e: crates/transport/src/lib.rs crates/transport/src/latency.rs crates/transport/src/mesh.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs

crates/transport/src/lib.rs:
crates/transport/src/latency.rs:
crates/transport/src/mesh.rs:
crates/transport/src/stats.rs:
crates/transport/src/tcp.rs:
