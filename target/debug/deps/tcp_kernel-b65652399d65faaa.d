/root/repo/target/debug/deps/tcp_kernel-b65652399d65faaa.d: tests/tcp_kernel.rs Cargo.toml

/root/repo/target/debug/deps/libtcp_kernel-b65652399d65faaa.rmeta: tests/tcp_kernel.rs Cargo.toml

tests/tcp_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
