//! E13 — TCP transport throughput: per-frame sync sends vs the
//! coalescing send pipeline.
//!
//! The seed `TcpMesh::send` ran on the caller's thread: per-connection
//! mutex, two `write_all` syscalls per frame (length prefix, payload),
//! and a synchronous 500 ms dial whenever the peer was cold or dead.
//! The send pipeline (DESIGN.md S26) moves all of that to one writer
//! thread per peer: `send()` is a bounded-queue enqueue, the writer
//! coalesces everything pending into a single `write` syscall, and
//! dialing happens in the background with exponential backoff.
//!
//! Two measurements on a 4-endpoint loopback cluster:
//!
//! * **small-frame throughput** — one sender floods its three peers
//!   with `Ping` frames; the clock stops when every receiver has its
//!   full count. The baseline emulates the seed path faithfully but
//!   generously: streams are pre-connected (no dial cost on the
//!   measured path), receivers are identical `TcpMesh` endpoints, so
//!   only the sender-side discipline differs. Acceptance: the pipeline
//!   sustains at least twice the baseline rate.
//!
//! * **dead-peer isolation** — one cycle sends a frame to each healthy
//!   peer plus one to a peer whose accept backlog is full (dials hang
//!   for the whole connect timeout — the "backlog trick", which works
//!   even where unroutable addresses don't). The seed path eats the
//!   500 ms dial *on the caller's thread* every cycle; the pipeline's
//!   cycles stay in microseconds while the stuck peer's writer backs
//!   off in the background and its queue sheds.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use eden_capability::NodeId;
use eden_transport::{Endpoint, TcpMesh, TcpTuning};
use eden_wire::{Frame, Message, WireEncode};

use crate::artifact_path;
use crate::table::Table;

/// Frames sent to each of the three healthy peers in the throughput run.
const FRAMES_PER_PEER: u64 = 10_000;
/// Healthy receivers in the cluster (plus the sender = 4 endpoints).
const PEERS: u64 = 3;
/// Dead-peer cycles driven through the pipeline.
const PIPELINE_CYCLES: u64 = 1_000;
/// Dead-peer cycles driven through the seed path: each one stalls for
/// the full 500 ms connect timeout, so a handful suffices.
const BASELINE_CYCLES: u64 = 3;

fn ping(token: u64) -> Message {
    Message::Ping { token }
}

/// A listener whose accept backlog is pre-filled: dialing `addr` hangs
/// until the dialer's connect timeout instead of completing.
struct StuckPeer {
    _listener: TcpListener,
    _held: Vec<TcpStream>,
    addr: SocketAddr,
}

fn stuck_peer() -> StuckPeer {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stuck listener");
    let addr = listener.local_addr().expect("local addr");
    let mut held = Vec::new();
    for _ in 0..512 {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(50)) {
            Ok(s) => held.push(s),
            Err(_) => break,
        }
    }
    StuckPeer {
        _listener: listener,
        _held: held,
        addr,
    }
}

/// The seed send path, emulated outside the kernel: one pre-connected
/// stream per peer behind a mutex, two `write_all` syscalls per frame.
struct SeedSender {
    conns: HashMap<NodeId, Mutex<TcpStream>>,
}

impl SeedSender {
    fn connect(peers: &[(NodeId, SocketAddr)]) -> SeedSender {
        let conns = peers
            .iter()
            .map(|&(node, addr)| {
                let s = TcpStream::connect_timeout(&addr, Duration::from_millis(500))
                    .expect("baseline pre-connect");
                s.set_nodelay(true).expect("nodelay");
                (node, Mutex::new(s))
            })
            .collect();
        SeedSender { conns }
    }

    /// One seed-style send: length prefix, then payload, each its own
    /// syscall under the per-connection lock.
    fn send(&self, dst: NodeId, frame: &Frame) {
        let payload = frame.encode_to_bytes();
        let mut conn = self
            .conns
            .get(&dst)
            .expect("known peer")
            .lock()
            .expect("unpoisoned");
        conn.write_all(&(payload.len() as u32).to_le_bytes())
            .expect("write len");
        conn.write_all(&payload).expect("write payload");
    }
}

/// Waits until every receiver reports `per_peer` delivered frames.
fn await_delivery(receivers: &[&TcpMesh], per_peer: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if receivers
            .iter()
            .all(|m| m.stats().frames_received >= per_peer)
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "receivers never drained: {:?}",
            receivers
                .iter()
                .map(|m| m.stats().frames_received)
                .collect::<Vec<_>>()
        );
        std::thread::yield_now();
    }
}

/// Throughput of the emulated seed path: frames/s over the full
/// flood-and-drain, plus the payload size used.
pub fn baseline_throughput() -> (f64, usize) {
    let receivers = TcpMesh::bind_local_cluster(PEERS as usize).expect("receivers");
    let peers: Vec<(NodeId, SocketAddr)> = receivers
        .iter()
        .map(|m| (m.node(), m.local_addr()))
        .collect();
    let sender = SeedSender::connect(&peers);
    let probe = Frame::to(NodeId(7), NodeId(0), ping(0));
    let payload_bytes = probe.encode_to_bytes().len();

    let refs: Vec<&TcpMesh> = receivers.iter().collect();
    let start = Instant::now();
    for i in 0..FRAMES_PER_PEER {
        for &(node, _) in &peers {
            sender.send(node, &Frame::to(NodeId(7), node, ping(i)));
        }
    }
    await_delivery(&refs, FRAMES_PER_PEER);
    let secs = start.elapsed().as_secs_f64();
    for m in &receivers {
        m.shutdown();
    }
    ((FRAMES_PER_PEER * PEERS) as f64 / secs, payload_bytes)
}

/// Throughput of the send pipeline, plus the batch count it needed
/// (fewer batches than frames = coalescing happened).
pub fn pipeline_throughput() -> (f64, u64) {
    // A deep queue so the flood measures coalescing, not shedding: the
    // run is only valid if every frame is delivered (asserted below).
    let tuning = TcpTuning {
        queue_cap: 1 << 16,
        ..TcpTuning::default()
    };
    let meshes = TcpMesh::bind_local_cluster_with(1 + PEERS as usize, tuning).expect("cluster");
    let (sender, receivers) = meshes.split_first().expect("non-empty");
    let src = sender.node();

    let refs: Vec<&TcpMesh> = receivers.iter().collect();
    let start = Instant::now();
    for i in 0..FRAMES_PER_PEER {
        for m in receivers {
            sender
                .send(Frame::to(src, m.node(), ping(i)))
                .expect("send");
        }
    }
    await_delivery(&refs, FRAMES_PER_PEER);
    let secs = start.elapsed().as_secs_f64();
    let stats = sender.stats();
    assert_eq!(stats.frames_dropped, 0, "throughput run must not shed");
    let batches = stats.batches_sent;
    for m in &meshes {
        m.shutdown();
    }
    ((FRAMES_PER_PEER * PEERS) as f64 / secs, batches)
}

/// Max caller-side cycle latency (seconds) when each cycle sends one
/// frame to every healthy peer and one to a stuck peer, on the seed
/// path: the stuck peer costs a synchronous 500 ms dial per cycle.
pub fn baseline_dead_peer_cycle() -> f64 {
    let receivers = TcpMesh::bind_local_cluster(PEERS as usize).expect("receivers");
    let peers: Vec<(NodeId, SocketAddr)> = receivers
        .iter()
        .map(|m| (m.node(), m.local_addr()))
        .collect();
    let sender = SeedSender::connect(&peers);
    let stuck = stuck_peer();

    let mut worst = 0f64;
    for i in 0..BASELINE_CYCLES {
        let start = Instant::now();
        for &(node, _) in &peers {
            sender.send(node, &Frame::to(NodeId(7), node, ping(i)));
        }
        // The seed path had no connection to the dead peer, so every
        // send re-dialed synchronously and ate the full timeout.
        let _ = TcpStream::connect_timeout(&stuck.addr, Duration::from_millis(500));
        worst = worst.max(start.elapsed().as_secs_f64());
    }
    for m in &receivers {
        m.shutdown();
    }
    worst
}

/// Max caller-side cycle latency (seconds) for the same cycle through
/// the pipeline, plus the sender's (shed, dial_failures) counters —
/// proof the stuck peer was really backing off in the background.
pub fn pipeline_dead_peer_cycle() -> (f64, u64, u64) {
    let meshes = TcpMesh::bind_local_cluster(1 + PEERS as usize).expect("cluster");
    let (sender, receivers) = meshes.split_first().expect("non-empty");
    let src = sender.node();
    let stuck = stuck_peer();
    let dead = NodeId(9);
    sender.add_peer(dead, stuck.addr);

    let mut worst = 0f64;
    for i in 0..PIPELINE_CYCLES {
        let start = Instant::now();
        for m in receivers {
            sender
                .send(Frame::to(src, m.node(), ping(i)))
                .expect("send");
        }
        sender.send(Frame::to(src, dead, ping(i))).expect("send");
        worst = worst.max(start.elapsed().as_secs_f64());
    }
    let stats = sender.stats();
    for m in &meshes {
        m.shutdown();
    }
    (worst, stats.frames_shed, stats.dial_failures)
}

/// Renders a machine-readable artifact alongside the printed table.
fn write_artifact(
    payload_bytes: usize,
    baseline_fps: f64,
    pipeline_fps: f64,
    batches: u64,
    baseline_cycle_s: f64,
    pipeline_cycle_s: f64,
) {
    let json = format!(
        "{{\n  \"experiment\": \"e13\",\n  \"frames\": {},\n  \"payload_bytes\": {},\n  \
         \"baseline_frames_per_sec\": {:.0},\n  \"pipeline_frames_per_sec\": {:.0},\n  \
         \"speedup\": {:.2},\n  \"pipeline_batches\": {},\n  \
         \"baseline_dead_peer_cycle_ms\": {:.1},\n  \"pipeline_dead_peer_cycle_ms\": {:.3}\n}}\n",
        FRAMES_PER_PEER * PEERS,
        payload_bytes,
        baseline_fps,
        pipeline_fps,
        pipeline_fps / baseline_fps,
        batches,
        baseline_cycle_s * 1e3,
        pipeline_cycle_s * 1e3,
    );
    let path = artifact_path("BENCH_E13.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Runs E13 and returns the table.
pub fn run() -> Table {
    // Warm-up: first-run costs (allocator, lazy statics, listener
    // setup) must not bias whichever variant goes first.
    let _ = pipeline_throughput();

    let (baseline_fps, payload_bytes) = baseline_throughput();
    let (pipeline_fps, batches) = pipeline_throughput();
    let baseline_cycle = baseline_dead_peer_cycle();
    let (pipeline_cycle, shed, dial_failures) = pipeline_dead_peer_cycle();

    let mut t = Table::new(
        format!(
            "E13 — TCP transport: 1 sender -> {PEERS} receivers, \
             {FRAMES_PER_PEER} x {payload_bytes}-byte frames per peer"
        ),
        &["send path", "frames/s", "dead-peer cycle (max)"],
    );
    t.row(vec![
        "seed: sync per-frame writes, sync dial".into(),
        format!("{baseline_fps:.0}"),
        format!("{:.0} ms ({BASELINE_CYCLES} cycles)", baseline_cycle * 1e3),
    ]);
    t.row(vec![
        format!("pipeline: coalescing writers ({batches} batches)"),
        format!("{pipeline_fps:.0}"),
        format!("{:.3} ms ({PIPELINE_CYCLES} cycles)", pipeline_cycle * 1e3),
    ]);
    t.note(format!(
        "speedup {:.2}x (acceptance: >=2x); a cycle = one send to each \
         healthy peer + one to a peer whose dials hang",
        pipeline_fps / baseline_fps
    ));
    t.note(format!(
        "stuck peer stayed in the background: {shed} frames shed at its \
         bounded queue, {dial_failures} dial failures absorbed by backoff"
    ));
    t.note("expected shape: the pipeline wins on syscall count (2 per batch vs 2 per frame) and its dead-peer cycle is enqueue-priced, not dial-priced");
    write_artifact(
        payload_bytes,
        baseline_fps,
        pipeline_fps,
        batches,
        baseline_cycle,
        pipeline_cycle,
    );
    t
}
