//! Regression test for the seed's reader-thread leak: inbound reader
//! threads used to park forever in `read_exact` after `shutdown()`, so
//! every TcpMesh lifecycle leaked threads. Kept in its own test binary
//! so no sibling tests spawn threads while we count ours.

#![cfg(target_os = "linux")]

use std::time::Duration;

use eden_capability::NodeId;
use eden_transport::{Endpoint, TcpMesh};
use eden_wire::{Frame, Message};

/// Live threads in this process, per the kernel.
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("procfs")
        .count()
}

#[test]
fn shutdown_reaps_reader_and_writer_threads() {
    let before = thread_count();
    for round in 0..3u64 {
        let meshes = TcpMesh::bind_local_cluster(2).expect("cluster");
        let (a, b) = (&meshes[0], &meshes[1]);
        // Traffic both ways, so both endpoints hold inbound readers
        // (the threads that used to leak) and outbound writers.
        a.send(Frame::to(
            NodeId(0),
            NodeId(1),
            Message::Ping { token: round },
        ))
        .unwrap();
        b.send(Frame::to(
            NodeId(1),
            NodeId(0),
            Message::Ping { token: round },
        ))
        .unwrap();
        a.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        b.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        assert!(
            thread_count() > before,
            "endpoints should be running accept/read/write threads"
        );
        drop(meshes); // Drop calls shutdown(), which joins every thread.
    }
    // Joined means gone immediately; allow a scheduler tick anyway for
    // the kernel to retire the task entries.
    std::thread::sleep(Duration::from_millis(50));
    let after = thread_count();
    assert!(
        after <= before,
        "thread leak: {before} threads before, {after} after three \
         bind/shutdown cycles"
    );
}
