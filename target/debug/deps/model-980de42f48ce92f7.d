/root/repo/target/debug/deps/model-980de42f48ce92f7.d: crates/core/tests/model.rs

/root/repo/target/debug/deps/model-980de42f48ce92f7: crates/core/tests/model.rs

crates/core/tests/model.rs:
