/root/repo/target/debug/deps/repro-90a344b5bdcbb8b7.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-90a344b5bdcbb8b7: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
