//! The offset-preserving lexer every rule is built on.
//!
//! [`SourceModel`] splits one file into parallel `code` / `comments`
//! views of identical byte length (string and char literal *contents*
//! are blanked in both), so rule logic can match tokens in `code`
//! without tripping over comments or literals, yet still report
//! 1-based line numbers against the raw text. Suppression comments
//! (`// eden-lint: allow(<rule>)`) are collected here too, including
//! the written rationale the graph rules require.

use std::collections::HashMap;

use crate::Rule;

/// A lexed view of one file: `code` and `comments` are byte-for-byte the
/// same length as `raw`, with the other class of text blanked to spaces
/// (string and char literal *contents* are blanked in `code` too), so
/// byte offsets line up across all three views.
pub(crate) struct SourceModel {
    pub(crate) raw: String,
    pub(crate) code: String,
    pub(crate) comments: String,
    /// Byte offset at which each line starts.
    pub(crate) line_starts: Vec<usize>,
    /// Per line: true when inside a `#[cfg(test)] mod` body.
    pub(crate) test_lines: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum LexState {
    Normal,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
    Char,
}

impl SourceModel {
    pub(crate) fn new(raw: &str) -> SourceModel {
        let mut code = String::with_capacity(raw.len());
        let mut comments = String::with_capacity(raw.len());
        let mut state = LexState::Normal;
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0usize;

        // Pushes `c` to the active buffer and pads the other with spaces
        // of the same UTF-8 width, preserving offsets. Newlines go to
        // both so line structure is shared.
        let push = |code: &mut String, comments: &mut String, c: char, to_code: bool| {
            let pad = " ".repeat(c.len_utf8());
            if c == '\n' {
                code.push('\n');
                comments.push('\n');
            } else if to_code {
                code.push(c);
                comments.push_str(&pad);
            } else {
                comments.push(c);
                code.push_str(&pad);
            }
        };
        // Blanks a char in both views (string/char literal contents).
        let blank = |code: &mut String, comments: &mut String, c: char| {
            if c == '\n' {
                code.push('\n');
                comments.push('\n');
            } else {
                let pad = " ".repeat(c.len_utf8());
                code.push_str(&pad);
                comments.push_str(&pad);
            }
        };

        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match state {
                LexState::Normal => match c {
                    '/' if next == Some('/') => {
                        state = LexState::LineComment;
                        push(&mut code, &mut comments, c, false);
                    }
                    '/' if next == Some('*') => {
                        state = LexState::BlockComment(1);
                        push(&mut code, &mut comments, c, false);
                        push(&mut code, &mut comments, '*', false);
                        i += 1;
                    }
                    '"' => {
                        state = LexState::Str { raw_hashes: None };
                        push(&mut code, &mut comments, c, true);
                    }
                    'r' | 'b' if starts_raw_string(&bytes, i) => {
                        // Emit the prefix up to and including the quote.
                        let mut hashes = 0u32;
                        push(&mut code, &mut comments, c, true);
                        i += 1;
                        if bytes.get(i) == Some(&'r') && c == 'b' {
                            push(&mut code, &mut comments, 'r', true);
                            i += 1;
                        }
                        while bytes.get(i) == Some(&'#') {
                            hashes += 1;
                            push(&mut code, &mut comments, '#', true);
                            i += 1;
                        }
                        // Now at the opening quote.
                        push(&mut code, &mut comments, '"', true);
                        state = LexState::Str {
                            raw_hashes: Some(hashes),
                        };
                    }
                    'b' if next == Some('\'') => {
                        push(&mut code, &mut comments, c, true);
                        push(&mut code, &mut comments, '\'', true);
                        i += 1;
                        state = LexState::Char;
                    }
                    '\'' if is_char_literal(&bytes, i) => {
                        push(&mut code, &mut comments, c, true);
                        state = LexState::Char;
                    }
                    c => push(&mut code, &mut comments, c, true),
                },
                LexState::LineComment => {
                    if c == '\n' {
                        state = LexState::Normal;
                    }
                    push(&mut code, &mut comments, c, false);
                }
                LexState::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        push(&mut code, &mut comments, c, false);
                        push(&mut code, &mut comments, '/', false);
                        i += 1;
                        state = if depth == 1 {
                            LexState::Normal
                        } else {
                            LexState::BlockComment(depth - 1)
                        };
                    } else if c == '/' && next == Some('*') {
                        push(&mut code, &mut comments, c, false);
                        push(&mut code, &mut comments, '*', false);
                        i += 1;
                        state = LexState::BlockComment(depth + 1);
                    } else {
                        push(&mut code, &mut comments, c, false);
                    }
                }
                LexState::Str { raw_hashes: None } => match c {
                    '\\' => {
                        blank(&mut code, &mut comments, c);
                        if let Some(n) = next {
                            blank(&mut code, &mut comments, n);
                            i += 1;
                        }
                    }
                    '"' => {
                        push(&mut code, &mut comments, c, true);
                        state = LexState::Normal;
                    }
                    c => blank(&mut code, &mut comments, c),
                },
                LexState::Str {
                    raw_hashes: Some(h),
                } => {
                    if c == '"' && raw_string_closes(&bytes, i, h) {
                        push(&mut code, &mut comments, c, true);
                        for _ in 0..h {
                            i += 1;
                            push(&mut code, &mut comments, '#', true);
                        }
                        state = LexState::Normal;
                    } else {
                        blank(&mut code, &mut comments, c);
                    }
                }
                LexState::Char => match c {
                    '\\' => {
                        blank(&mut code, &mut comments, c);
                        if let Some(n) = next {
                            blank(&mut code, &mut comments, n);
                            i += 1;
                        }
                    }
                    '\'' => {
                        push(&mut code, &mut comments, c, true);
                        state = LexState::Normal;
                    }
                    c => blank(&mut code, &mut comments, c),
                },
            }
            i += 1;
        }

        let mut line_starts = vec![0usize];
        for (pos, b) in code.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(pos + 1);
            }
        }
        let test_lines = mark_test_lines(&code, &line_starts);
        SourceModel {
            raw: raw.to_string(),
            code,
            comments,
            line_starts,
            test_lines,
        }
    }

    /// 1-based line for a byte offset.
    pub(crate) fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    pub(crate) fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// The code text of one 1-based line.
    pub(crate) fn code_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|e| e - 1)
            .unwrap_or(self.code.len());
        &self.code[start..end.max(start)]
    }
}

fn starts_raw_string(bytes: &[char], i: usize) -> bool {
    // r"..."  r#"..."#  br"..."  br#"..."#
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

fn raw_string_closes(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Distinguishes a char literal from a lifetime: `'x'` and `'\n'` are
/// literals; `'a` followed by anything but a closing quote is a
/// lifetime.
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some('\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks lines inside `#[cfg(test)] mod … { … }` bodies.
fn mark_test_lines(code: &str, line_starts: &[usize]) -> Vec<bool> {
    let mut flags = vec![false; line_starts.len()];
    let mut depth: i32 = 0;
    let mut pending_cfg_test = false;
    let mut regions: Vec<i32> = Vec::new(); // depths at which a test mod opened
    for (idx, &start) in line_starts.iter().enumerate() {
        let end = line_starts.get(idx + 1).copied().unwrap_or(code.len());
        let line = &code[start..end];
        let compact: String = line.split_whitespace().collect();
        if compact.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        if !regions.is_empty() {
            flags[idx] = true;
        } else if pending_cfg_test {
            // The attribute line and the mod header are test lines too.
            flags[idx] = true;
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending_cfg_test {
                        regions.push(depth);
                        pending_cfg_test = false;
                    }
                }
                '}' => {
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
    }
    flags
}

// ================= Suppressions =================

/// One line's suppression coverage: whether the `allow(...)` comment
/// also carries a written rationale after the closing paren. The graph
/// rules (lock-order, blocking-discipline, wire-schema-drift) only
/// honor suppressions with a rationale.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Cover {
    pub(crate) with_rationale: bool,
}

/// Lines covered by `// eden-lint: allow(<rule>)`, per rule. A comment
/// on a code-bearing line covers that line; a comment on its own line
/// covers the next code-bearing line as well.
pub(crate) fn collect_suppressions(model: &SourceModel) -> HashMap<Rule, HashMap<usize, Cover>> {
    let mut map: HashMap<Rule, HashMap<usize, Cover>> = HashMap::new();
    let total = model.line_starts.len();
    for line in 1..=total {
        let start = model.line_starts[line - 1];
        let end = model
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(model.comments.len());
        let comment = &model.comments[start..end.min(model.comments.len())];
        let Some(pos) = comment.find("eden-lint:") else {
            continue;
        };
        let rest = &comment[pos + "eden-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let Some(close) = rest[open..].find(')') else {
            continue;
        };
        // A rationale is any prose after the closing paren, e.g.
        //   // eden-lint: allow(lock-order): registration is a leaf
        let rationale = rest[open + close + 1..]
            .trim_start_matches([':', '-', '—', ' ', '\u{a0}'])
            .trim();
        let cover = Cover {
            with_rationale: rationale.chars().filter(|c| c.is_alphanumeric()).count() >= 3,
        };
        for name in rest[open + "allow(".len()..open + close].split(',') {
            let Some(rule) = Rule::from_name(name.trim()) else {
                continue;
            };
            let lines = map.entry(rule).or_default();
            merge_cover(lines, line, cover);
            if model.code_line(line).trim().is_empty() {
                // Standalone comment: cover the next code-bearing line.
                for next in line + 1..=total {
                    if !model.code_line(next).trim().is_empty() {
                        merge_cover(lines, next, cover);
                        break;
                    }
                }
            }
        }
    }
    map
}

fn merge_cover(lines: &mut HashMap<usize, Cover>, line: usize, cover: Cover) {
    let entry = lines.entry(line).or_default();
    entry.with_rationale |= cover.with_rationale;
}

// ================= Token helpers =================

pub(crate) fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Byte offsets of whole-word occurrences of `needle` in `hay`.
pub(crate) fn word_occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let after = at + needle.len();
        let after_ok = after >= bytes.len() || !is_ident_char(bytes[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

/// The identifier ending at byte offset `end` (exclusive), if any.
pub(crate) fn ident_before(code: &str, mut end: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    while end > 0 && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    let stop = end;
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1]) {
        start -= 1;
    }
    (start < stop).then(|| &code[start..stop])
}

/// The identifier starting at byte offset `start`, if any.
pub(crate) fn ident_at(code: &str, start: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut end = start;
    while end < bytes.len() && is_ident_char(bytes[end]) {
        end += 1;
    }
    (end > start).then(|| &code[start..end])
}

/// Skips a balanced `(...)` group ending at `close` (offset of `)`),
/// returning the offset of the matching `(`.
pub(crate) fn open_paren_of(code: &str, close: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    if bytes.get(close) != Some(&b')') {
        return None;
    }
    let mut depth = 0i32;
    let mut i = close;
    loop {
        match bytes[i] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
}

/// Finds the byte offset of the brace matching the `{` at `open`.
pub(crate) fn matching_brace(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    if bytes.get(open) != Some(&b'{') {
        return None;
    }
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Forward matcher for `(...)` starting at `open`.
pub(crate) fn matching_paren_fwd(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    if bytes.get(open) != Some(&b'(') {
        return None;
    }
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_blanks_strings_and_comments() {
        let m = SourceModel::new("let a = \"thread::spawn\"; // thread::spawn\nlet b = 'x';\n");
        assert!(!m.code.contains("thread::spawn"));
        assert!(m.comments.contains("thread::spawn"));
        assert_eq!(m.raw.len(), m.code.len());
        assert_eq!(m.raw.len(), m.comments.len());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let m = SourceModel::new("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(m.code.contains("fn f<'a>"));
    }

    #[test]
    fn cfg_test_mod_lines_are_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let m = SourceModel::new(src);
        assert!(!m.is_test_line(1));
        assert!(m.is_test_line(4));
        assert!(!m.is_test_line(6));
    }

    #[test]
    fn suppression_rationale_is_detected() {
        let m = SourceModel::new(
            "let a = 1; // eden-lint: allow(lock-order): registration is a leaf\nlet b = 2; // eden-lint: allow(lock-order)\n",
        );
        let map = collect_suppressions(&m);
        let lines = &map[&Rule::LockOrder];
        assert!(lines[&1].with_rationale);
        assert!(!lines[&2].with_rationale);
    }
}
