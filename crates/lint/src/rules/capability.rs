//! L2 `capability-discipline`: rights checks precede effects on
//! capability-bearing public kernel entry points.

use crate::lexer::{
    ident_before, matching_brace, matching_paren_fwd, word_occurrences, SourceModel,
};
use crate::{Finding, Rule};

pub(crate) fn check(rel_path: &str, model: &SourceModel, out: &mut Vec<Finding>) {
    if !(rel_path == "crates/core/src/node.rs" || rel_path == "crates/core/src/object.rs") {
        return;
    }
    const CHECKS: [&str; 3] = ["permits(", "check_rights", "require_rights"];
    const EFFECTS: [&str; 7] = [
        ".endpoint.",
        ".store.",
        ".dispatch",
        "dispatch(",
        ".enqueue",
        "remote_invoke(",
        "locate_broadcast(",
    ];
    let code = &model.code;
    for at in word_occurrences(code, "fn") {
        // Only `pub fn` (not `pub(crate) fn`): look back for `pub` with
        // nothing but whitespace between.
        let Some(prev) = ident_before(code, at) else {
            continue;
        };
        if prev != "pub" {
            continue;
        }
        let line = model.line_of(at);
        if model.is_test_line(line) {
            continue;
        }
        let Some(params_open) = code[at..].find('(').map(|p| at + p) else {
            continue;
        };
        let Some(params_close) = matching_paren_fwd(code, params_open) else {
            continue;
        };
        let params = &code[params_open + 1..params_close];
        let Some(cap_param) = capability_param(params) else {
            continue;
        };
        let Some(body_open) = code[params_close..].find('{').map(|p| params_close + p) else {
            continue;
        };
        let Some(body_close) = matching_brace(code, body_open) else {
            continue;
        };
        let body = &code[body_open..body_close];

        let first_effect = EFFECTS.iter().filter_map(|t| body.find(t)).min();
        let Some(effect_at) = first_effect else {
            continue; // No store/transport/dispatch on this path.
        };
        let first_check = CHECKS.iter().filter_map(|t| body.find(t)).min();
        // Forwarding the capability into another call (delegation to a
        // checked entry point) also counts as the guard.
        let first_forward = word_occurrences(body, &cap_param).into_iter().find(|&p| {
            let lead = body[..p].trim_end();
            lead.ends_with('(') || lead.ends_with(',')
        });
        let guard = match (first_check, first_forward) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if guard.map(|g| g > effect_at).unwrap_or(true) {
            let fn_name = code[at + 2..params_open].trim().to_string();
            out.push(Finding {
                rule: Rule::CapabilityDiscipline,
                file: rel_path.to_string(),
                line,
                message: format!(
                    "public kernel entry point `{fn_name}` accepts a Capability but reaches \
                     a store/transport/dispatch call before any rights check \
                     (permits/check_rights/require_rights) or checked delegation"
                ),
                suppressed: false,
            });
        }
    }
}

/// The name of the first parameter typed `Capability` / `&Capability`.
fn capability_param(params: &str) -> Option<String> {
    let mut depth = 0i32;
    let mut start = 0usize;
    let bytes = params.as_bytes();
    let mut pieces = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'<' | b'[' => depth += 1,
            b')' | b'>' | b']' => depth -= 1,
            b',' if depth == 0 => {
                pieces.push(&params[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    pieces.push(&params[start..]);
    for piece in pieces {
        let Some((name, ty)) = piece.split_once(':') else {
            continue;
        };
        let ty = ty.trim().trim_start_matches('&').trim();
        if ty == "Capability" || ty.ends_with("::Capability") {
            return Some(name.trim().trim_start_matches("mut ").trim().to_string());
        }
    }
    None
}
