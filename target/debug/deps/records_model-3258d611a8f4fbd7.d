/root/repo/target/debug/deps/records_model-3258d611a8f4fbd7.d: crates/efs/tests/records_model.rs

/root/repo/target/debug/deps/records_model-3258d611a8f4fbd7: crates/efs/tests/records_model.rs

crates/efs/tests/records_model.rs:
