/root/repo/target/debug/deps/eden_bench-3e0ad5432d92d7d0.d: crates/bench/src/lib.rs crates/bench/src/table.rs crates/bench/src/types.rs crates/bench/src/exp_e10_failover.rs crates/bench/src/exp_e11_ablation.rs crates/bench/src/exp_e1_latency.rs crates/bench/src/exp_e2_classes.rs crates/bench/src/exp_e3_checkpoint.rs crates/bench/src/exp_e4_frozen.rs crates/bench/src/exp_e5_mobility.rs crates/bench/src/exp_e6_location.rs crates/bench/src/exp_e7_ethernet.rs crates/bench/src/exp_e8_efs_cc.rs crates/bench/src/exp_e9_replication.rs crates/bench/src/exp_f1_topology.rs crates/bench/src/exp_f2_vprocs.rs Cargo.toml

/root/repo/target/debug/deps/libeden_bench-3e0ad5432d92d7d0.rmeta: crates/bench/src/lib.rs crates/bench/src/table.rs crates/bench/src/types.rs crates/bench/src/exp_e10_failover.rs crates/bench/src/exp_e11_ablation.rs crates/bench/src/exp_e1_latency.rs crates/bench/src/exp_e2_classes.rs crates/bench/src/exp_e3_checkpoint.rs crates/bench/src/exp_e4_frozen.rs crates/bench/src/exp_e5_mobility.rs crates/bench/src/exp_e6_location.rs crates/bench/src/exp_e7_ethernet.rs crates/bench/src/exp_e8_efs_cc.rs crates/bench/src/exp_e9_replication.rs crates/bench/src/exp_f1_topology.rs crates/bench/src/exp_f2_vprocs.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/table.rs:
crates/bench/src/types.rs:
crates/bench/src/exp_e10_failover.rs:
crates/bench/src/exp_e11_ablation.rs:
crates/bench/src/exp_e1_latency.rs:
crates/bench/src/exp_e2_classes.rs:
crates/bench/src/exp_e3_checkpoint.rs:
crates/bench/src/exp_e4_frozen.rs:
crates/bench/src/exp_e5_mobility.rs:
crates/bench/src/exp_e6_location.rs:
crates/bench/src/exp_e7_ethernet.rs:
crates/bench/src/exp_e8_efs_cc.rs:
crates/bench/src/exp_e9_replication.rs:
crates/bench/src/exp_f1_topology.rs:
crates/bench/src/exp_f2_vprocs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
