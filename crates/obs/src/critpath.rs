//! Critical-path latency attribution: stitch one trace's spans into a
//! per-invocation breakdown of where the wall-clock went.
//!
//! Every asynchronous hand-off an invocation crosses records a span
//! tagged with a [`stage`](crate::trace::stage) constant — vproc queue
//! residency, transport send-queue wait, dial time, directory lookups,
//! dispatch, execute. This module merges the spans of a trace (scraped
//! from any number of nodes) and buckets the root span's duration into
//! *named stages*: queueing on the caller's node vs. the transport
//! queue vs. the wire vs. queueing on the serving node vs. execution.
//! Time inside a `client-send` span not covered by any tagged span is
//! derived as wire time, so the report accounts for (nearly) the whole
//! end-to-end latency instead of only the instrumented parts.

use std::collections::BTreeMap;

use crate::registry::ObsRegistry;
use crate::trace::{stage, SpanRecord};

/// Canonical stage order for reports (callers side first, then the
/// journey out and back).
pub const STAGE_ORDER: &[&str] = &[
    "local-queue",
    "directory",
    "dispatch",
    "xport-queue",
    "dial",
    "write",
    "wire",
    "remote-queue",
    "remote-dispatch",
    "execute",
    "untracked",
];

/// One trace's latency, bucketed by named stage.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// The stitched trace.
    pub trace_id: u64,
    /// Node that recorded the root span (the caller).
    pub root_node: u16,
    /// Root-span name (normally `invoke`).
    pub root_name: &'static str,
    /// End-to-end wall clock of the root span, nanoseconds.
    pub total_ns: u64,
    /// Stage name → attributed nanoseconds (union-deduped per stage;
    /// `untracked` is the residue no stage claims).
    pub stages: BTreeMap<&'static str, u64>,
    /// Nanoseconds covered by *named* stages (everything but
    /// `untracked`).
    pub accounted_ns: u64,
    /// Spans stitched into this report.
    pub span_count: usize,
}

impl CriticalPath {
    /// Fraction of the end-to-end latency the named stages explain
    /// (0.0–1.0; 1.0 when `total_ns` is 0).
    pub fn coverage(&self) -> f64 {
        if self.total_ns == 0 {
            1.0
        } else {
            self.accounted_ns as f64 / self.total_ns as f64
        }
    }

    /// Stages in canonical order, skipping empty ones.
    pub fn ordered_stages(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = STAGE_ORDER
            .iter()
            .filter_map(|s| self.stages.get(s).map(|ns| (*s, *ns)))
            .filter(|(_, ns)| *ns > 0)
            .collect();
        // Any stage outside the canonical list still renders (appended).
        for (s, ns) in &self.stages {
            if *ns > 0 && !STAGE_ORDER.contains(s) {
                out.push((s, *ns));
            }
        }
        out
    }

    /// The stage with the most attributed time (`None` for an empty
    /// report). `untracked` is excluded — it is a residue, not a stage.
    pub fn dominant_stage(&self) -> Option<(&'static str, u64)> {
        self.stages
            .iter()
            .filter(|(s, _)| **s != "untracked")
            .max_by_key(|(_, ns)| **ns)
            .map(|(s, ns)| (*s, *ns))
    }

    /// Renders the breakdown as an aligned text table.
    pub fn text_table(&self) -> String {
        let mut out = format!(
            "critical path — trace {:#018x} ({} spans, root {} on node {})\n",
            self.trace_id, self.span_count, self.root_name, self.root_node
        );
        out.push_str(&format!(
            "{:<16} {:>12} {:>8}\n",
            "stage", "time (µs)", "share"
        ));
        for (name, ns) in self.ordered_stages() {
            let share = if self.total_ns == 0 {
                0.0
            } else {
                ns as f64 / self.total_ns as f64 * 100.0
            };
            out.push_str(&format!(
                "{name:<16} {:>12.1} {share:>7.1}%\n",
                ns as f64 / 1_000.0
            ));
        }
        out.push_str(&format!(
            "{:<16} {:>12.1} {:>7.1}%  ({:.1}% accounted by named stages)\n",
            "total",
            self.total_ns as f64 / 1_000.0,
            100.0,
            self.coverage() * 100.0
        ));
        out
    }

    /// Feeds this breakdown into `critpath.<stage>` histograms on `reg`,
    /// so the per-stage p99 series accumulate across invocations.
    pub fn record_stage_histograms(&self, reg: &ObsRegistry) {
        for (name, ns) in &self.stages {
            if *ns > 0 {
                reg.histogram(&format!("critpath.{name}")).record(*ns);
            }
        }
        if self.total_ns > 0 {
            reg.histogram("critpath.total").record(self.total_ns);
        }
    }
}

/// Clips `(start, end)` to `window` and returns it when non-empty.
fn clip(start: u64, end: u64, window: (u64, u64)) -> Option<(u64, u64)> {
    let s = start.max(window.0);
    let e = end.min(window.1);
    (e > s).then_some((s, e))
}

/// Total length of the union of `intervals` (sorted or not).
fn union_len(intervals: &mut [(u64, u64)]) -> u64 {
    intervals.sort_unstable();
    let mut covered = 0u64;
    let mut cursor = 0u64;
    for &(s, e) in intervals.iter() {
        let s = s.max(cursor);
        if e > s {
            covered += e - s;
            cursor = e;
        }
        cursor = cursor.max(e);
    }
    covered
}

/// Stitches `spans` belonging to `trace_id` into a [`CriticalPath`].
///
/// Returns `None` when the trace has no spans. The root is the span
/// with `parent_span == 0` (earliest start wins on ties); spans wholly
/// outside the root window are ignored. Stage attribution localizes
/// queueing by node: a `vproc-queue`/`dispatch` span on the root's node
/// is `local-queue`/`dispatch`, on any other node `remote-queue`/
/// `remote-dispatch`. Time inside a `client-send` span covered by no
/// tagged span is derived as `wire`.
pub fn critical_path(spans: &[SpanRecord], trace_id: u64) -> Option<CriticalPath> {
    let mine: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
    let root = mine
        .iter()
        .copied()
        .filter(|s| s.parent_span == 0)
        .min_by_key(|s| s.start_ns)
        .or_else(|| mine.iter().copied().min_by_key(|s| s.start_ns))?;
    let window = (root.start_ns, root.end_ns);
    let total_ns = root.end_ns.saturating_sub(root.start_ns);

    // Tagged intervals, localized by node relative to the root.
    let mut per_stage: BTreeMap<&'static str, Vec<(u64, u64)>> = BTreeMap::new();
    let mut tagged_all: Vec<(u64, u64)> = Vec::new();
    for s in &mine {
        if s.stage.is_empty() {
            continue;
        }
        let Some(iv) = clip(s.start_ns, s.end_ns, window) else {
            continue;
        };
        let label: &'static str = match s.stage {
            stage::VPROC_QUEUE => {
                if s.node == root.node {
                    "local-queue"
                } else {
                    "remote-queue"
                }
            }
            stage::DISPATCH => {
                if s.node == root.node {
                    "dispatch"
                } else {
                    "remote-dispatch"
                }
            }
            stage::XPORT_QUEUE => "xport-queue",
            stage::DIAL => "dial",
            stage::WRITE => "write",
            stage::DIRECTORY => "directory",
            stage::EXECUTE => "execute",
            stage::WIRE => "wire",
            other => other,
        };
        per_stage.entry(label).or_default().push(iv);
        tagged_all.push(iv);
    }

    // Derived wire time: the part of each client-send span no tagged
    // span explains — the frame is on the wire or in the receive path.
    let mut derived_wire = 0u64;
    for s in &mine {
        if s.name != "client-send" {
            continue;
        }
        let Some((cs, ce)) = clip(s.start_ns, s.end_ns, window) else {
            continue;
        };
        let mut inside: Vec<(u64, u64)> = tagged_all
            .iter()
            .filter_map(|&(a, b)| clip(a, b, (cs, ce)))
            .collect();
        let covered = union_len(&mut inside);
        derived_wire += (ce - cs).saturating_sub(covered);
    }

    let mut stages: BTreeMap<&'static str, u64> = per_stage
        .into_iter()
        .map(|(label, mut ivs)| (label, union_len(&mut ivs)))
        .collect();
    if derived_wire > 0 {
        *stages.entry("wire").or_insert(0) += derived_wire;
    }

    let accounted_ns = (union_len(&mut tagged_all) + derived_wire).min(total_ns);
    let untracked = total_ns.saturating_sub(accounted_ns);
    if untracked > 0 {
        stages.insert("untracked", untracked);
    }

    Some(CriticalPath {
        trace_id,
        root_node: root.node,
        root_name: root.name,
        total_ns,
        stages,
        accounted_ns,
        span_count: mine.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::stage;

    fn span(
        id: u64,
        parent: u64,
        node: u16,
        name: &'static str,
        stage: &'static str,
        start: u64,
        end: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace_id: 7,
            span_id: id,
            parent_span: parent,
            node,
            name,
            stage,
            start_ns: start,
            end_ns: end,
        }
    }

    /// A full cross-node invocation: 100 µs end to end, every stage
    /// instrumented, with wire time appearing only as uncovered
    /// client-send gaps.
    fn cross_node_trace() -> Vec<SpanRecord> {
        vec![
            span(1, 0, 0, "invoke", stage::NONE, 0, 100_000),
            // 10 µs waiting in the caller's vproc queue.
            span(2, 1, 0, "vproc-wait", stage::VPROC_QUEUE, 0, 10_000),
            // 5 µs directory lookup.
            span(3, 1, 0, "dir-query", stage::DIRECTORY, 10_000, 15_000),
            span(4, 1, 0, "client-send", stage::NONE, 15_000, 95_000),
            // 8 µs in the transport queue, 2 µs batch write.
            span(5, 4, 0, "xport-queue", stage::XPORT_QUEUE, 15_000, 23_000),
            span(6, 4, 0, "batch-write", stage::WRITE, 23_000, 25_000),
            // Remote side: 20 µs queued, 40 µs executing.
            span(7, 4, 1, "vproc-wait", stage::VPROC_QUEUE, 30_000, 50_000),
            span(8, 4, 1, "dispatch", stage::DISPATCH, 50_000, 52_000),
            span(9, 8, 1, "execute", stage::EXECUTE, 52_000, 92_000),
        ]
    }

    #[test]
    fn stages_are_localized_and_summed() {
        let cp = critical_path(&cross_node_trace(), 7).expect("report");
        assert_eq!(cp.total_ns, 100_000);
        assert_eq!(cp.stages["local-queue"], 10_000);
        assert_eq!(cp.stages["directory"], 5_000);
        assert_eq!(cp.stages["xport-queue"], 8_000);
        assert_eq!(cp.stages["write"], 2_000);
        assert_eq!(cp.stages["remote-queue"], 20_000);
        assert_eq!(cp.stages["remote-dispatch"], 2_000);
        assert_eq!(cp.stages["execute"], 40_000);
        // client-send is 80 µs; tagged spans inside cover 72 µs; the
        // remaining 8 µs derive as wire.
        assert_eq!(cp.stages["wire"], 8_000);
        // 10+5+8+2+20+2+40+8 = 95 µs of 100 µs.
        assert_eq!(cp.accounted_ns, 95_000);
        assert!(cp.coverage() >= 0.95, "coverage {}", cp.coverage());
        assert_eq!(cp.stages["untracked"], 5_000);
        assert_eq!(cp.dominant_stage(), Some(("execute", 40_000)));
    }

    #[test]
    fn overlapping_spans_do_not_double_count() {
        let spans = vec![
            span(1, 0, 0, "invoke", stage::NONE, 0, 100),
            span(2, 1, 0, "vproc-wait", stage::VPROC_QUEUE, 0, 60),
            span(3, 1, 0, "vproc-wait", stage::VPROC_QUEUE, 40, 80),
        ];
        let cp = critical_path(&spans, 7).expect("report");
        assert_eq!(cp.stages["local-queue"], 80);
        assert_eq!(cp.accounted_ns, 80);
    }

    #[test]
    fn spans_outside_the_root_window_are_clipped() {
        let spans = vec![
            span(1, 0, 0, "invoke", stage::NONE, 100, 200),
            span(2, 1, 0, "vproc-wait", stage::VPROC_QUEUE, 50, 150),
            span(3, 1, 0, "stray", stage::EXECUTE, 300, 400),
        ];
        let cp = critical_path(&spans, 7).expect("report");
        assert_eq!(cp.stages["local-queue"], 50);
        assert!(!cp.stages.contains_key("execute"));
    }

    #[test]
    fn empty_trace_is_none_and_text_renders() {
        assert!(critical_path(&[], 7).is_none());
        let cp = critical_path(&cross_node_trace(), 7).unwrap();
        let table = cp.text_table();
        for needle in ["local-queue", "wire", "execute", "total", "% accounted"] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
        // Canonical row order: local-queue before execute.
        assert!(table.find("local-queue").unwrap() < table.find("execute").unwrap());
    }

    #[test]
    fn stage_histograms_accumulate_p99_series() {
        let reg = ObsRegistry::new(0);
        let cp = critical_path(&cross_node_trace(), 7).unwrap();
        cp.record_stage_histograms(&reg);
        cp.record_stage_histograms(&reg);
        let hists = reg.histograms_snapshot();
        assert_eq!(hists["critpath.execute"].count, 2);
        assert_eq!(hists["critpath.wire"].count, 2);
        assert_eq!(hists["critpath.total"].count, 2);
        assert!(hists["critpath.execute"].percentile(99.0) >= 39_000);
    }
}
