/root/repo/target/release/examples/span_tree_capture-0e171e9558281c54.d: examples/span_tree_capture.rs

/root/repo/target/release/examples/span_tree_capture-0e171e9558281c54: examples/span_tree_capture.rs

examples/span_tree_capture.rs:
