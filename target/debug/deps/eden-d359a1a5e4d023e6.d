/root/repo/target/debug/deps/eden-d359a1a5e4d023e6.d: src/lib.rs

/root/repo/target/debug/deps/libeden-d359a1a5e4d023e6.rlib: src/lib.rs

/root/repo/target/debug/deps/libeden-d359a1a5e4d023e6.rmeta: src/lib.rs

src/lib.rs:
