/root/repo/target/debug/deps/eden_capability-54df8844dca411e1.d: crates/capability/src/lib.rs crates/capability/src/clist.rs crates/capability/src/name.rs crates/capability/src/rights.rs

/root/repo/target/debug/deps/libeden_capability-54df8844dca411e1.rlib: crates/capability/src/lib.rs crates/capability/src/clist.rs crates/capability/src/name.rs crates/capability/src/rights.rs

/root/repo/target/debug/deps/libeden_capability-54df8844dca411e1.rmeta: crates/capability/src/lib.rs crates/capability/src/clist.rs crates/capability/src/name.rs crates/capability/src/rights.rs

crates/capability/src/lib.rs:
crates/capability/src/clist.rs:
crates/capability/src/name.rs:
crates/capability/src/rights.rs:
