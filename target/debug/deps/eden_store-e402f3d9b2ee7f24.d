/root/repo/target/debug/deps/eden_store-e402f3d9b2ee7f24.d: crates/store/src/lib.rs crates/store/src/crc.rs crates/store/src/disk.rs crates/store/src/faulty.rs crates/store/src/mem.rs crates/store/src/replicated.rs

/root/repo/target/debug/deps/libeden_store-e402f3d9b2ee7f24.rlib: crates/store/src/lib.rs crates/store/src/crc.rs crates/store/src/disk.rs crates/store/src/faulty.rs crates/store/src/mem.rs crates/store/src/replicated.rs

/root/repo/target/debug/deps/libeden_store-e402f3d9b2ee7f24.rmeta: crates/store/src/lib.rs crates/store/src/crc.rs crates/store/src/disk.rs crates/store/src/faulty.rs crates/store/src/mem.rs crates/store/src/replicated.rs

crates/store/src/lib.rs:
crates/store/src/crc.rs:
crates/store/src/disk.rs:
crates/store/src/faulty.rs:
crates/store/src/mem.rs:
crates/store/src/replicated.rs:
