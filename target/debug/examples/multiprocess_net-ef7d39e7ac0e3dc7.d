/root/repo/target/debug/examples/multiprocess_net-ef7d39e7ac0e3dc7.d: examples/multiprocess_net.rs

/root/repo/target/debug/examples/multiprocess_net-ef7d39e7ac0e3dc7: examples/multiprocess_net.rs

examples/multiprocess_net.rs:
