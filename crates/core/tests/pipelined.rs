//! Client invocation pipelining (`PipelinedClient`): many calls in
//! flight on one connection, replies harvested out of order by
//! invocation id, with the at-most-once contract intact even when a
//! lossy network forces pipelined retransmissions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eden_capability::Rights;
use eden_kernel::{Cluster, NodeConfig, OpCtx, OpError, OpResult, TypeManager, TypeSpec};
use eden_transport::MeshOptions;
use eden_wire::{Status, Value};

/// Counts *executions* (not replies) and can hold per-call, so tests
/// can overlap invocations and detect duplicate dispatch.
struct PipeCounted {
    executions: Arc<AtomicU64>,
}

impl TypeManager for PipeCounted {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new("pipe.counted")
            .class("all", 8)
            .op("bump", "all", Rights::EXECUTE)
            .op("sleep", "all", Rights::EXECUTE)
    }

    fn dispatch(&self, _ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "bump" => {
                let n = self.executions.fetch_add(1, Ordering::SeqCst) + 1;
                Ok(vec![Value::U64(n)])
            }
            "sleep" => {
                let Some(Value::U64(ms)) = args.first() else {
                    return Err(OpError::type_error("sleep(ms: u64)"));
                };
                std::thread::sleep(Duration::from_millis(*ms));
                Ok(vec![Value::U64(*ms)])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

fn cluster(mesh: MeshOptions, config: NodeConfig, executions: Arc<AtomicU64>) -> Cluster {
    Cluster::builder()
        .nodes(2)
        .mesh(mesh)
        .node_config(config)
        .register(move || {
            Box::new(PipeCounted {
                executions: executions.clone(),
            })
        })
        .build()
}

#[test]
fn replies_complete_out_of_order() {
    let executions = Arc::new(AtomicU64::new(0));
    let cluster = cluster(
        MeshOptions::default(),
        NodeConfig::default(),
        executions.clone(),
    );
    let cap = cluster
        .node(0)
        .create_object("pipe.counted", &[])
        .expect("create");
    let client = cluster.node(1).pipelined_client(cap);

    // A slow call goes out first, a fast one second; both are on the
    // wire before either reply. The fast call must complete while the
    // slow one is still executing — replies rendezvous by inv_id, not
    // by issue order.
    let slow = client.call("sleep", &[Value::U64(400)]).expect("send slow");
    let fast = client.call("sleep", &[Value::U64(10)]).expect("send fast");
    let start = Instant::now();
    let (status, results) = fast.wait(Duration::from_secs(10));
    let fast_latency = start.elapsed();
    assert_eq!(status, Status::Ok);
    assert_eq!(results, vec![Value::U64(10)]);
    assert!(
        fast_latency < Duration::from_millis(300),
        "fast call waited on the slow one: {fast_latency:?}"
    );
    let (status, results) = slow.wait(Duration::from_secs(10));
    assert_eq!(status, Status::Ok);
    assert_eq!(results, vec![Value::U64(400)]);

    assert_eq!(executions.load(Ordering::SeqCst), 0, "sleep must not bump");
    cluster.shutdown();
}

#[test]
fn pipelined_retransmissions_execute_each_call_once() {
    let executions = Arc::new(AtomicU64::new(0));
    // A quarter of all frames vanish, and the retransmit interval is
    // tiny, so the serving kernel sees a pipelined burst *plus* plenty
    // of duplicates of it — the at-most-once bookkeeping must keep
    // exactly one execution per inv_id.
    let cluster = cluster(
        MeshOptions {
            loss_probability: 0.25,
            seed: 11,
            ..Default::default()
        },
        NodeConfig {
            retransmit_interval: Duration::from_millis(20),
            default_invoke_timeout: Duration::from_secs(30),
            remote_try_timeout: Duration::from_secs(10),
            ..Default::default()
        },
        executions.clone(),
    );
    let cap = cluster
        .node(0)
        .create_object("pipe.counted", &[])
        .expect("create");
    let client = cluster.node(1).pipelined_client(cap);

    const CALLS: u64 = 32;
    let pending: Vec<_> = (0..CALLS)
        .map(|i| {
            client
                .call("bump", &[])
                .unwrap_or_else(|e| panic!("send {i} failed: {e:?}"))
        })
        .collect();

    // Harvest in *reverse* issue order: every completion is
    // out-of-order relative to the wire, and late waits replay any
    // lost replies from the server's cache.
    let mut ordinals: Vec<u64> = pending
        .into_iter()
        .rev()
        .map(|p| {
            let (status, results) = p.wait(Duration::from_secs(30));
            assert_eq!(status, Status::Ok);
            match results[0] {
                Value::U64(n) => n,
                ref other => panic!("unexpected result {other:?}"),
            }
        })
        .collect();
    ordinals.sort_unstable();
    assert_eq!(
        ordinals,
        (1..=CALLS).collect::<Vec<u64>>(),
        "each pipelined call executed exactly once, despite duplicates"
    );
    assert_eq!(executions.load(Ordering::SeqCst), CALLS);
    cluster.shutdown();
}

#[test]
fn dropped_pending_call_releases_its_waiter() {
    let executions = Arc::new(AtomicU64::new(0));
    let cluster = cluster(MeshOptions::default(), NodeConfig::default(), executions);
    let cap = cluster
        .node(0)
        .create_object("pipe.counted", &[])
        .expect("create");
    let client = cluster.node(1).pipelined_client(cap);

    // Issue and abandon: the reply (if any) is discarded, and the next
    // call still works — no leaked waiter wedges the pending table.
    drop(client.call("bump", &[]).expect("send"));
    let (status, _) = client.call_sync("bump", &[]);
    assert_eq!(status, Status::Ok);
    cluster.shutdown();
}
