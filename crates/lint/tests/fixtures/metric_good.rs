// Fixture: legitimate atomics and registry-routed metrics (scanned as
// crates/core/src/telemetry.rs). Structural atomics — id generators,
// shutdown flags, progress markers, versions — are not metrics; real
// telemetry goes through the obs registry.

use std::sync::atomic::{AtomicBool, AtomicU64};

struct Kernel {
    next_id: AtomicU64,
    shutdown: AtomicBool,
    progress_ns: Arc<std::sync::atomic::AtomicU64>,
    version: AtomicU64,
}

fn record(obs: &ObsRegistry) {
    obs.counter("invoke.sent").inc();
    obs.gauge("coord.queue_depth").add(1);
    obs.histogram("invoke.latency").record(42);
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicU64;

    // Test code is exempt even with a metric-shaped name.
    static TEST_HITS: AtomicU64 = AtomicU64::new(0);
}
