// Fixture: a consistent wire schema (scanned as
// crates/wire/src/message.rs). Tags, variants, impl arms and the Value
// codec pair all agree.

pub const TAG_PING: u8 = 1;
pub const TAG_PONG: u8 = 2;

pub enum Message {
    Ping,
    Pong,
}

impl WireEncode for Message {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Message::Ping => out.put_u8(TAG_PING),
            Message::Pong => out.put_u8(TAG_PONG),
        }
    }
}

impl WireDecode for Message {
    fn decode(tag: u8) -> Option<Message> {
        match tag {
            TAG_PING => Some(Message::Ping),
            TAG_PONG => Some(Message::Pong),
            other => None,
        }
    }
}

pub fn message_to_value(m: &Message) -> Value {
    match m {
        Message::Ping => Value::U64(0),
        Message::Pong => Value::U64(1),
    }
}

pub fn message_from_value(v: &Value) -> Option<Message> {
    match v {
        Value::U64(0) => Some(Message::Ping),
        Value::U64(1) => Some(Message::Pong),
        other => None,
    }
}
