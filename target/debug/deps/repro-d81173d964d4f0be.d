/root/repo/target/debug/deps/repro-d81173d964d4f0be.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-d81173d964d4f0be: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
