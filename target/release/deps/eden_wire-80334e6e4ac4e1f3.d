/root/repo/target/release/deps/eden_wire-80334e6e4ac4e1f3.d: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/image.rs crates/wire/src/message.rs crates/wire/src/obs_codec.rs crates/wire/src/status.rs crates/wire/src/value.rs

/root/repo/target/release/deps/libeden_wire-80334e6e4ac4e1f3.rlib: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/image.rs crates/wire/src/message.rs crates/wire/src/obs_codec.rs crates/wire/src/status.rs crates/wire/src/value.rs

/root/repo/target/release/deps/libeden_wire-80334e6e4ac4e1f3.rmeta: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/image.rs crates/wire/src/message.rs crates/wire/src/obs_codec.rs crates/wire/src/status.rs crates/wire/src/value.rs

crates/wire/src/lib.rs:
crates/wire/src/codec.rs:
crates/wire/src/image.rs:
crates/wire/src/message.rs:
crates/wire/src/obs_codec.rs:
crates/wire/src/status.rs:
crates/wire/src/value.rs:
