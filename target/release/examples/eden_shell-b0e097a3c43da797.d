/root/repo/target/release/examples/eden_shell-b0e097a3c43da797.d: examples/eden_shell.rs

/root/repo/target/release/examples/eden_shell-b0e097a3c43da797: examples/eden_shell.rs

examples/eden_shell.rs:
