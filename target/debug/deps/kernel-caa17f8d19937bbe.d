/root/repo/target/debug/deps/kernel-caa17f8d19937bbe.d: crates/core/tests/kernel.rs

/root/repo/target/debug/deps/kernel-caa17f8d19937bbe: crates/core/tests/kernel.rs

crates/core/tests/kernel.rs:
