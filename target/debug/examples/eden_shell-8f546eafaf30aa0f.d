/root/repo/target/debug/examples/eden_shell-8f546eafaf30aa0f.d: examples/eden_shell.rs Cargo.toml

/root/repo/target/debug/examples/libeden_shell-8f546eafaf30aa0f.rmeta: examples/eden_shell.rs Cargo.toml

examples/eden_shell.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
