/root/repo/target/debug/deps/eden_kernel-d55757f018d0b749.d: crates/core/src/lib.rs crates/core/src/behavior.rs crates/core/src/cluster.rs crates/core/src/ctx.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/node.rs crates/core/src/object.rs crates/core/src/policy.rs crates/core/src/repr.rs crates/core/src/sync.rs crates/core/src/types.rs crates/core/src/waiter.rs

/root/repo/target/debug/deps/libeden_kernel-d55757f018d0b749.rlib: crates/core/src/lib.rs crates/core/src/behavior.rs crates/core/src/cluster.rs crates/core/src/ctx.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/node.rs crates/core/src/object.rs crates/core/src/policy.rs crates/core/src/repr.rs crates/core/src/sync.rs crates/core/src/types.rs crates/core/src/waiter.rs

/root/repo/target/debug/deps/libeden_kernel-d55757f018d0b749.rmeta: crates/core/src/lib.rs crates/core/src/behavior.rs crates/core/src/cluster.rs crates/core/src/ctx.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/node.rs crates/core/src/object.rs crates/core/src/policy.rs crates/core/src/repr.rs crates/core/src/sync.rs crates/core/src/types.rs crates/core/src/waiter.rs

crates/core/src/lib.rs:
crates/core/src/behavior.rs:
crates/core/src/cluster.rs:
crates/core/src/ctx.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/node.rs:
crates/core/src/object.rs:
crates/core/src/policy.rs:
crates/core/src/repr.rs:
crates/core/src/sync.rs:
crates/core/src/types.rs:
crates/core/src/waiter.rs:
