//! Regenerates every experiment table in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p eden-bench --bin repro --release            # everything
//! cargo run -p eden-bench --bin repro --release -- e7 e8   # a subset
//! ```

use eden_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|s| s.to_lowercase()).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id || a == "all");

    println!("eden reproduction — experiment tables (see EXPERIMENTS.md)\n");

    if want("f1") {
        exp_f1_topology::run().print();
    }
    if want("f2") {
        exp_f2_vprocs::run().print();
    }
    if want("e1") {
        exp_e1_latency::run().print();
    }
    if want("e2") {
        exp_e2_classes::run().print();
    }
    if want("e3") {
        exp_e3_checkpoint::run().print();
    }
    if want("e4") {
        exp_e4_frozen::run().print();
    }
    if want("e5") {
        exp_e5_mobility::run().print();
    }
    if want("e6") {
        exp_e6_location::run().print();
    }
    if want("e7") {
        for table in exp_e7_ethernet::run() {
            table.print();
        }
    }
    if want("e8") {
        exp_e8_efs_cc::run().print();
    }
    if want("e9") {
        exp_e9_replication::run().print();
    }
    if want("e10") {
        exp_e10_failover::run().print();
    }
    if want("e11") {
        exp_e11_ablation::run().print();
    }
    if want("e12") {
        exp_e12_fanout::run().print();
    }
    if want("e13") {
        exp_e13_transport::run().print();
    }
    if want("e14") {
        exp_e14_directory::run().print();
    }
    if want("e16") {
        exp_e16_pipeline::run().print();
    }
}
