//! Cluster-wide telemetry export through the monitor object.
//!
//! The monitor holds one read-only capability per node and gathers
//! every kernel's metrics, spans and flight events purely through
//! Eden invocation — these tests never hand it a registry back door —
//! then renders them as Prometheus text, Chrome-trace JSON and JSONL.

use std::collections::{BTreeMap, HashSet};
use std::time::Duration;

use eden::apps::{with_apps, MonitorClient};
use eden::capability::{NodeId, Rights};
use eden::kernel::{node_object_cap, Cluster, EdenError};
use eden::obs::{parse_jsonl_line, parse_prometheus_line, validate_json, SpanRecord};
use eden::wire::{obs_codec, Status, Value};

fn cluster3() -> Cluster {
    with_apps(Cluster::builder().nodes(3)).build()
}

/// Some invocation traffic touching every node: local and remote
/// invocations against one counter, so several kernels accumulate
/// `invoke.local` / `invoke.remote` histogram samples.
fn warm(c: &Cluster) -> eden::capability::Capability {
    let cap = c.node(1).create_object("counter", &[]).unwrap();
    for i in 0..3 {
        c.node(0).invoke(cap, "add", &[Value::I64(i)]).unwrap();
        c.node(1).invoke(cap, "add", &[Value::I64(i)]).unwrap();
        c.node(2).invoke(cap, "get", &[]).unwrap();
    }
    cap
}

#[test]
fn monitor_scrapes_every_node_and_merges_histograms() {
    let c = cluster3();
    warm(&c);

    let monitor = MonitorClient::for_cluster(&c).expect("create monitor");
    let scrape = monitor.scrape_metrics().expect("scrape");

    assert!(scrape.down.is_empty(), "all nodes up, none down");
    let labels: HashSet<&str> = scrape.per_node.iter().map(|m| m.node.as_str()).collect();
    assert_eq!(labels, HashSet::from(["0", "1", "2"]));
    assert_eq!(scrape.merged.node, "cluster");

    // Every node executed or issued invocations, so each contributes
    // at least one latency histogram, and the cluster merge must hold
    // exactly the sum of the per-node counts for every series.
    let mut want: BTreeMap<String, u64> = BTreeMap::new();
    for m in &scrape.per_node {
        assert!(
            m.histograms.keys().any(|k| k.starts_with("invoke.")),
            "node {} has no invocation histogram",
            m.node
        );
        for (name, h) in &m.histograms {
            *want.entry(name.clone()).or_insert(0) += h.count;
        }
    }
    for (name, total) in want {
        assert_eq!(
            scrape.merged.histograms[&name].count, total,
            "merged count for {name}"
        );
    }
}

#[test]
fn prometheus_export_has_per_node_and_cluster_series() {
    let c = cluster3();
    warm(&c);

    let monitor = MonitorClient::for_cluster(&c).expect("create monitor");
    let text = monitor.prometheus().expect("prometheus");

    // Histogram series for individual nodes AND the merged cluster view.
    assert!(
        text.contains("eden_invoke_local_bucket{node=\"1\""),
        "{text}"
    );
    assert!(text.contains("eden_invoke_local_bucket{node=\"cluster\""));
    assert!(text.contains("eden_invoke_remote_count{node=\"cluster\"}"));

    // The whole exposition re-parses line by line.
    let mut samples = 0;
    for line in text.lines().filter(|l| !l.is_empty()) {
        if line.starts_with('#') {
            assert!(line.starts_with("# TYPE "), "unexpected comment: {line}");
            continue;
        }
        let s = parse_prometheus_line(line)
            .unwrap_or_else(|| panic!("unparseable exposition line: {line}"));
        assert!(s.name.starts_with("eden_"));
        samples += 1;
    }
    assert!(samples > 50, "expected a rich exposition, got {samples}");
}

#[test]
fn chrome_trace_of_a_cross_node_invocation_is_valid_and_nested() {
    let c = cluster3();
    let cap = c.node(1).create_object("counter", &[]).unwrap();
    c.node(2).invoke(cap, "add", &[Value::I64(9)]).unwrap();

    let monitor = MonitorClient::for_cluster(&c).expect("create monitor");
    let spans = monitor.scrape_spans(None).expect("scrape spans");

    // Find the cross-node trace: grouped by trace id, it must link
    // client-send → net → dispatch → execute under one root.
    let mut by_trace: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in &spans {
        by_trace.entry(s.trace_id).or_default().push(s);
    }
    let (tid, trace) = by_trace
        .into_iter()
        .find(|(_, spans)| {
            spans.len() >= 5 && spans.iter().map(|s| s.node).collect::<HashSet<_>>().len() >= 2
        })
        .expect("a cross-node trace with at least 5 spans");
    let ids: HashSet<u64> = trace.iter().map(|s| s.span_id).collect();
    let roots = trace.iter().filter(|s| s.parent_span == 0).count();
    assert_eq!(roots, 1, "exactly one root span");
    for s in &trace {
        assert!(
            s.parent_span == 0 || ids.contains(&s.parent_span),
            "span {} has dangling parent {}",
            s.span_id,
            s.parent_span
        );
    }

    let json = monitor.chrome_trace(Some(tid)).expect("chrome trace");
    validate_json(&json).expect("exported chrome trace is valid JSON");
    assert_eq!(
        json.matches("\"ph\":\"X\"").count(),
        trace.len(),
        "one complete event per span"
    );
    assert!(json.contains("\"name\":\"client-send\""));
    assert!(json.contains("\"name\":\"dispatch\""));
}

#[test]
fn monitor_stitches_a_critical_path_across_nodes() {
    let c = cluster3();
    let cap = c.node(1).create_object("counter", &[]).unwrap();
    c.node(2).invoke(cap, "add", &[Value::I64(3)]).unwrap();

    let monitor = MonitorClient::for_cluster(&c).expect("create monitor");
    let root = c
        .node(2)
        .obs()
        .traces()
        .spans()
        .into_iter()
        .find(|s| s.name == "invoke" && s.parent_span == 0)
        .expect("client root span");

    let cp = monitor
        .critical_path(root.trace_id)
        .expect("scrape")
        .expect("a stitched report");
    assert_eq!(cp.trace_id, root.trace_id);
    assert_eq!(cp.root_node, 2);
    assert!(cp.span_count >= 4, "got {} spans", cp.span_count);
    assert!(cp.total_ns > 0);
    // A channel-mesh invocation completes in microseconds, so fixed
    // per-invocation overheads (slot setup, reply decode) weigh far
    // more than on any real path; the >=95% acceptance bar is asserted
    // where it matters, over TCP with an injected stall (tests/critpath.rs).
    assert!(
        cp.coverage() >= 0.70,
        "coverage {:.1}%:\n{}",
        cp.coverage() * 100.0,
        cp.text_table()
    );
    // Execution happened on node 1, so remote stages must appear.
    assert!(cp.stages.contains_key("execute"), "stages: {:?}", cp.stages);
    let table = cp.text_table();
    assert!(
        table.contains("execute") && table.contains("total"),
        "{table}"
    );

    // An unknown trace id scrapes cleanly to "no report".
    assert!(monitor
        .critical_path(0xdead_beef)
        .expect("scrape")
        .is_none());
}

#[test]
fn monitor_scrapes_watchdog_state_from_every_node() {
    let c = cluster3();
    warm(&c);

    let monitor = MonitorClient::for_cluster(&c).expect("create monitor");
    let scrape = monitor.scrape_watchdog().expect("scrape watchdog");
    assert!(scrape.down.is_empty());
    let nodes: Vec<u16> = scrape.per_node.iter().map(|r| r.node).collect();
    assert_eq!(nodes, vec![0, 1, 2]);
    // A healthy cluster: no stalls, no snapshots.
    for row in &scrape.per_node {
        assert_eq!(row.stalls, 0, "node {} stalled: {}", row.node, row.snapshot);
        assert!(row.snapshot.is_empty());
    }

    c.kill(2);
    let scrape = monitor.scrape_watchdog().expect("partial scrape");
    assert_eq!(scrape.down, vec![2], "killed node reported as down");
    assert_eq!(scrape.per_node.len(), 2);
}

#[test]
fn flight_events_merge_into_one_totally_ordered_stream() {
    let c = cluster3();
    let cap = warm(&c);

    // A move generates events on two different kernels.
    c.node(1).move_object(cap, NodeId(2)).expect("move");
    c.node(0)
        .invoke_with_timeout(cap, "get", &[], Duration::from_secs(10))
        .expect("post-move get");

    let monitor = MonitorClient::for_cluster(&c).expect("create monitor");
    let events = monitor.scrape_events().expect("scrape events");
    assert!(events.len() >= 2, "move must leave flight events");

    let nodes: HashSet<u16> = events.iter().map(|(n, _)| *n).collect();
    assert!(nodes.len() >= 2, "events from more than one node");
    for pair in events.windows(2) {
        assert!(
            pair[0].1.seq < pair[1].1.seq,
            "merged stream must be strictly ordered by the global seq"
        );
    }

    // The JSONL export round-trips line by line.
    let jsonl = monitor.events_jsonl().expect("jsonl");
    let parsed: Vec<_> = jsonl
        .lines()
        .map(|l| parse_jsonl_line(l).unwrap_or_else(|| panic!("unparseable JSONL line: {l}")))
        .collect();
    assert_eq!(parsed.len(), events.len());
    for ((n, e), (pn, pe)) in events.iter().zip(&parsed) {
        assert_eq!(n, pn);
        assert_eq!(e.seq, pe.seq);
    }
}

#[test]
fn node_telemetry_object_honors_capability_rights() {
    let c = cluster3();
    warm(&c);

    // A direct invocation on the reserved telemetry object, from a
    // *different* node: routed like any remote invocation.
    let reply = c
        .node(2)
        .invoke(node_object_cap(NodeId(0)), "get_metrics", &[])
        .expect("remote telemetry scrape");
    let metrics = reply
        .first()
        .and_then(obs_codec::metrics_from_value)
        .expect("decodable metrics");
    assert_eq!(metrics.node, "0");

    // Without READ the scrape is refused — locally and remotely.
    let no_read = node_object_cap(NodeId(0)).restrict(Rights::WRITE);
    for node in [0, 2] {
        let err = c
            .node(node)
            .invoke(no_read, "get_metrics", &[])
            .expect_err("rights violation");
        assert!(
            matches!(
                err,
                EdenError::Invoke(Status::RightsViolation { required, .. })
                    if required == Rights::READ
            ),
            "got {err:?}"
        );
    }

    // Unknown telemetry operations surface as NoSuchOperation.
    let err = c
        .node(0)
        .invoke(node_object_cap(NodeId(0)), "bogus", &[])
        .expect_err("no such op");
    assert!(matches!(
        err,
        EdenError::Invoke(Status::NoSuchOperation(op)) if op == "bogus"
    ));
}

#[test]
fn monitor_reports_dead_nodes_instead_of_failing() {
    let c = cluster3();
    warm(&c);
    let monitor = MonitorClient::for_cluster(&c).expect("create monitor");

    c.kill(2);
    let scrape = monitor.scrape_metrics().expect("partial scrape");
    assert_eq!(scrape.down, vec![2], "killed node reported as down");
    let labels: HashSet<&str> = scrape.per_node.iter().map(|m| m.node.as_str()).collect();
    assert_eq!(labels, HashSet::from(["0", "1"]));
    assert_eq!(scrape.merged.node, "cluster");
}
