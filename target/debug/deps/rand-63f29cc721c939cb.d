/root/repo/target/debug/deps/rand-63f29cc721c939cb.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-63f29cc721c939cb.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-63f29cc721c939cb.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
