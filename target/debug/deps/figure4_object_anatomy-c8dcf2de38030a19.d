/root/repo/target/debug/deps/figure4_object_anatomy-c8dcf2de38030a19.d: tests/figure4_object_anatomy.rs

/root/repo/target/debug/deps/figure4_object_anatomy-c8dcf2de38030a19: tests/figure4_object_anatomy.rs

tests/figure4_object_anatomy.rs:
