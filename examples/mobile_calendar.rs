//! Scheduling a meeting across calendars on different node machines,
//! then using mobility and frozen replicas to cut the invocation bill.
//!
//! ```sh
//! cargo run --example mobile_calendar
//! ```

use std::time::{Duration, Instant};

use eden::apps::{with_apps, CalendarType, MeetingScheduler};
use eden::kernel::Cluster;
use eden::wire::Value;

fn main() {
    let cluster = with_apps(Cluster::builder().nodes(4)).build();
    println!("four node machines; one calendar per user, each on its owner's node");

    let cals: Vec<_> = (0..4)
        .map(|i| {
            cluster
                .node(i)
                .create_object(CalendarType::NAME, &[])
                .expect("create calendar")
        })
        .collect();

    // Seed conflicting appointments so the scheduler has to work.
    for (i, cal) in cals.iter().enumerate() {
        for h in 0..=i as u64 {
            cluster
                .node(i)
                .invoke(
                    *cal,
                    "book",
                    &[Value::U64(42), Value::U64(9 + h), Value::Str("busy".into())],
                )
                .expect("seed booking");
        }
    }

    // Schedule from node 0: one logical operation fanning out into
    // invocations on four objects on four machines.
    let scheduler = MeetingScheduler::new(cluster.node(0).clone());
    let before = cluster.node(0).metrics();
    let start = Instant::now();
    let hour = scheduler
        .schedule(&cals, 42, "eden kernel sync")
        .expect("schedule")
        .expect("a slot must exist");
    let elapsed = start.elapsed();
    let sent = cluster
        .node(0)
        .metrics()
        .delta(&before)
        .remote_invocations_sent;
    println!(
        "scheduled 'eden kernel sync' at {hour}:00 in {elapsed:?} ({sent} remote invocations)"
    );

    // Co-locate the calendars on node 0 (say, for a scheduling-heavy
    // week) and schedule again: the remote bill collapses.
    println!("\nmoving every calendar to node 0…");
    for cal in &cals[1..] {
        cluster
            .node(0)
            .invoke(*cal, "relocate", &[Value::U64(0)])
            .expect("relocate");
    }
    for cal in &cals {
        while !cluster.node(0).is_local(cal.name()) {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    let before = cluster.node(0).metrics();
    let start = Instant::now();
    let hour = scheduler
        .schedule(&cals, 43, "follow-up")
        .expect("schedule")
        .expect("slot");
    let elapsed = start.elapsed();
    let sent = cluster
        .node(0)
        .metrics()
        .delta(&before)
        .remote_invocations_sent;
    println!("scheduled 'follow-up' at {hour}:00 in {elapsed:?} ({sent} remote invocations — all local now)");

    let m = cluster.node(0).metrics();
    println!(
        "\nnode 0 totals: {} local invocations, {} moves in",
        m.local_invocations, m.moves_in
    );
    cluster.shutdown();
}
