//! Lock-free log-linear latency histograms (HDR-style).
//!
//! Values (nanoseconds, but any `u64` works) land in one of ~1000
//! buckets: exact below 16, then 16 linear sub-buckets per power of two
//! above that, for ≤ 1/16 ≈ 6% relative quantile error across the full
//! 64-bit range. Recording is two relaxed `fetch_add`s plus min/max
//! maintenance — no locks, no allocation — so it is cheap enough to sit
//! on the kernel's invocation hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power of two (log-linear resolution).
const SUBBUCKET_BITS: u32 = 4;
const SUBBUCKETS: u64 = 1 << SUBBUCKET_BITS; // 16
/// Values below this are bucketed exactly.
const LINEAR_MAX: u64 = SUBBUCKETS;
/// Total bucket count: 16 exact + 16 per exponent 4..=63.
const BUCKETS: usize = LINEAR_MAX as usize + ((64 - SUBBUCKET_BITS as usize) * SUBBUCKETS as usize);

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // >= SUBBUCKET_BITS
        let sub = (v >> (exp - SUBBUCKET_BITS)) & (SUBBUCKETS - 1);
        LINEAR_MAX as usize + (exp - SUBBUCKET_BITS) as usize * SUBBUCKETS as usize + sub as usize
    }
}

/// Inclusive upper bound of the value range covered by `index` (the
/// `le` bound Prometheus exposition reports for the bucket).
fn bucket_upper(index: usize) -> u64 {
    if index < LINEAR_MAX as usize {
        index as u64
    } else {
        let rel = index - LINEAR_MAX as usize;
        let exp = SUBBUCKET_BITS + (rel / SUBBUCKETS as usize) as u32;
        let sub = (rel % SUBBUCKETS as usize) as u64;
        let lo = (1u64 << exp) | (sub << (exp - SUBBUCKET_BITS));
        let width = 1u64 << (exp - SUBBUCKET_BITS);
        lo + (width - 1)
    }
}

/// The fixed number of buckets every [`Histogram`] (and therefore every
/// [`HistogramSnapshot`]) carries. Exposed so wire codecs can rebuild a
/// dense bucket vector from a sparse encoding.
pub const fn bucket_count() -> usize {
    BUCKETS
}

/// Midpoint of the value range covered by `index` (the value quantile
/// queries report).
fn bucket_mid(index: usize) -> u64 {
    if index < LINEAR_MAX as usize {
        index as u64
    } else {
        let rel = index - LINEAR_MAX as usize;
        let exp = SUBBUCKET_BITS + (rel / SUBBUCKETS as usize) as u32;
        let sub = (rel % SUBBUCKETS as usize) as u64;
        let lo = (1u64 << exp) | (sub << (exp - SUBBUCKET_BITS));
        let width = 1u64 << (exp - SUBBUCKET_BITS);
        lo + width / 2
    }
}

/// A fixed-size, lock-free latency histogram.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the array from a Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> =
            v.into_boxed_slice().try_into().expect("bucket count");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; callable from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a `std::time::Duration` in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Takes a consistent-enough copy for reporting (individual bucket
    /// loads are relaxed; in-flight samples may straddle the snapshot).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(
            f,
            "Histogram(count={}, p50={}, p99={})",
            s.count,
            s.percentile(50.0),
            s.percentile(99.0)
        )
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
///
/// # Merge semantics
///
/// [`merge`](Self::merge) is a bucket-wise sum plus `count`/`sum`
/// addition and `min`/`max` folds. Every component is **commutative and
/// associative**, so folding any number of per-node snapshots of the
/// same histogram name produces an identical cluster-wide snapshot
/// regardless of the order nodes are visited (and regardless of how the
/// fold is parenthesized). Cluster aggregation therefore needs no node
/// ordering convention: `merge_snapshot_maps` can walk nodes in whatever
/// order a scrape returned them and the merged view is stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (identity for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Rebuilds a snapshot from previously extracted parts (the inverse
    /// of [`buckets`](Self::buckets) plus the public fields; used by wire
    /// codecs). `buckets` shorter than [`bucket_count`] is zero-padded;
    /// longer is truncated.
    pub fn from_parts(mut buckets: Vec<u64>, count: u64, sum: u64, min: u64, max: u64) -> Self {
        buckets.resize(BUCKETS, 0);
        HistogramSnapshot {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// The per-bucket sample counts (fixed length [`bucket_count`]).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// `(upper_bound, cumulative_count)` pairs at each occupied bucket,
    /// in ascending bound order — the shape Prometheus histogram
    /// exposition (`le` buckets) wants. The final implicit `+Inf` bucket
    /// is `count` and is not included.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                cum += n;
                out.push((bucket_upper(i), cum));
            }
        }
        out
    }

    /// Folds another snapshot in (for cluster-wide aggregates).
    /// Commutative and associative — see the type-level merge semantics.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at percentile `p` (0–100). Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean of the samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// One-line summary used by the shell and experiment tables.
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "count=0".to_string();
        }
        format!(
            "count={} min={} p50={} p95={} p99={} max={} mean={:.0}",
            self.count,
            self.min,
            self.percentile(50.0),
            self.percentile(95.0),
            self.percentile(99.0),
            self.max,
            self.mean(),
        )
    }
}

/// Merges several nodes' `name → snapshot` maps into one cluster-wide
/// view. When two nodes report the same histogram name the snapshots are
/// folded with [`HistogramSnapshot::merge`]; because merge is commutative
/// and associative the result is independent of the order `maps` is
/// iterated, and the returned `BTreeMap` iterates names in a stable
/// lexicographic order.
pub fn merge_snapshot_maps<'a, I>(maps: I) -> std::collections::BTreeMap<String, HistogramSnapshot>
where
    I: IntoIterator<Item = &'a std::collections::BTreeMap<String, HistogramSnapshot>>,
{
    let mut merged = std::collections::BTreeMap::new();
    for map in maps {
        for (name, snap) in map {
            merged
                .entry(name.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(snap);
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_below_linear_max() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 16);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 15);
        assert_eq!(s.percentile(100.0), 15);
    }

    #[test]
    fn percentiles_of_uniform_ramp_are_close() {
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for (p, expect) in [(50.0, 50_000.0), (95.0, 95_000.0), (99.0, 99_000.0)] {
            let got = s.percentile(p) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.07, "p{p}: got {got}, want ~{expect} (err {err:.3})");
        }
    }

    #[test]
    fn merge_is_sum() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in 0..1000u64 {
            a.record(v);
            b.record(v * 17);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 2000);
        assert_eq!(m.max, 999 * 17);
    }

    #[test]
    fn merged_map_view_is_ordering_stable() {
        use std::collections::BTreeMap;
        let mk = |values: &[u64]| {
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let mut node0 = BTreeMap::new();
        node0.insert("invoke.local".to_string(), mk(&[10, 20, 30]));
        node0.insert("store.write".to_string(), mk(&[5]));
        let mut node1 = BTreeMap::new();
        node1.insert("invoke.local".to_string(), mk(&[1000, 2000]));
        let mut node2 = BTreeMap::new();
        node2.insert("invoke.local".to_string(), mk(&[7]));

        let forward = merge_snapshot_maps([&node0, &node1, &node2]);
        let backward = merge_snapshot_maps([&node2, &node1, &node0]);
        assert_eq!(forward, backward);
        assert_eq!(forward["invoke.local"].count, 6);
        assert_eq!(forward["invoke.local"].min, 7);
        assert_eq!(forward["invoke.local"].max, 2000);
        assert_eq!(forward["store.write"].count, 1);
        // Stable name order for serializers.
        let names: Vec<&String> = forward.keys().collect();
        assert_eq!(names, vec!["invoke.local", "store.write"]);
    }

    #[test]
    fn cumulative_buckets_reach_total_count() {
        let h = Histogram::new();
        for v in [3u64, 3, 17, 40_000, 40_001] {
            h.record(v);
        }
        let s = h.snapshot();
        let cum = s.cumulative_buckets();
        assert!(!cum.is_empty());
        // Bounds ascend, counts ascend, last count is the total.
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(cum.last().unwrap().1, s.count);
        // Every sample is ≤ the bound of the bucket it landed in.
        assert!(cum[0].0 >= 3);
    }

    #[test]
    fn from_parts_round_trips_buckets() {
        let h = Histogram::new();
        for v in 0..500u64 {
            h.record(v * 13);
        }
        let s = h.snapshot();
        let rebuilt =
            HistogramSnapshot::from_parts(s.buckets().to_vec(), s.count, s.sum, s.min, s.max);
        assert_eq!(rebuilt, s);
        assert_eq!(rebuilt.percentile(50.0), s.percentile(50.0));
    }

    #[test]
    fn recording_is_fast_enough() {
        // Acceptance floor: far under 1 µs per sample even unoptimized.
        let h = Histogram::new();
        let n = 200_000u64;
        let start = std::time::Instant::now();
        for v in 0..n {
            h.record(v);
        }
        let per = start.elapsed().as_nanos() as u64 / n;
        assert!(per < 1_000, "record took {per} ns/sample (budget 1 µs)");
        assert_eq!(h.snapshot().count, n);
    }

    proptest! {
        #[test]
        fn bucket_mid_stays_in_bucket(v in 0u64..) {
            let idx = bucket_index(v);
            let mid = bucket_mid(idx);
            // The midpoint maps back to the same bucket.
            prop_assert_eq!(bucket_index(mid), idx);
            // And is within the 1/16 relative-error envelope.
            if v >= LINEAR_MAX {
                let err = (mid as f64 - v as f64).abs() / v as f64;
                prop_assert!(err <= 1.0 / 16.0 + 1e-9, "v={} mid={} err={}", v, mid, err);
            }
        }

        #[test]
        fn quantiles_bracket_the_data(mut samples in proptest::collection::vec(0u64..1_000_000, 1..512)) {
            let h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            samples.sort_unstable();
            let snap = h.snapshot();
            prop_assert_eq!(snap.count, samples.len() as u64);
            prop_assert_eq!(snap.min, samples[0]);
            prop_assert_eq!(snap.max, *samples.last().unwrap());
            let p50 = snap.percentile(50.0);
            prop_assert!(p50 >= snap.min && p50 <= snap.max);
        }
    }
}
