/root/repo/target/debug/deps/efs-376f1a9846d79da0.d: crates/efs/tests/efs.rs

/root/repo/target/debug/deps/efs-376f1a9846d79da0: crates/efs/tests/efs.rs

crates/efs/tests/efs.rs:
