/root/repo/target/debug/deps/eden_transport-2df8d087a687319a.d: crates/transport/src/lib.rs crates/transport/src/latency.rs crates/transport/src/mesh.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs Cargo.toml

/root/repo/target/debug/deps/libeden_transport-2df8d087a687319a.rmeta: crates/transport/src/lib.rs crates/transport/src/latency.rs crates/transport/src/mesh.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs Cargo.toml

crates/transport/src/lib.rs:
crates/transport/src/latency.rs:
crates/transport/src/mesh.rs:
crates/transport/src/stats.rs:
crates/transport/src/tcp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
