//! In-tree shim for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided, backed by `std::sync::mpsc`.
//! The receiver is wrapped in a mutex so it is `Sync` like crossbeam's
//! (endpoints share one receiver across kernel threads via `&self`).

#![forbid(unsafe_code)]

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait deadline elapsed with no message.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message was ready.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; errors if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: Mutex<mpsc::Receiver<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv().map_err(|_| RecvError)
        }

        /// Blocks with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Mutex::new(rx),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_timeout() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
