//! Example Eden applications: the "advanced distributed applications"
//! the system was built to host (§1, §2).
//!
//! Each module is a complete type manager (plus a small client facade)
//! exercising a different slice of the kernel:
//!
//! * [`counter`] — the minimal quickstart type.
//! * [`mail`] — a distributed mail system: per-user mailbox objects
//!   named through an EFS directory; senders and readers on any node.
//! * [`calendar`] — per-user calendars plus a multi-object meeting
//!   scheduler — a transactionless distributed application where one
//!   invocation fans out into many.
//! * [`queue`] — a shared work queue whose invocation classes provide
//!   all the synchronization (no locks in the type code).
//! * [`monitor`] — cluster-wide telemetry as an object: holds one
//!   read-only capability per node and scrapes metrics, traces and
//!   flight events purely through invocation.
//! * [`policy`] — a policy *object* (§4.3) that makes location decisions
//!   for other objects, wrapping the kernel `move` primitive.
//! * [`hierarchy`] — the §5 abstract type hierarchy: a three-level
//!   subtype family inheriting display code and location operations.

#![forbid(unsafe_code)]

pub mod calendar;
pub mod counter;
pub mod hierarchy;
pub mod mail;
pub mod monitor;
pub mod policy;
pub mod queue;

pub use calendar::{CalendarType, MeetingScheduler};
pub use counter::CounterType;
pub use hierarchy::{AuditedQueueType, NamedQueueType, ResourceType};
pub use mail::{MailClient, MailboxType};
pub use monitor::{ClusterMembership, ClusterMetrics, MemberRow, MonitorClient, MonitorType};
pub use policy::PolicyObjectType;
pub use queue::SharedQueueType;

use eden_kernel::ClusterBuilder;

/// Registers every application type (and the EFS types they build on).
pub fn with_apps(builder: ClusterBuilder) -> ClusterBuilder {
    eden_efs::with_efs(builder)
        .register(|| Box::new(CounterType))
        .register(|| Box::new(MailboxType))
        .register(|| Box::new(CalendarType))
        .register(|| Box::new(SharedQueueType))
        .register(|| Box::new(PolicyObjectType))
        .register(|| Box::new(ResourceType))
        .register(|| Box::new(NamedQueueType))
        .register(|| Box::new(AuditedQueueType))
        .register(|| Box::new(MonitorType))
}
