// Fixture: L2 capability-discipline violations (scanned as
// crates/core/src/node.rs). Both entry points reach transport/store
// effects without a rights check or checked delegation.

impl Node {
    pub fn replicate(&self, cap: Capability) -> Result<()> {
        let name = cap.name();
        self.inner.endpoint.send(Frame::to(self.inner.id, name.birth_node(), msg))?;
        Ok(())
    }

    pub fn persist(&self, cap: Capability, image: &[u8]) -> Result<()> {
        self.inner.store.put(cap.name(), image)?;
        Ok(())
    }
}
