//! Cross-layer observability for the Eden reproduction.
//!
//! The 1981 paper argues for mechanisms — location-transparent
//! invocation, invocation classes, checkpointing, mobility — whose costs
//! a reproduction must be able to *see* to be evaluable. This crate is
//! that layer, with three pillars:
//!
//! * **Distributed invocation tracing** — a compact [`TraceCtx`]
//!   (`trace_id`, `parent_span`, `span_id`) rides along `eden-wire`
//!   frames as an optional trailing field. Each layer opens a span
//!   ([`ObsRegistry::child_span`]) against the context it received, so a
//!   single remote invocation yields a causally linked span tree across
//!   nodes: client send → transport delivery → coordinator dispatch →
//!   operation execution → reply delivery. [`render_trace`] draws the
//!   tree.
//! * **Lock-free latency histograms** — [`Histogram`] is a log-linear
//!   (HDR-style) array of atomic buckets: recording a sample is a couple
//!   of relaxed atomic adds, snapshots are mergeable, and percentiles
//!   come out with ≤ ~6% relative error. [`Counter`] and [`Gauge`]
//!   cover monotone event counts and instantaneous levels (coordinator
//!   queue depth, per-class in-service counts).
//! * **A per-node flight recorder** — [`FlightRecorder`] keeps the last
//!   N typed [`KernelEvent`]s (crashes, reincarnations, moves, forwards,
//!   retransmissions, `WhereIs` broadcasts…) in a fixed-capacity ring,
//!   dumpable as text for postmortems after failover experiments.
//!
//! Everything hangs off a per-node [`ObsRegistry`]. All nodes in one
//! process share a single monotonic epoch ([`now_ns`]), so timestamps
//! from different in-process nodes are directly comparable.

pub mod clock;
pub mod hist;
pub mod metric;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use clock::now_ns;
pub use hist::{Histogram, HistogramSnapshot};
pub use metric::{Counter, Gauge};
pub use recorder::{FlightEvent, FlightRecorder, KernelEvent};
pub use registry::{ObsRegistry, SpanGuard};
pub use trace::{render_trace, SpanRecord, TraceCollector, TraceCtx};
