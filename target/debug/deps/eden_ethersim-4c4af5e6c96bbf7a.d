/root/repo/target/debug/deps/eden_ethersim-4c4af5e6c96bbf7a.d: crates/ethersim/src/lib.rs crates/ethersim/src/aloha.rs crates/ethersim/src/analytic.rs crates/ethersim/src/config.rs crates/ethersim/src/events.rs crates/ethersim/src/metrics.rs crates/ethersim/src/sim.rs crates/ethersim/src/time.rs crates/ethersim/src/workload.rs

/root/repo/target/debug/deps/libeden_ethersim-4c4af5e6c96bbf7a.rlib: crates/ethersim/src/lib.rs crates/ethersim/src/aloha.rs crates/ethersim/src/analytic.rs crates/ethersim/src/config.rs crates/ethersim/src/events.rs crates/ethersim/src/metrics.rs crates/ethersim/src/sim.rs crates/ethersim/src/time.rs crates/ethersim/src/workload.rs

/root/repo/target/debug/deps/libeden_ethersim-4c4af5e6c96bbf7a.rmeta: crates/ethersim/src/lib.rs crates/ethersim/src/aloha.rs crates/ethersim/src/analytic.rs crates/ethersim/src/config.rs crates/ethersim/src/events.rs crates/ethersim/src/metrics.rs crates/ethersim/src/sim.rs crates/ethersim/src/time.rs crates/ethersim/src/workload.rs

crates/ethersim/src/lib.rs:
crates/ethersim/src/aloha.rs:
crates/ethersim/src/analytic.rs:
crates/ethersim/src/config.rs:
crates/ethersim/src/events.rs:
crates/ethersim/src/metrics.rs:
crates/ethersim/src/sim.rs:
crates/ethersim/src/time.rs:
crates/ethersim/src/workload.rs:
