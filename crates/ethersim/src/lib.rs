//! A deterministic discrete-event CSMA/CD Ethernet simulator.
//!
//! Eden's node machines are interconnected by "the Ethernet jointly
//! specified by Digital, Intel and Xerox" (§3), and the project had
//! "already satisfied ourselves of the suitability of Experimental
//! Ethernet for our requirements" via the measurement study the paper
//! cites, Almes & Lazowska, *The Behavior of Ethernet-Like Computer
//! Communications Networks* (SOSP '79). The real coaxial bus is
//! unavailable here, so this crate rebuilds it as a simulator and
//! regenerates that study's characteristic curves: throughput, access
//! delay and collision rate as functions of offered load, station count
//! and frame size (experiment E7 in EXPERIMENTS.md).
//!
//! The model is 1-persistent CSMA/CD with:
//!
//! * carrier sense delayed by the propagation time `tau` — two stations
//!   starting within `tau` of each other collide;
//! * collision detection, jam, and truncated binary exponential backoff
//!   (the DIX Ethernet parameters are the defaults);
//! * per-station FIFO queues fed by Poisson arrival processes;
//! * full determinism: one seed produces one event sequence.
//!
//! [`analytic`] carries the Metcalfe & Boggs closed-form efficiency model
//! the simulator is validated against in the test suite, and [`aloha`]
//! implements the slotted-ALOHA baseline MAC the Ethernet papers measure
//! against (saturating at 1/e versus CSMA/CD's >0.9 for long frames).

#![forbid(unsafe_code)]

pub mod aloha;
pub mod analytic;
pub mod config;
pub mod events;
pub mod metrics;
pub mod sim;
pub mod time;
pub mod workload;

pub use aloha::{AlohaConfig, AlohaSim};
pub use config::EthernetConfig;
pub use metrics::Report;
pub use sim::EthernetSim;
pub use time::SimTime;
pub use workload::{FrameSizes, Workload};
