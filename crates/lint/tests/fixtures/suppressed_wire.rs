// Fixture: a wire-schema-drift suppression with the mandatory rationale
// (scanned as crates/wire/src/legacy.rs).

// eden-lint: allow(wire-schema-drift): tag retained so v1 peers get an
// explicit BadTag instead of a frame desync during the rollout window
pub const TAG_OLD: u8 = 200;
