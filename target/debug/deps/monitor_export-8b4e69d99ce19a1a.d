/root/repo/target/debug/deps/monitor_export-8b4e69d99ce19a1a.d: tests/monitor_export.rs

/root/repo/target/debug/deps/monitor_export-8b4e69d99ce19a1a: tests/monitor_export.rs

tests/monitor_export.rs:
