/root/repo/target/debug/deps/figure3_layers-914cf2d099ea7751.d: tests/figure3_layers.rs

/root/repo/target/debug/deps/figure3_layers-914cf2d099ea7751: tests/figure3_layers.rs

tests/figure3_layers.rs:
