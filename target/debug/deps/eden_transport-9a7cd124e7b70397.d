/root/repo/target/debug/deps/eden_transport-9a7cd124e7b70397.d: crates/transport/src/lib.rs crates/transport/src/latency.rs crates/transport/src/mesh.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs

/root/repo/target/debug/deps/eden_transport-9a7cd124e7b70397: crates/transport/src/lib.rs crates/transport/src/latency.rs crates/transport/src/mesh.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs

crates/transport/src/lib.rs:
crates/transport/src/latency.rs:
crates/transport/src/mesh.rs:
crates/transport/src/stats.rs:
crates/transport/src/tcp.rs:
