/root/repo/target/release/deps/proptest-4d9934ff43505820.d: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/bool.rs shims/proptest/src/collection.rs shims/proptest/src/prelude.rs shims/proptest/src/strategy.rs shims/proptest/src/string.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-4d9934ff43505820.rlib: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/bool.rs shims/proptest/src/collection.rs shims/proptest/src/prelude.rs shims/proptest/src/strategy.rs shims/proptest/src/string.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-4d9934ff43505820.rmeta: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/bool.rs shims/proptest/src/collection.rs shims/proptest/src/prelude.rs shims/proptest/src/strategy.rs shims/proptest/src/string.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/bool.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/prelude.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/string.rs:
shims/proptest/src/test_runner.rs:
