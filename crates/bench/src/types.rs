//! Benchmark-specific type managers and cluster builders.

use eden_capability::Rights;
use eden_kernel::{
    Cluster, ClusterBuilder, NodeConfig, OpCtx, OpError, OpResult, TypeManager, TypeSpec,
};
use eden_wire::Value;

/// Echoes its blob argument back — the null-RPC workload for E1.
pub struct EchoType;

impl EchoType {
    /// The registered type name.
    pub const NAME: &'static str = "bench.echo";
}

impl TypeManager for EchoType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(EchoType::NAME)
            .class("all", 16)
            .op("echo", "all", Rights::EXECUTE)
    }

    fn dispatch(&self, _ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "echo" => Ok(args.to_vec()),
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// Burns CPU for a controlled number of iterations — the F2 workload.
pub struct SpinType;

impl SpinType {
    /// The registered type name.
    pub const NAME: &'static str = "bench.spin";
}

impl TypeManager for SpinType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(SpinType::NAME)
            .class("all", 64)
            .op("spin", "all", Rights::EXECUTE)
    }

    fn dispatch(&self, _ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "spin" => {
                let iters = args.first().and_then(Value::as_u64).unwrap_or(0);
                // An opaque arithmetic loop the optimizer cannot remove.
                let mut acc = std::hint::black_box(0x9e3779b97f4a7c15u64);
                for i in 0..iters {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                Ok(vec![Value::U64(std::hint::black_box(acc))])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// An operation that holds its invocation process for a fixed time —
/// the E2 class-limit workload (think "talks to a slow disk").
pub struct HoldType {
    type_name: String,
    limit: usize,
}

impl HoldType {
    /// A holder type with the given class limit, named
    /// `bench.hold{limit}`.
    pub fn with_limit(limit: usize) -> Self {
        HoldType {
            type_name: format!("bench.hold{limit}"),
            limit,
        }
    }

    /// The registered name for a limit.
    pub fn name_for(limit: usize) -> String {
        format!("bench.hold{limit}")
    }
}

impl TypeManager for HoldType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(self.type_name.clone())
            .class("held", self.limit)
            .op("hold_ms", "held", Rights::EXECUTE)
    }

    fn dispatch(&self, _ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "hold_ms" => {
                let ms = args.first().and_then(Value::as_u64).unwrap_or(1);
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(vec![])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// Carries a configurable-size representation — the E3/E5 payload.
pub struct PayloadType;

impl PayloadType {
    /// The registered type name.
    pub const NAME: &'static str = "bench.payload";
}

impl TypeManager for PayloadType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(PayloadType::NAME)
            .class("all", 4)
            .op("fill", "all", Rights::WRITE)
            .op("touch", "all", Rights::READ)
            .op("checkpoint", "all", Rights::CHECKPOINT)
            .op("crash", "all", Rights::OWNER)
            .op("migrate", "all", Rights::MOVE)
            .op("freeze", "all", Rights::FREEZE)
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "fill" => {
                let bytes = args.first().and_then(Value::as_u64).unwrap_or(0) as usize;
                ctx.mutate_repr(|r| {
                    r.put("payload", bytes::Bytes::from(vec![0xEDu8; bytes]));
                })?;
                Ok(vec![])
            }
            "touch" => Ok(vec![Value::U64(ctx.read_repr(|r| {
                r.get("payload").map(|b| b.len() as u64).unwrap_or(0)
            }))]),
            "checkpoint" => Ok(vec![Value::U64(ctx.checkpoint()?)]),
            "crash" => {
                ctx.crash();
                Ok(vec![])
            }
            "migrate" => {
                let dst = OpCtx::u64_arg(args, 0)? as u16;
                ctx.move_to(eden_capability::NodeId(dst))?;
                Ok(vec![])
            }
            "freeze" => Ok(vec![Value::U64(ctx.freeze()?)]),
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// Registers every benchmark type on a builder.
pub fn with_bench_types(builder: ClusterBuilder) -> ClusterBuilder {
    let builder = builder
        .register(|| Box::new(EchoType))
        .register(|| Box::new(SpinType))
        .register(|| Box::new(PayloadType));
    [1usize, 2, 4, 8, 16].into_iter().fold(builder, |b, limit| {
        b.register(move || Box::new(HoldType::with_limit(limit)))
    })
}

/// A standard benchmark cluster: `n` nodes, all app/EFS/bench types.
pub fn bench_cluster(n: usize) -> Cluster {
    with_bench_types(eden_apps::with_apps(Cluster::builder().nodes(n))).build()
}

/// A benchmark cluster with a custom node config.
pub fn bench_cluster_with(n: usize, config: NodeConfig) -> Cluster {
    with_bench_types(eden_apps::with_apps(
        Cluster::builder().nodes(n).node_config(config),
    ))
    .build()
}
