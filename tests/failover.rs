//! E10: node failure, checksites and reincarnation across crates.
//!
//! §4.4 end-to-end on the full stack: kill node machines and watch
//! checkpointed objects come back at their checksites while
//! uncheckpointed active state is lost, "exactly per the paper".

use std::time::Duration;

use eden::apps::with_apps;
use eden::efs::Efs;
use eden::kernel::{Cluster, EdenError};
use eden::wire::Status;

fn cluster(n: usize) -> Cluster {
    with_apps(Cluster::builder().nodes(n)).build()
}

#[test]
fn efs_files_survive_the_death_of_every_client() {
    let c = cluster(4);
    let efs = Efs::format(c.node(3).clone()).unwrap();
    efs.write("/ledger", b"balance: 100").unwrap();

    // Kill every node except the one hosting the filesystem.
    c.kill(0);
    c.kill(1);
    // A fresh client on the last surviving non-host node still reads.
    let client = Efs::mount(c.node(2).clone(), efs.root());
    assert_eq!(&client.read("/ledger").unwrap()[..], b"balance: 100");
}

#[test]
fn the_filesystem_dies_with_an_unreplicated_host() {
    // Control experiment: checkpoints on the dead node are gone (its
    // store was volatile memory in this configuration).
    let c = cluster(3);
    let efs = Efs::format(c.node(0).clone()).unwrap();
    efs.write("/doomed", b"gone").unwrap();
    c.kill(0);
    let client = Efs::mount(c.node(1).clone(), efs.root());
    let err = client.read("/doomed").unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("no-such-object") || msg.contains("timeout") || msg.contains("not found"),
        "unexpected: {msg}"
    );
}

#[test]
fn partition_heals_and_invocations_resume() {
    let c = cluster(3);
    let efs = Efs::format(c.node(2).clone()).unwrap();
    efs.write("/reachable", b"yes").unwrap();

    let client = Efs::mount(c.node(0).clone(), efs.root());
    assert_eq!(&client.read("/reachable").unwrap()[..], b"yes");

    // Partition the client from the host: reads fail...
    c.mesh().partition(
        c.node(0).node_id(),
        c.node(2).node_id(),
    );
    let err = client.read("/reachable");
    assert!(err.is_err(), "partitioned read must fail");

    // ... and resume after healing.
    c.mesh().heal(c.node(0).node_id(), c.node(2).node_id());
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match client.read("/reachable") {
            Ok(data) => {
                assert_eq!(&data[..], b"yes");
                break;
            }
            Err(_) => {
                assert!(std::time::Instant::now() < deadline, "never healed");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

#[test]
fn lossy_network_is_survivable_for_idempotent_reads() {
    // 20% frame loss: timeouts and retries at the client layer still
    // converge for idempotent operations.
    use eden::transport::MeshOptions;
    let c = with_apps(
        Cluster::builder()
            .nodes(2)
            .mesh(MeshOptions {
                loss_probability: 0.2,
                seed: 7,
                ..Default::default()
            }),
    )
    .build();
    let efs = Efs::format(c.node(1).clone()).unwrap();
    efs.write("/lossy", b"eventually").unwrap();
    let client = Efs::mount(c.node(0).clone(), efs.root());

    let mut successes = 0;
    for _ in 0..20 {
        if let Ok(data) = client.read("/lossy") {
            assert_eq!(&data[..], b"eventually");
            successes += 1;
        }
    }
    assert!(
        successes >= 10,
        "most reads should eventually succeed, got {successes}/20"
    );
}

#[test]
fn timeouts_surface_when_the_holder_dies_mid_conversation() {
    let c = cluster(2);
    let efs = Efs::format(c.node(1).clone()).unwrap();
    efs.write("/vanishing", b"x").unwrap();
    let client = Efs::mount(c.node(0).clone(), efs.root());
    assert!(client.read("/vanishing").is_ok());

    c.kill(1);
    let err = client.read("/vanishing").unwrap_err();
    let kernel_err = match err {
        eden::efs::EfsError::Kernel(e) => e,
        other => panic!("expected kernel error, got {other:?}"),
    };
    assert!(
        matches!(
            kernel_err,
            EdenError::Invoke(Status::Timeout) | EdenError::Invoke(Status::NoSuchObject)
        ),
        "got {kernel_err:?}"
    );
}
