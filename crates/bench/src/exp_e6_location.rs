//! E6 — the location service: what each lookup path costs.
//!
//! The kernel resolves a name through, in order: the local table, the
//! hint cache, the birth-node hint, forwarding addresses, and finally a
//! broadcast search (§2, §4.3). This experiment measures a first
//! invocation through each path on a 8-node system and counts the
//! location traffic each one generates.

use std::time::{Duration, Instant};

use eden_wire::Value;

use eden_transport::{LatencyModel, MeshOptions};

use crate::fmt_us;
use crate::table::Table;
use crate::types::{with_bench_types, PayloadType};

/// Runs E6 and returns the table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E6 — location resolution paths (8-node LAN system, first invocation)",
        &["path", "latency", "broadcasts", "forwards (system-wide)"],
    );
    let cluster = with_bench_types(eden_apps::with_apps(
        eden_kernel::Cluster::builder().nodes(8).mesh(MeshOptions {
            latency: LatencyModel::lan_10mbps(),
            loss_probability: 0.0,
            seed: 6,
        }),
    ))
    .build();

    let sum_forwards =
        |c: &eden_kernel::Cluster| -> u64 { c.nodes().iter().map(|n| n.metrics().forwards).sum() };

    // (a) Birth-node hint: object on its birth node, fresh invoker.
    {
        let cap = cluster
            .node(0)
            .create_object(PayloadType::NAME, &[])
            .unwrap();
        let invoker = cluster.node(5);
        let b0 = invoker.metrics().location_broadcasts;
        let start = Instant::now();
        invoker.invoke(cap, "touch", &[]).unwrap();
        let us = start.elapsed().as_secs_f64() * 1e6;
        t.row(vec![
            "birth-node hint hit".into(),
            fmt_us(us),
            (invoker.metrics().location_broadcasts - b0).to_string(),
            "0".into(),
        ]);
    }

    // (b) Warm hint cache: second invocation from the same node.
    {
        let cap = cluster
            .node(1)
            .create_object(PayloadType::NAME, &[])
            .unwrap();
        let invoker = cluster.node(6);
        invoker.invoke(cap, "touch", &[]).unwrap(); // Warm.
        let h0 = invoker.metrics().location_cache_hits;
        let start = Instant::now();
        invoker.invoke(cap, "touch", &[]).unwrap();
        let us = start.elapsed().as_secs_f64() * 1e6;
        assert!(invoker.metrics().location_cache_hits > h0);
        t.row(vec![
            "hint-cache hit".into(),
            fmt_us(us),
            "0".into(),
            "0".into(),
        ]);
    }

    // (c) Forwarding chase after k moves: the object walked 2 hops from
    // its birth node; a fresh invoker follows birth hint → forward →
    // forward.
    {
        let cap = cluster
            .node(2)
            .create_object(PayloadType::NAME, &[])
            .unwrap();
        for dst in [3u64, 4] {
            cluster
                .node(0)
                .invoke(cap, "migrate", &[Value::U64(dst)])
                .unwrap();
            let deadline = Instant::now() + Duration::from_secs(10);
            while !cluster.node(dst as usize).is_local(cap.name()) {
                assert!(Instant::now() < deadline, "move never completed");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let invoker = cluster.node(7);
        let f0 = sum_forwards(&cluster);
        let start = Instant::now();
        invoker.invoke(cap, "touch", &[]).unwrap();
        let us = start.elapsed().as_secs_f64() * 1e6;
        t.row(vec![
            "forwarding chase (2 moves)".into(),
            fmt_us(us),
            invoker.metrics().location_broadcasts.to_string(),
            (sum_forwards(&cluster) - f0).to_string(),
        ]);
    }

    // (d) Broadcast search: kill the birth node after moving the object
    // off it, so hints dead-end and the invoker must broadcast.
    {
        let cap = cluster
            .node(3)
            .create_object(PayloadType::NAME, &[])
            .unwrap();
        cluster
            .node(0)
            .invoke(cap, "migrate", &[Value::U64(6)])
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cluster.node(6).is_local(cap.name()) {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(2));
        }
        cluster.kill(3); // Birth node (and its forwarding entry) gone.
        let invoker = cluster.node(5);
        let b0 = invoker.metrics().location_broadcasts;
        let start = Instant::now();
        invoker
            .invoke_with_timeout(cap, "touch", &[], Duration::from_secs(10))
            .unwrap();
        let us = start.elapsed().as_secs_f64() * 1e6;
        t.row(vec![
            "broadcast search (dead birth node)".into(),
            fmt_us(us),
            (invoker.metrics().location_broadcasts - b0).to_string(),
            "0".into(),
        ]);
    }

    t.note("expected shape: cache ≈ birth hint < forwarding chase < broadcast search");
    cluster.shutdown();
    t
}
