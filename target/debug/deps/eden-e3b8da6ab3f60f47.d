/root/repo/target/debug/deps/eden-e3b8da6ab3f60f47.d: src/lib.rs

/root/repo/target/debug/deps/eden-e3b8da6ab3f60f47: src/lib.rs

src/lib.rs:
