//! Behaviors: detached caretaker processes within an object.
//!
//! §4.2: "the reincarnation condition handler may wish to spawn one or
//! more detached processes to execute concurrently with invocation
//! processing. Such processes, called *behaviors* in Eden, operate
//! independently of invocations, except that they may exchange signals or
//! data through any of the intra-object communication mechanisms.
//! Behaviors can be used to perform object caretaking, for example, tree
//! balancing or internal garbage collection."
//!
//! A behavior is a plain OS thread bound to its object through a
//! [`BehaviorCtx`]. Behaviors are cooperative: the kernel requests a stop
//! (on crash, move-out, or node shutdown) by raising a flag and closing
//! the object's ports; a well-written behavior loop checks
//! [`BehaviorCtx::should_stop`] (or blocks on a port, which unblocks with
//! `None` on closure) and exits. "A simple, single-thread traditional
//! program might be implemented as an object with a single behavior and
//! no invocable operations."

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eden_capability::Capability;
use eden_wire::Value;

use crate::error::Result;
use crate::node::Node;
use crate::object::ObjectSlot;
use crate::repr::Representation;
use crate::sync::{EdenSemaphore, MessagePort};
use crate::types::OpError;

/// The kernel's handle on one running behavior.
pub struct BehaviorHandle {
    label: String,
    stop: Arc<AtomicBool>,
}

impl BehaviorHandle {
    /// Raises the stop flag. The thread is detached; it observes the flag
    /// (or a closed port) and exits on its own.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// The label given at spawn time.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// What a behavior thread can do: a subset of [`OpCtx`](crate::OpCtx)
/// bound to its object, plus stop-flag plumbing.
pub struct BehaviorCtx {
    pub(crate) node: Node,
    pub(crate) slot: Arc<ObjectSlot>,
    pub(crate) stop: Arc<AtomicBool>,
}

impl BehaviorCtx {
    /// Whether the kernel has asked this behavior to exit.
    pub fn should_stop(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Sleeps up to `d`, waking early if a stop is requested. Returns
    /// `true` if the behavior should keep running.
    pub fn wait(&self, d: Duration) -> bool {
        let deadline = Instant::now() + d;
        while Instant::now() < deadline {
            if self.should_stop() {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2).min(deadline - Instant::now()));
        }
        !self.should_stop()
    }

    /// A full-rights capability for the behavior's own object.
    pub fn self_cap(&self) -> Capability {
        Capability::mint(self.slot.name)
    }

    /// Reads the representation under the shared lock.
    pub fn read_repr<R>(&self, f: impl FnOnce(&Representation) -> R) -> R {
        f(&self.slot.repr.read())
    }

    /// Mutates the representation; fails on frozen objects.
    pub fn mutate_repr<R>(
        &self,
        f: impl FnOnce(&mut Representation) -> R,
    ) -> std::result::Result<R, OpError> {
        if self.slot.is_frozen() {
            return Err(OpError::Frozen);
        }
        Ok(f(&mut self.slot.repr.write()))
    }

    /// Invokes an operation on another object (location-independent).
    pub fn invoke(&self, cap: Capability, op: &str, args: &[Value]) -> Result<Vec<Value>> {
        self.node.invoke(cap, op, args)
    }

    /// Checkpoints the object's current representation.
    pub fn checkpoint(&self) -> Result<u64> {
        self.node.checkpoint_slot(&self.slot)
    }

    /// The named intra-object semaphore.
    pub fn semaphore(&self, name: &str, initial: u64) -> Arc<EdenSemaphore> {
        self.slot.semaphore(name, initial)
    }

    /// The named intra-object message port.
    pub fn port(&self, name: &str) -> Arc<MessagePort> {
        self.slot.port(name)
    }
}

/// Spawns a behavior thread for `slot`, registering its handle in the
/// object's short-term state.
pub(crate) fn spawn_behavior(
    node: Node,
    slot: Arc<ObjectSlot>,
    label: &str,
    body: impl FnOnce(BehaviorCtx) + Send + 'static,
) {
    let stop = Arc::new(AtomicBool::new(false));
    let handle = BehaviorHandle {
        label: label.to_string(),
        stop: stop.clone(),
    };
    slot.short.behaviors.lock().push(handle);
    let ctx = BehaviorCtx { node, slot, stop };
    // Behaviors are *detached, long-lived* caretaker processes (§4.2):
    // routing one through the bounded virtual-processor pool would pin a
    // pool worker for the object's whole lifetime, starving invocation
    // processing. A dedicated thread is the correct resource model here,
    // so the pool-discipline lint is suppressed rather than obeyed.
    std::thread::Builder::new()
        .name(format!("eden-behavior-{label}"))
        // eden-lint: allow(pool-discipline)
        .spawn(move || body(ctx))
        .expect("spawn behavior thread");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_raises_the_flag() {
        let stop = Arc::new(AtomicBool::new(false));
        let h = BehaviorHandle {
            label: "gc".into(),
            stop: stop.clone(),
        };
        assert_eq!(h.label(), "gc");
        assert!(!stop.load(Ordering::Acquire));
        h.request_stop();
        assert!(stop.load(Ordering::Acquire));
    }
}
