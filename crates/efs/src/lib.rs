//! The Eden File System (EFS).
//!
//! §5: "A user-level system for naming, storing and retrieving Eden
//! objects, to which we refer as the Eden File System (EFS). EFS will be
//! transaction-based, storing immutable versions that may be replicated
//! at multiple sites for reliability or performance enhancement. …
//! concurrency control will be encapsulated to facilitate experimentation
//! with alternate approaches."
//!
//! Faithful to Figure 3's layering, EFS is built **entirely as Eden
//! objects using only kernel-supplied primitives** — every EFS structure
//! is a type manager dispatching invocations:
//!
//! * [`FileType`] — a file is a sequence of immutable versions; writes
//!   append a version and checkpoint; reads address any retained version.
//!   Files also export the lock/prepare/commit operations the transaction
//!   machinery drives (two-phase commit participants).
//! * [`BlobType`] — one immutable version published as a frozen object,
//!   so the kernel's replica caching (§4.3) gives EFS its "replicated at
//!   multiple sites" reads.
//! * [`DirectoryType`] — hierarchical naming: capability bindings in the
//!   directory object's capability segment.
//! * [`TxnManagerType`] — a transaction coordinator driving two-phase
//!   commit over file objects, with the concurrency-control discipline
//!   *encapsulated* behind [`ConcurrencyControl`]: strict two-phase
//!   locking ([`TwoPhaseLocking`]) and optimistic validation
//!   ([`OptimisticCC`]) ship, and experiments compare them (E8).
//! * [`RecordFileType`] — the "record management" layer of Figure 3:
//!   a keyed record store with ordered prefix scans and batched
//!   checkpointing.
//! * [`Efs`] — a client-side convenience facade (paths, read/write,
//!   transactions) so downstream code reads like file-system code.

#![forbid(unsafe_code)]

pub mod dir;
pub mod efs;
pub mod file;
pub mod records;
pub mod txn;

pub use dir::DirectoryType;
pub use efs::{Efs, EfsError};
pub use file::{BlobType, FileType};
pub use records::{RecordFileType, Records};
pub use txn::{ConcurrencyControl, OptimisticCC, Transaction, TwoPhaseLocking, TxnManagerType};

use eden_kernel::ClusterBuilder;

/// Registers every EFS type on a cluster builder.
///
/// # Examples
///
/// ```
/// use eden_kernel::Cluster;
///
/// let cluster = eden_efs::with_efs(Cluster::builder().nodes(2)).build();
/// let efs = eden_efs::Efs::format(cluster.node(0).clone()).unwrap();
/// efs.write("/notes/today", b"hello eden").unwrap();
/// assert_eq!(&efs.read("/notes/today").unwrap()[..], b"hello eden");
/// cluster.shutdown();
/// ```
pub fn with_efs(builder: ClusterBuilder) -> ClusterBuilder {
    builder
        .register(|| Box::new(FileType))
        .register(|| Box::new(BlobType))
        .register(|| Box::new(DirectoryType))
        .register(|| Box::new(TxnManagerType::two_phase_locking()))
        .register(|| Box::new(TxnManagerType::optimistic()))
        .register(|| Box::new(RecordFileType))
}
