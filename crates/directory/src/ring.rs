//! The consistent-hash ring that assigns every object name a *home node*.
//!
//! Each non-dead member contributes a fixed number of virtual points; an
//! object's home is the owner of the first point clockwise from the hash
//! of its name. S1 names already embed the birth node, so the hash input
//! carries the paper's birth-node hint and names born on different nodes
//! spread independently. Virtual points keep the shard sizes within a
//! small factor of each other and limit how many entries re-home when the
//! membership changes.

use eden_capability::{NodeId, ObjName};

/// Virtual points per member. 32 keeps the max/min shard ratio under ~2
/// for the cluster sizes E14 exercises while the ring stays tiny.
const VNODES: usize = 32;

/// splitmix64: a fast, well-distributed 64-bit mixer (public domain).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn point_for(node: NodeId, vnode: usize) -> u64 {
    mix64((u64::from(node.0) << 32) ^ vnode as u64 ^ 0x0ede_4d1e_c0de_0001)
}

fn hash_name(name: ObjName) -> u64 {
    let raw = name.to_u128();
    mix64((raw >> 64) as u64 ^ raw as u64)
}

/// A consistent-hash ring over the current non-dead membership.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    /// `(point, owner)` sorted by point.
    points: Vec<(u64, NodeId)>,
}

impl HashRing {
    /// Builds the ring for a member set (order-insensitive).
    pub fn new(members: &[NodeId]) -> Self {
        let mut points = Vec::with_capacity(members.len() * VNODES);
        for &node in members {
            for vnode in 0..VNODES {
                points.push((point_for(node, vnode), node));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    /// The home node of `name`: the owner of the first virtual point at or
    /// after the name's hash, wrapping at the top. `None` on an empty ring.
    pub fn home(&self, name: ObjName) -> Option<NodeId> {
        if self.points.is_empty() {
            return None;
        }
        let h = hash_name(name);
        let idx = self.points.partition_point(|(p, _)| *p < h);
        let (_, owner) = self.points[idx % self.points.len()];
        Some(owner)
    }

    /// How many members contribute points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_capability::NameGenerator;

    fn names(n: usize) -> Vec<ObjName> {
        let mut out = Vec::new();
        for node in 0..4u16 {
            let gen = NameGenerator::with_epoch(NodeId(node), 1);
            for _ in 0..n / 4 {
                out.push(gen.next_name());
            }
        }
        out
    }

    #[test]
    fn every_name_has_a_home_and_assignment_is_stable() {
        let members: Vec<NodeId> = (0..8).map(NodeId).collect();
        let ring = HashRing::new(&members);
        let again = HashRing::new(&members);
        for name in names(400) {
            let home = ring.home(name).unwrap();
            assert!(members.contains(&home));
            assert_eq!(again.home(name), Some(home));
        }
    }

    #[test]
    fn load_spreads_across_members() {
        let members: Vec<NodeId> = (0..8).map(NodeId).collect();
        let ring = HashRing::new(&members);
        let mut counts = std::collections::HashMap::new();
        for name in names(4000) {
            *counts.entry(ring.home(name).unwrap()).or_insert(0usize) += 1;
        }
        // Every member homes something, and nobody homes the majority.
        assert_eq!(counts.len(), members.len());
        assert!(counts.values().all(|&c| c < 2000));
    }

    #[test]
    fn removing_a_member_only_moves_its_own_entries() {
        let members: Vec<NodeId> = (0..8).map(NodeId).collect();
        let full = HashRing::new(&members);
        let shrunk = HashRing::new(&members[..7]);
        let mut moved = 0usize;
        let all = names(2000);
        for &name in &all {
            let before = full.home(name).unwrap();
            let after = shrunk.home(name).unwrap();
            if before != NodeId(7) {
                // Entries homed away from the removed member must not move.
                assert_eq!(before, after);
            } else {
                moved += 1;
            }
        }
        // The removed member owned roughly 1/8 of the space.
        assert!(moved > 0 && moved < all.len() / 4);
    }

    #[test]
    fn empty_ring_has_no_home() {
        let ring = HashRing::new(&[]);
        assert!(ring.is_empty());
        assert_eq!(
            ring.home(NameGenerator::with_epoch(NodeId(0), 1).next_name()),
            None
        );
    }
}
