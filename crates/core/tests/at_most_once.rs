//! At-most-once execution over a lossy network: the `ServedRequests`
//! dedup path in `handle_invoke_request`.
//!
//! §4.2 promises status-and-return-parameter semantics per invocation;
//! over a best-effort Ethernet that requires the serving kernel to
//! (a) drop retransmissions of a request still executing, (b) replay a
//! cached reply when the original reply frame was lost, and (c) apply
//! the same bookkeeping to scrapes of the per-node telemetry sentinel,
//! which used to bypass it and double-count on retransmission.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eden_capability::{Capability, NodeId, Rights};
use eden_kernel::node::{node_object_cap, node_object_name};
use eden_kernel::{
    Cluster, Node, NodeConfig, OpCtx, OpError, OpResult, TypeManager, TypeRegistry, TypeSpec,
};
use eden_store::MemStore;
use eden_transport::{Endpoint, LoopbackMesh, MeshOptions};
use eden_wire::{Frame, Message, Status, Value};

/// Counts *executions* (not replies): the probe for duplicate dispatch.
struct ExecCounted {
    executions: Arc<AtomicU64>,
    hold: Duration,
}

impl TypeManager for ExecCounted {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new("amo.counted")
            .class("all", 4)
            .op("bump", "all", Rights::EXECUTE)
    }

    fn dispatch(&self, _ctx: &OpCtx<'_>, op: &str, _args: &[Value]) -> OpResult {
        match op {
            "bump" => {
                let n = self.executions.fetch_add(1, Ordering::SeqCst) + 1;
                std::thread::sleep(self.hold);
                Ok(vec![Value::U64(n)])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// A kernel on endpoint 0 and a *raw* client on endpoint 1, so tests
/// can hand-craft duplicate `InvokeRequest` frames with a fixed
/// invocation id — exactly what a retransmitting peer produces.
fn kernel_and_raw_client(
    executions: Arc<AtomicU64>,
    hold: Duration,
) -> (Node, Arc<dyn Endpoint>, Arc<LoopbackMesh>) {
    let mesh = Arc::new(LoopbackMesh::with_options(2, MeshOptions::default()));
    let registry = Arc::new(TypeRegistry::new());
    registry
        .register(Arc::new(ExecCounted { executions, hold }))
        .expect("register type");
    let node = Node::new(
        NodeConfig::default(),
        mesh.endpoint(0),
        Arc::new(MemStore::new()),
        registry,
    );
    let client: Arc<dyn Endpoint> = mesh.endpoint(1);
    (node, client, mesh)
}

fn invoke_request(inv_id: u64, target: Capability, op: &str) -> Frame {
    Frame::to(
        NodeId(1),
        NodeId(0),
        Message::InvokeRequest {
            inv_id,
            target,
            operation: op.to_string(),
            args: Vec::new(),
            reply_to: NodeId(1),
            hops: 8,
        },
    )
}

/// Drains replies arriving at the raw client within `window`.
fn collect_replies(client: &Arc<dyn Endpoint>, window: Duration) -> Vec<(u64, Status, Vec<Value>)> {
    let deadline = Instant::now() + window;
    let mut replies = Vec::new();
    while let Some(left) = deadline.checked_duration_since(Instant::now()) {
        match client.recv_timeout(left) {
            Ok(Some(frame)) => {
                if let Message::InvokeReply {
                    inv_id,
                    status,
                    results,
                } = frame.msg
                {
                    replies.push((inv_id, status, results));
                }
            }
            Ok(None) => continue,
            Err(_) => break,
        }
    }
    replies
}

#[test]
fn duplicate_request_during_execution_runs_once() {
    let executions = Arc::new(AtomicU64::new(0));
    let (node, client, mesh) =
        kernel_and_raw_client(executions.clone(), Duration::from_millis(150));
    let cap = node.create_object("amo.counted", &[]).expect("create");

    // The duplicate lands while the original still executes (the op
    // holds for 150 ms): it must be dropped, not dispatched again.
    client.send(invoke_request(42, cap, "bump")).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    client.send(invoke_request(42, cap, "bump")).unwrap();

    let replies = collect_replies(&client, Duration::from_millis(600));
    assert_eq!(replies.len(), 1, "one reply for one logical request");
    assert_eq!(replies[0].1, Status::Ok);
    assert_eq!(
        executions.load(Ordering::SeqCst),
        1,
        "executed exactly once"
    );

    // A retransmission arriving *after* completion replays the cached
    // reply — byte-for-byte the same results — without re-executing.
    client.send(invoke_request(42, cap, "bump")).unwrap();
    let replayed = collect_replies(&client, Duration::from_millis(400));
    assert_eq!(replayed.len(), 1, "lost replies are replayed from cache");
    assert_eq!(replayed[0].2, replies[0].2);
    assert_eq!(
        executions.load(Ordering::SeqCst),
        1,
        "replay must not re-execute"
    );

    node.shutdown();
    mesh.shutdown();
}

#[test]
fn duplicates_arriving_in_one_receive_batch_run_once() {
    let executions = Arc::new(AtomicU64::new(0));
    let (node, client, mesh) =
        kernel_and_raw_client(executions.clone(), Duration::from_millis(100));
    let cap = node.create_object("amo.counted", &[]).expect("create");

    // Three copies back-to-back with no gap: the receive loop drains
    // them as one batch, so the dedup must hold within a single
    // `handle_frame_batch` pass (atomic check-and-insert), not just
    // across well-spaced frames.
    for _ in 0..3 {
        client.send(invoke_request(77, cap, "bump")).unwrap();
    }

    let replies = collect_replies(&client, Duration::from_millis(600));
    assert_eq!(replies.len(), 1, "one reply for one logical request");
    assert_eq!(replies[0].1, Status::Ok);
    assert_eq!(executions.load(Ordering::SeqCst), 1);

    node.shutdown();
    mesh.shutdown();
}

#[test]
fn lossy_mesh_with_retransmission_executes_each_invocation_once() {
    let executions = Arc::new(AtomicU64::new(0));
    let exec_for_factory = executions.clone();
    // A quarter of all frames vanish; the client-side retransmitter
    // (20 ms interval, well under the 60 ms service time) re-sends
    // aggressively, so the server sees plenty of duplicates.
    let cluster = Cluster::builder()
        .nodes(2)
        .mesh(MeshOptions {
            loss_probability: 0.25,
            seed: 7,
            ..Default::default()
        })
        .node_config(NodeConfig {
            retransmit_interval: Duration::from_millis(20),
            default_invoke_timeout: Duration::from_secs(30),
            remote_try_timeout: Duration::from_secs(10),
            ..Default::default()
        })
        .register(move || {
            Box::new(ExecCounted {
                executions: exec_for_factory.clone(),
                hold: Duration::from_millis(60),
            })
        })
        .build();
    let cap = cluster
        .node(0)
        .create_object("amo.counted", &[])
        .expect("create");

    const CALLS: u64 = 20;
    for i in 0..CALLS {
        let out = cluster
            .node(1)
            .invoke(cap, "bump", &[])
            .unwrap_or_else(|e| panic!("call {i} failed: {e}"));
        // The returned execution ordinal matches the call index: no
        // retransmitted duplicate ever slipped past the dedup.
        assert_eq!(out[0], Value::U64(i + 1));
    }
    assert_eq!(executions.load(Ordering::SeqCst), CALLS);
    cluster.shutdown();
}

#[test]
fn telemetry_sentinel_scrapes_are_deduplicated_and_replayed() {
    let executions = Arc::new(AtomicU64::new(0));
    let (node, client, mesh) = kernel_and_raw_client(executions, Duration::ZERO);
    let scrape = node_object_cap(NodeId(0));
    assert_eq!(scrape.name(), node_object_name(NodeId(0)));

    client
        .send(invoke_request(9, scrape, "get_metrics"))
        .unwrap();
    let first = collect_replies(&client, Duration::from_millis(400));
    assert_eq!(first.len(), 1);
    assert_eq!(first[0].1, Status::Ok);

    // Perturb the kernel's metrics so a *re-executed* scrape would
    // observe different counters than the cached reply carries.
    let cap = node.create_object("amo.counted", &[]).expect("create");
    node.invoke(cap, "bump", &[]).expect("local bump");

    // The retransmitted scrape (same inv_id) must come from the reply
    // cache: identical payload, despite the metric churn in between.
    client
        .send(invoke_request(9, scrape, "get_metrics"))
        .unwrap();
    let replayed = collect_replies(&client, Duration::from_millis(400));
    assert_eq!(replayed.len(), 1);
    assert_eq!(replayed[0].1, Status::Ok);
    assert_eq!(
        replayed[0].2, first[0].2,
        "sentinel scrape replayed from the reply cache, not re-executed"
    );

    node.shutdown();
    mesh.shutdown();
}
