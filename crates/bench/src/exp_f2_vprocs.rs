//! F2 — Figure 2 as a measured system: virtual processors.
//!
//! The default Eden node machine has two GDPs, "field upgradable" to
//! four (§3). A node's virtual processors bound how many invocation
//! processes execute simultaneously, so completing a batch of
//! fixed-service-time invocations should take `batch / vprocs` — the
//! scaling the extra GDPs buy.
//!
//! Two workloads:
//!
//! * **fixed service time** — each invocation occupies its virtual
//!   processor for 40 ms (a simulated instruction budget). This isolates
//!   the kernel's virtual-processor admission from the host machine, so
//!   the expected near-linear scaling holds even on a single-core host.
//! * **CPU-bound** — a real arithmetic loop; its scaling is additionally
//!   capped by the *host's* physical cores (reported alongside), exactly
//!   as Eden's was capped by the number of physical GDPs.

use std::time::{Duration, Instant};

use eden_kernel::NodeConfig;
use eden_wire::Value;

use crate::table::Table;
use crate::types::{bench_cluster_with, HoldType, SpinType};

const TASKS: usize = 16;
const HOLD_MS: u64 = 40;
const SPIN_ITERS: u64 = 60_000_000;

fn batch_seconds(vprocs: usize, cpu_bound: bool) -> f64 {
    let cluster = bench_cluster_with(
        1,
        NodeConfig {
            virtual_processors: vprocs,
            ..Default::default()
        },
    );
    let (type_name, op, arg): (String, &str, Value) = if cpu_bound {
        (SpinType::NAME.to_string(), "spin", Value::U64(SPIN_ITERS))
    } else {
        // Class limit 16 ≥ TASKS: the vproc gate is the only limiter.
        (HoldType::name_for(16), "hold_ms", Value::U64(HOLD_MS))
    };
    let cap = cluster
        .node(0)
        .create_object(&type_name, &[])
        .expect("create workload object");
    let start = Instant::now();
    let handles: Vec<_> = (0..TASKS)
        .map(|_| {
            cluster
                .node(0)
                .invoke_async(cap, op, std::slice::from_ref(&arg))
        })
        .collect();
    for h in handles {
        h.wait(Duration::from_secs(120)).expect("task");
    }
    let secs = start.elapsed().as_secs_f64();
    cluster.shutdown();
    secs
}

/// Batch time for the fixed-service-time workload (used by the
/// Criterion bench too).
pub fn held_batch_seconds(vprocs: usize) -> f64 {
    batch_seconds(vprocs, false)
}

/// Runs F2 and returns the table.
pub fn run() -> Table {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut t = Table::new(
        format!(
            "F2 — batch completion vs virtual processors (16 invocations; host has {cores} core(s))"
        ),
        &[
            "virtual processors",
            "40ms-service batch (s)",
            "speedup",
            "cpu-bound batch (s)",
            "speedup",
        ],
    );
    let held_base = batch_seconds(1, false);
    let spin_base = batch_seconds(1, true);
    t.row(vec![
        "1 (half-default)".into(),
        format!("{held_base:.2}"),
        "1.00×".into(),
        format!("{spin_base:.2}"),
        "1.00×".into(),
    ]);
    for vp in [2usize, 4, 8] {
        let held = batch_seconds(vp, false);
        let spin = batch_seconds(vp, true);
        let label = match vp {
            2 => "2 (default node machine)".to_string(),
            4 => "4 (field-upgraded)".to_string(),
            other => other.to_string(),
        };
        t.row(vec![
            label,
            format!("{held:.2}"),
            format!("{:.2}×", held_base / held),
            format!("{spin:.2}"),
            format!("{:.2}×", spin_base / spin),
        ]);
    }
    t.note("expected shape: service-time batch scales ~linearly with virtual processors (ideal 16×40ms/vprocs)");
    t.note(format!(
        "cpu-bound scaling is additionally capped by the host's {cores} physical core(s), as Eden's was by its GDP count"
    ));
    t
}
