//! E8 — EFS concurrency control: 2PL vs optimistic under contention.
//!
//! Workers run read-modify-write transactions over a file pool whose
//! size sets the conflict rate. Expected shape: with a large pool (low
//! conflict) OCC edges ahead (no lock round-trips); on a hot set of one
//! file 2PL keeps throughput (serializing cleanly) while OCC burns work
//! in aborts — the classic crossover the paper wanted EFS to let
//! researchers explore.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use eden_capability::Capability;
use eden_efs::Efs;
use eden_wire::Value;

use crate::table::Table;
use crate::types::bench_cluster;

const WORKERS: usize = 6;
const TXNS_PER_WORKER: usize = 10;

/// Result of one CC run.
pub struct CcOutcome {
    /// Committed transactions per second.
    pub commits_per_sec: f64,
    /// Aborts (CC conflicts + lock timeouts) per committed transaction.
    pub aborts_per_commit: f64,
}

/// Runs the increment workload with the named discipline over a pool of
/// `pool` files.
pub fn run_cc(cc: &str, pool: usize) -> CcOutcome {
    let cluster = bench_cluster(2);
    let efs = Efs::format(cluster.node(0).clone()).expect("format");
    let files: Vec<Capability> = (0..pool)
        .map(|i| {
            let f = efs.create_file(&format!("/pool/{i}")).expect("create");
            cluster
                .node(0)
                .invoke(f, "write", &[Value::Blob(bytes::Bytes::from_static(b"0"))])
                .expect("init");
            f
        })
        .collect();
    let mgr = efs.transaction_manager(cc).expect("manager");
    let aborts = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let node = cluster.node(w % 2).clone();
        let efs_w = Efs::mount(node, efs.root());
        let files = files.clone();
        let aborts = aborts.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng_state = w as u64 * 2654435761 + 1;
            for _ in 0..TXNS_PER_WORKER {
                loop {
                    rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let file = files[(rng_state >> 33) as usize % files.len()];
                    let txn = efs_w.begin(mgr).expect("begin");
                    let raw = match txn.read_for_update(file) {
                        Ok(r) => r,
                        Err(_) => {
                            aborts.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    };
                    let cur: i64 = String::from_utf8(raw.to_vec())
                        .unwrap_or_default()
                        .parse()
                        .unwrap_or(0);
                    if txn.write(file, format!("{}", cur + 1).as_bytes()).is_err() {
                        aborts.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    match txn.commit() {
                        Ok(true) => break,
                        _ => {
                            aborts.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let commits = (WORKERS * TXNS_PER_WORKER) as f64;
    cluster.shutdown();
    CcOutcome {
        commits_per_sec: commits / elapsed,
        aborts_per_commit: aborts.load(Ordering::Relaxed) as f64 / commits,
    }
}

/// Runs E8 and returns the table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E8 — EFS concurrency control: 2PL vs optimistic (6 workers, RMW transactions)",
        &["file pool", "cc", "commits/s", "aborts/commit"],
    );
    for pool in [1usize, 4, 16] {
        for cc in ["2pl", "occ"] {
            let o = run_cc(cc, pool);
            t.row(vec![
                pool.to_string(),
                cc.to_string(),
                format!("{:.0}", o.commits_per_sec),
                format!("{:.2}", o.aborts_per_commit),
            ]);
        }
    }
    t.note("expected shape: OCC aborts grow as the pool shrinks; 2PL aborts stay near zero");
    t.note("measured shape: polling-RPC locks make 2PL pay sleep time per conflict, so OCC wins throughput at every conflict level while 2PL wins wasted work (zero aborts)");
    t
}
