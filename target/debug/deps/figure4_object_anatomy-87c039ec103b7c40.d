/root/repo/target/debug/deps/figure4_object_anatomy-87c039ec103b7c40.d: tests/figure4_object_anatomy.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4_object_anatomy-87c039ec103b7c40.rmeta: tests/figure4_object_anatomy.rs Cargo.toml

tests/figure4_object_anatomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
