// Fixture: L3 wire-exhaustiveness clean file (scanned as
// crates/wire/src/status.rs): a fully enumerated Status match, a decode
// with a *named* binding arm for the error path (legal), and a
// non-wire match where a wildcard is fine.

fn label(status: &Status) -> &'static str {
    match status {
        Status::Ok => "ok",
        Status::Timeout => "timeout",
        Status::Overloaded => "overloaded",
    }
}

fn decode(tag: u8) -> Result<Status, CodecError> {
    match tag {
        TAG_OK => Ok(Status::Ok),
        TAG_TIMEOUT => Ok(Status::Timeout),
        tag => Err(CodecError::BadTag { what: "Status", tag }),
    }
}

fn first_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        _ => None,
    }
}
