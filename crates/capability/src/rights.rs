//! Access rights carried by capabilities.
//!
//! Eden gives each type manager freedom to decide which rights each of its
//! operations requires (§4.1: "Possession of a capability for an object
//! implies the ability to manipulate that object's representation by
//! invoking *some subset* of the operations defined for objects of that
//! type"). Rights are therefore a flat 32-bit set: a handful of bits carry
//! system-wide conventions (read, write, owner, …) and the rest are
//! type-defined.

use core::fmt;
use core::ops::{BitAnd, BitOr, BitXor, Not, Sub};

/// A set of access rights, represented as a 32-bit mask.
///
/// The low eight bits have conventional meanings used by the kernel and the
/// standard type managers; bits 8–31 ([`Rights::user`]) are free for each
/// type manager to assign.
///
/// # Examples
///
/// ```
/// use eden_capability::Rights;
///
/// let r = Rights::READ | Rights::WRITE;
/// assert!(r.contains(Rights::READ));
/// assert!(!r.contains(Rights::OWNER));
/// assert_eq!(r - Rights::WRITE, Rights::READ);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Rights(u32);

impl Rights {
    /// Read operations on the object's abstraction.
    pub const READ: Rights = Rights(1 << 0);
    /// Mutating operations on the object's abstraction.
    pub const WRITE: Rights = Rights(1 << 1);
    /// Invoking "executable" behaviour (e.g. running a program object).
    pub const EXECUTE: Rights = Rights(1 << 2);
    /// Full control: granted to the creator; required for administrative
    /// operations a type reserves to the owner.
    pub const OWNER: Rights = Rights(1 << 3);
    /// Destroying the object (releasing its name and long-term state).
    pub const DESTROY: Rights = Rights(1 << 4);
    /// Asking the kernel to move the object to another node (§4.3 allows
    /// "policy objects" to make location decisions for other objects).
    pub const MOVE: Rights = Rights(1 << 5);
    /// Freezing the object's representation (§4.3).
    pub const FREEZE: Rights = Rights(1 << 6);
    /// Forcing a checkpoint of the object from outside (administrative).
    pub const CHECKPOINT: Rights = Rights(1 << 7);

    /// The empty rights set.
    pub const fn empty() -> Rights {
        Rights(0)
    }

    /// Every right, conventional and type-defined.
    pub const fn all() -> Rights {
        Rights(u32::MAX)
    }

    /// The `n`-th type-defined right (`n < 24`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 24`, which would collide with the conventional bits.
    pub const fn user(n: u8) -> Rights {
        assert!(n < 24, "type-defined rights are limited to 24 bits");
        Rights(1 << (8 + n))
    }

    /// Builds a rights set from a raw mask (wire decoding, stores).
    pub const fn from_bits(bits: u32) -> Rights {
        Rights(bits)
    }

    /// The raw mask (wire encoding, stores).
    pub const fn bits(&self) -> u32 {
        self.0
    }

    /// Tests whether every right in `other` is present in `self`.
    pub const fn contains(&self, other: Rights) -> bool {
        self.0 & other.0 == other.0
    }

    /// Tests whether `self` and `other` share any right.
    pub const fn intersects(&self, other: Rights) -> bool {
        self.0 & other.0 != 0
    }

    /// Tests whether no rights are present.
    pub const fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Returns the rights in `self` that are missing from `held` — the set
    /// a rights-violation error reports.
    pub const fn missing_from(&self, held: Rights) -> Rights {
        Rights(self.0 & !held.0)
    }
}

impl BitOr for Rights {
    type Output = Rights;
    fn bitor(self, rhs: Rights) -> Rights {
        Rights(self.0 | rhs.0)
    }
}

impl BitAnd for Rights {
    type Output = Rights;
    fn bitand(self, rhs: Rights) -> Rights {
        Rights(self.0 & rhs.0)
    }
}

impl BitXor for Rights {
    type Output = Rights;
    fn bitxor(self, rhs: Rights) -> Rights {
        Rights(self.0 ^ rhs.0)
    }
}

impl Sub for Rights {
    type Output = Rights;
    fn sub(self, rhs: Rights) -> Rights {
        Rights(self.0 & !rhs.0)
    }
}

impl Not for Rights {
    type Output = Rights;
    fn not(self) -> Rights {
        Rights(!self.0)
    }
}

impl fmt::Debug for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u32::MAX {
            return write!(f, "Rights(ALL)");
        }
        let mut parts = Vec::new();
        for (bit, label) in [
            (Rights::READ, "READ"),
            (Rights::WRITE, "WRITE"),
            (Rights::EXECUTE, "EXECUTE"),
            (Rights::OWNER, "OWNER"),
            (Rights::DESTROY, "DESTROY"),
            (Rights::MOVE, "MOVE"),
            (Rights::FREEZE, "FREEZE"),
            (Rights::CHECKPOINT, "CHECKPOINT"),
        ] {
            if self.contains(bit) {
                parts.push(label.to_string());
            }
        }
        for n in 0..24u8 {
            if self.contains(Rights::user(n)) {
                parts.push(format!("U{n}"));
            }
        }
        write!(f, "Rights({})", parts.join("|"))
    }
}

impl fmt::Display for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_contains_only_empty() {
        assert!(Rights::empty().contains(Rights::empty()));
        assert!(!Rights::empty().contains(Rights::READ));
        assert!(Rights::empty().is_empty());
    }

    #[test]
    fn all_contains_everything() {
        assert!(Rights::all().contains(Rights::READ | Rights::user(23)));
    }

    #[test]
    fn user_bits_do_not_collide_with_conventional_bits() {
        let conventional = Rights::READ
            | Rights::WRITE
            | Rights::EXECUTE
            | Rights::OWNER
            | Rights::DESTROY
            | Rights::MOVE
            | Rights::FREEZE
            | Rights::CHECKPOINT;
        for n in 0..24u8 {
            assert!(!conventional.intersects(Rights::user(n)), "U{n} collides");
        }
    }

    #[test]
    #[should_panic(expected = "limited to 24 bits")]
    fn user_bit_out_of_range_panics() {
        let _ = Rights::user(24);
    }

    #[test]
    fn missing_from_reports_exact_gap() {
        let required = Rights::READ | Rights::WRITE;
        let held = Rights::READ;
        assert_eq!(required.missing_from(held), Rights::WRITE);
    }

    #[test]
    fn debug_lists_named_bits() {
        let s = format!("{:?}", Rights::READ | Rights::MOVE | Rights::user(3));
        assert!(s.contains("READ") && s.contains("MOVE") && s.contains("U3"));
    }

    proptest! {
        #[test]
        fn bits_round_trip(raw in 0u32..) {
            prop_assert_eq!(Rights::from_bits(raw).bits(), raw);
        }

        #[test]
        fn subtraction_removes_exactly(a in 0u32.., b in 0u32..) {
            let r = Rights::from_bits(a) - Rights::from_bits(b);
            prop_assert!(!r.intersects(Rights::from_bits(b)));
            prop_assert!(Rights::from_bits(a).contains(r));
        }

        #[test]
        fn intersection_is_contained_in_both(a in 0u32.., b in 0u32..) {
            let (ra, rb) = (Rights::from_bits(a), Rights::from_bits(b));
            let i = ra & rb;
            prop_assert!(ra.contains(i));
            prop_assert!(rb.contains(i));
        }

        #[test]
        fn union_contains_both(a in 0u32.., b in 0u32..) {
            let (ra, rb) = (Rights::from_bits(a), Rights::from_bits(b));
            prop_assert!((ra | rb).contains(ra));
            prop_assert!((ra | rb).contains(rb));
        }
    }
}
