/root/repo/target/debug/deps/figure1_topology-17d7b5062daec382.d: tests/figure1_topology.rs

/root/repo/target/debug/deps/figure1_topology-17d7b5062daec382: tests/figure1_topology.rs

tests/figure1_topology.rs:
