/root/repo/target/debug/deps/eden_efs-92dc1fc106aa76d7.d: crates/efs/src/lib.rs crates/efs/src/dir.rs crates/efs/src/efs.rs crates/efs/src/file.rs crates/efs/src/records.rs crates/efs/src/txn.rs

/root/repo/target/debug/deps/libeden_efs-92dc1fc106aa76d7.rlib: crates/efs/src/lib.rs crates/efs/src/dir.rs crates/efs/src/efs.rs crates/efs/src/file.rs crates/efs/src/records.rs crates/efs/src/txn.rs

/root/repo/target/debug/deps/libeden_efs-92dc1fc106aa76d7.rmeta: crates/efs/src/lib.rs crates/efs/src/dir.rs crates/efs/src/efs.rs crates/efs/src/file.rs crates/efs/src/records.rs crates/efs/src/txn.rs

crates/efs/src/lib.rs:
crates/efs/src/dir.rs:
crates/efs/src/efs.rs:
crates/efs/src/file.rs:
crates/efs/src/records.rs:
crates/efs/src/txn.rs:
