//! Unique names, access rights, capabilities and capability lists.
//!
//! This crate implements the addressing and protection substrate of the Eden
//! system (SOSP '81, §2 and §4.1):
//!
//! * [`ObjName`] — "a system-wide, unique-for-all-time binary identifier for
//!   the object; the name is location-independent, although it may indicate
//!   where the object was created."
//! * [`Rights`] — the access-right set carried by a capability. Operations
//!   declared by a type manager each require a subset of rights; the kernel
//!   verifies the invoker's rights before dispatching.
//! * [`Capability`] — "Eden objects refer to one another by means of
//!   capabilities, which contain both unique names and access rights."
//! * [`CList`] — the capability segment of an object's representation: the
//!   only place capabilities are stored long-term.
//!
//! Rights are *monotonic*: a holder can construct a capability with fewer
//! rights (see [`Capability::restrict`]) but the safe API offers no way to
//! add rights back. On the iAPX 432 unforgeability was enforced by tagged
//! hardware; in this reproduction it is enforced by convention — only the
//! kernel mints full-rights capabilities (at object creation), and type
//! managers receive capabilities exclusively through kernel-mediated
//! invocation parameters.

#![forbid(unsafe_code)]

pub mod clist;
pub mod name;
pub mod rights;

pub use clist::CList;
pub use name::{NameGenerator, NodeId, ObjName};
pub use rights::Rights;

/// A reference to an Eden object: a unique name plus access rights.
///
/// Possession of a capability with appropriate rights is the *only* way to
/// interact with an object (§4.1: "Only a user possessing a capability with
/// appropriate rights can request such a service from an object").
///
/// # Examples
///
/// ```
/// use eden_capability::{Capability, NameGenerator, NodeId, Rights};
///
/// let mut names = NameGenerator::new(NodeId(3));
/// let full = Capability::mint(names.next_name());
/// let read_only = full.restrict(Rights::READ);
/// assert!(read_only.rights().contains(Rights::READ));
/// assert!(!read_only.rights().contains(Rights::WRITE));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Capability {
    name: ObjName,
    rights: Rights,
}

impl Capability {
    /// Mints a full-rights capability for a freshly created object.
    ///
    /// Conceptually a kernel-only operation: the kernel returns the minted
    /// capability to the creator, who may then delegate restricted copies.
    pub fn mint(name: ObjName) -> Self {
        Capability {
            name,
            rights: Rights::all(),
        }
    }

    /// Builds a capability carrying an explicit rights set.
    ///
    /// Used by the kernel when reconstructing capabilities received in
    /// messages or loaded from a checkpoint; user code should derive
    /// capabilities with [`Capability::restrict`] instead.
    pub fn with_rights(name: ObjName, rights: Rights) -> Self {
        Capability { name, rights }
    }

    /// The unique name of the object this capability designates.
    pub fn name(&self) -> ObjName {
        self.name
    }

    /// The rights this capability carries.
    pub fn rights(&self) -> Rights {
        self.rights
    }

    /// Returns a copy of this capability restricted to `keep`.
    ///
    /// The result carries the intersection of the current rights and `keep`,
    /// so restriction is monotonic: no sequence of `restrict` calls can
    /// amplify rights.
    #[must_use]
    pub fn restrict(&self, keep: Rights) -> Self {
        Capability {
            name: self.name,
            rights: self.rights & keep,
        }
    }

    /// Tests whether this capability carries every right in `required`.
    pub fn permits(&self, required: Rights) -> bool {
        self.rights.contains(required)
    }
}

impl core::fmt::Debug for Capability {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Cap({:?}, {:?})", self.name, self.rights)
    }
}

impl core::fmt::Display for Capability {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}#{}", self.name, self.rights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name() -> ObjName {
        NameGenerator::new(NodeId(1)).next_name()
    }

    #[test]
    fn mint_carries_all_rights() {
        let cap = Capability::mint(name());
        assert!(cap.permits(Rights::all()));
        assert!(cap.permits(Rights::READ | Rights::WRITE | Rights::OWNER));
    }

    #[test]
    fn restrict_is_monotonic() {
        let cap = Capability::mint(name());
        let ro = cap.restrict(Rights::READ);
        assert!(ro.permits(Rights::READ));
        assert!(!ro.permits(Rights::WRITE));
        // Restricting to a superset does not add rights back.
        let attempted = ro.restrict(Rights::READ | Rights::WRITE);
        assert!(!attempted.permits(Rights::WRITE));
        assert_eq!(attempted.rights(), Rights::READ);
    }

    #[test]
    fn restrict_to_empty_permits_nothing_but_empty() {
        let cap = Capability::mint(name()).restrict(Rights::empty());
        assert!(cap.permits(Rights::empty()));
        assert!(!cap.permits(Rights::READ));
    }

    #[test]
    fn display_round_trips_name() {
        let cap = Capability::mint(name());
        let shown = format!("{cap}");
        assert!(shown.contains('#'));
    }

    #[test]
    fn equality_includes_rights() {
        let n = name();
        assert_ne!(
            Capability::with_rights(n, Rights::READ),
            Capability::with_rights(n, Rights::WRITE)
        );
        assert_eq!(
            Capability::with_rights(n, Rights::READ),
            Capability::with_rights(n, Rights::READ)
        );
    }
}
