//! The kernel-to-kernel protocol.
//!
//! Eden kernels exchange [`Frame`]s over the local network. A frame names
//! its source and destination node (or broadcast) and carries one
//! [`Message`]. The message set covers every inter-kernel interaction the
//! paper's kernel requires:
//!
//! * invocation forwarding and replies (§4.2);
//! * the location protocol — `WhereIs`/`HereIs` broadcasts the kernel uses
//!   "to determine the node on which the target object resides" (§2);
//! * object transfer for the `move` primitive (§4.3);
//! * replica distribution for frozen objects (§4.3);
//! * remote checkpoint traffic to a checksite node (§4.4: "the checksite
//!   node that is responsible for maintaining an object's long-term state
//!   need not be the node responsible for supporting its active
//!   execution").

use eden_capability::{Capability, NodeId, ObjName};
use eden_obs::TraceCtx;

use crate::codec::{CodecError, Reader, WireDecode, WireEncode, Writer};
use crate::image::ObjectImage;
use crate::status::Status;
use crate::value::Value;

/// Where a frame is going.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// A single node.
    Node(NodeId),
    /// Every other node on the network (location search, announcements).
    Broadcast,
}

/// How a node holds an object, reported in [`Message::HereIs`] replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeldState {
    /// The object is active on the replying node.
    Active,
    /// The replying node holds a checkpoint (the object is passive there).
    Passive,
    /// The replying node holds a frozen replica.
    FrozenReplica,
    /// The replying node does not hold the object at all. Negative answers
    /// let the querier's collector count down the locate window instead of
    /// always sleeping it out (every peer answered → nobody has it).
    NotHeld,
}

/// Liveness of a cluster member as disseminated by the gossip protocol
/// (eden-directory). Precedence at equal incarnation: `Dead` > `Suspect` >
/// `Alive`; a higher incarnation always wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemberStatus {
    /// The member answered a recent probe (directly or indirectly).
    Alive,
    /// Probes are timing out; the member may be partitioned or dead.
    Suspect,
    /// The suspicion timeout expired without a refutation.
    Dead,
}

impl MemberStatus {
    /// A stable short label for scrapes and logs.
    pub fn label(&self) -> &'static str {
        match self {
            MemberStatus::Alive => "alive",
            MemberStatus::Suspect => "suspect",
            MemberStatus::Dead => "dead",
        }
    }
}

/// One piggybacked membership rumor: `node` is believed to be `status` at
/// `incarnation`. Rides on every gossip frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberUpdate {
    /// The member the rumor is about.
    pub node: NodeId,
    /// The member's incarnation number (only the member itself bumps it,
    /// to refute a false suspicion).
    pub incarnation: u64,
    /// The rumored liveness.
    pub status: MemberStatus,
}

/// What the home node knows about an object, reported in
/// [`Message::DirAnswer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// A registration exists and its holder looks reachable.
    Hit,
    /// No registration for the object.
    Miss,
    /// A registration exists but its holder is currently suspected; the
    /// directory withholds it until the suspicion is refuted or confirmed.
    Suspect,
}

/// What a [`Message::DirRegister`] is recording at the home node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirRegisterKind {
    /// `holder` runs the object's active form (create / move-in /
    /// reincarnation / passive activation).
    Active,
    /// `holder` stores a checkpoint (failover fallback when the active
    /// holder dies).
    Checkpoint,
    /// Remove the active registration if it still names `holder`
    /// (crash / destroy).
    Drop,
}

/// One kernel-to-kernel protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Forward an invocation to the node holding the target object.
    InvokeRequest {
        /// Correlates the eventual [`Message::InvokeReply`].
        inv_id: u64,
        /// The capability presented by the invoker (rights travel with it).
        target: Capability,
        /// The operation name.
        operation: String,
        /// Data and capability parameters.
        args: Vec<Value>,
        /// Node to send the reply to.
        reply_to: NodeId,
        /// Remaining forwarding budget; decremented per hop so forwarding
        /// chains (after moves) terminate.
        hops: u8,
    },
    /// The status and return parameters of a completed invocation.
    InvokeReply {
        /// Matches the request's `inv_id`.
        inv_id: u64,
        /// Outcome.
        status: Status,
        /// Return parameters (valid when `status` is `Ok`).
        results: Vec<Value>,
    },
    /// Broadcast: who holds this object?
    WhereIs {
        /// Correlates [`Message::HereIs`] replies.
        query_id: u64,
        /// The object being located.
        name: ObjName,
        /// Node to reply to.
        reply_to: NodeId,
    },
    /// Reply to [`Message::WhereIs`]: the sender holds the object.
    HereIs {
        /// Matches the query.
        query_id: u64,
        /// The object.
        name: ObjName,
        /// How the sender holds it.
        state: HeldState,
    },
    /// Transfer an object's representation to the destination node (§4.3).
    MoveTransfer {
        /// Correlates the [`Message::MoveAck`].
        xfer_id: u64,
        /// The object being moved.
        name: ObjName,
        /// Its representation image.
        image: ObjectImage,
        /// Node to acknowledge to (the source).
        reply_to: NodeId,
    },
    /// Accept/reject a [`Message::MoveTransfer`].
    MoveAck {
        /// Matches the transfer.
        xfer_id: u64,
        /// Whether the destination installed the object.
        accepted: bool,
        /// Reason when rejected (unknown type, shutting down, …).
        reason: String,
    },
    /// Ask a node for a frozen object's replica (§4.3).
    ReplicaRequest {
        /// Correlates the [`Message::ReplicaPush`].
        req_id: u64,
        /// The frozen object.
        name: ObjName,
        /// Node to reply to.
        reply_to: NodeId,
    },
    /// Deliver (or refuse) a frozen replica.
    ReplicaPush {
        /// Matches the request.
        req_id: u64,
        /// The frozen object.
        name: ObjName,
        /// The frozen image; `None` if the sender cannot supply it.
        image: Option<ObjectImage>,
    },
    /// Write a checkpoint at a remote checksite (§4.4).
    CheckpointPut {
        /// Correlates the [`Message::CheckpointAck`].
        req_id: u64,
        /// The object being checkpointed.
        name: ObjName,
        /// The representation image to persist.
        image: ObjectImage,
        /// Node to acknowledge to.
        reply_to: NodeId,
    },
    /// Acknowledge a checkpoint write.
    CheckpointAck {
        /// Matches the put.
        req_id: u64,
        /// Whether the checkpoint is durable.
        ok: bool,
        /// The stored version number.
        version: u64,
    },
    /// Fetch the latest checkpoint of an object (reincarnation after the
    /// active node failed, or activation at a node other than the
    /// checksite).
    CheckpointFetch {
        /// Correlates the [`Message::CheckpointData`].
        req_id: u64,
        /// The object whose checkpoint is wanted.
        name: ObjName,
        /// Node to reply to.
        reply_to: NodeId,
    },
    /// Deliver (or refuse) a checkpoint.
    CheckpointData {
        /// Matches the fetch.
        req_id: u64,
        /// The object.
        name: ObjName,
        /// The latest checkpoint image, if the sender has one.
        image: Option<ObjectImage>,
    },
    /// Remove every checkpoint of an object at a remote checksite
    /// (object destruction).
    CheckpointDelete {
        /// Correlates the [`Message::CheckpointAck`].
        req_id: u64,
        /// The object being destroyed.
        name: ObjName,
        /// Node to acknowledge to.
        reply_to: NodeId,
    },
    /// Liveness probe, used by failure-injection tests and the cluster
    /// harness.
    Ping {
        /// Correlates the [`Message::Pong`].
        token: u64,
    },
    /// Liveness reply.
    Pong {
        /// Matches the ping.
        token: u64,
    },
    /// SWIM direct probe (eden-directory membership). The target answers
    /// [`Message::GossipAck`] to `reply_to`, which may be a third node when
    /// the ping was relayed by a [`Message::GossipPingReq`].
    GossipPing {
        /// Correlates the ack with the prober's pending probe.
        seq: u64,
        /// Node the ack should go to (the original prober).
        reply_to: NodeId,
        /// Piggybacked membership rumors.
        updates: Vec<MemberUpdate>,
    },
    /// SWIM probe acknowledgement.
    GossipAck {
        /// Matches the probe.
        seq: u64,
        /// Piggybacked membership rumors.
        updates: Vec<MemberUpdate>,
    },
    /// SWIM indirect probe: asks the receiver to ping `target` on behalf
    /// of `reply_to` (the prober whose direct ping timed out).
    GossipPingReq {
        /// Correlates the eventual ack with the prober's pending probe.
        seq: u64,
        /// The member to probe.
        target: NodeId,
        /// The original prober; the target acks straight back to it.
        reply_to: NodeId,
        /// Piggybacked membership rumors.
        updates: Vec<MemberUpdate>,
    },
    /// Record at the object's home node who holds it. Fire-and-forget:
    /// registrations are hints (a lost one degrades a later locate to the
    /// broadcast fallback, never to a wrong answer).
    DirRegister {
        /// The object being registered.
        name: ObjName,
        /// The holding (or dropping) node.
        holder: NodeId,
        /// What is being recorded.
        kind: DirRegisterKind,
    },
    /// Ask an object's home node who holds it — the O(1) replacement for
    /// the broadcast [`Message::WhereIs`].
    DirQuery {
        /// Correlates the [`Message::DirAnswer`].
        query_id: u64,
        /// The object being located.
        name: ObjName,
        /// Node to reply to.
        reply_to: NodeId,
    },
    /// The home node's answer to a [`Message::DirQuery`].
    DirAnswer {
        /// Matches the query.
        query_id: u64,
        /// The object.
        name: ObjName,
        /// The registered holder, when `state` is `Hit`.
        holder: Option<NodeId>,
        /// What the directory knows.
        state: DirState,
    },
}

impl Message {
    /// A stable short label for metrics and tracing.
    pub fn label(&self) -> &'static str {
        match self {
            Message::InvokeRequest { .. } => "invoke-request",
            Message::InvokeReply { .. } => "invoke-reply",
            Message::WhereIs { .. } => "where-is",
            Message::HereIs { .. } => "here-is",
            Message::MoveTransfer { .. } => "move-transfer",
            Message::MoveAck { .. } => "move-ack",
            Message::ReplicaRequest { .. } => "replica-request",
            Message::ReplicaPush { .. } => "replica-push",
            Message::CheckpointPut { .. } => "checkpoint-put",
            Message::CheckpointAck { .. } => "checkpoint-ack",
            Message::CheckpointFetch { .. } => "checkpoint-fetch",
            Message::CheckpointData { .. } => "checkpoint-data",
            Message::CheckpointDelete { .. } => "checkpoint-delete",
            Message::Ping { .. } => "ping",
            Message::Pong { .. } => "pong",
            Message::GossipPing { .. } => "gossip-ping",
            Message::GossipAck { .. } => "gossip-ack",
            Message::GossipPingReq { .. } => "gossip-ping-req",
            Message::DirRegister { .. } => "dir-register",
            Message::DirQuery { .. } => "dir-query",
            Message::DirAnswer { .. } => "dir-answer",
        }
    }

    /// True for the membership-protocol frames (probes, acks, rumors) that
    /// ride the mesh continuously in the background.
    pub fn is_gossip(&self) -> bool {
        matches!(
            self,
            Message::GossipPing { .. } | Message::GossipAck { .. } | Message::GossipPingReq { .. }
        )
    }
}

/// One unit of network delivery: source, destination, message.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node or broadcast.
    pub dst: Dest,
    /// The protocol message.
    pub msg: Message,
    /// Tracing context, carried as an optional trailing wire field so
    /// frames encoded before tracing existed still decode (to `None`).
    pub trace: Option<TraceCtx>,
}

impl Frame {
    /// Builds a unicast frame.
    pub fn to(src: NodeId, dst: NodeId, msg: Message) -> Self {
        Frame {
            src,
            dst: Dest::Node(dst),
            msg,
            trace: None,
        }
    }

    /// Builds a broadcast frame.
    pub fn broadcast(src: NodeId, msg: Message) -> Self {
        Frame {
            src,
            dst: Dest::Broadcast,
            msg,
            trace: None,
        }
    }

    /// Attaches a tracing context.
    pub fn with_trace(mut self, ctx: TraceCtx) -> Self {
        self.trace = Some(ctx);
        self
    }
}

const TAG_INVOKE_REQUEST: u8 = 0;
const TAG_INVOKE_REPLY: u8 = 1;
const TAG_WHERE_IS: u8 = 2;
const TAG_HERE_IS: u8 = 3;
const TAG_MOVE_TRANSFER: u8 = 4;
const TAG_MOVE_ACK: u8 = 5;
const TAG_REPLICA_REQUEST: u8 = 6;
const TAG_REPLICA_PUSH: u8 = 7;
const TAG_CHECKPOINT_PUT: u8 = 8;
const TAG_CHECKPOINT_ACK: u8 = 9;
const TAG_CHECKPOINT_FETCH: u8 = 10;
const TAG_CHECKPOINT_DATA: u8 = 11;
const TAG_CHECKPOINT_DELETE: u8 = 14;
const TAG_PING: u8 = 12;
const TAG_PONG: u8 = 13;
const TAG_GOSSIP_PING: u8 = 15;
const TAG_GOSSIP_ACK: u8 = 16;
const TAG_GOSSIP_PING_REQ: u8 = 17;
const TAG_DIR_REGISTER: u8 = 18;
const TAG_DIR_QUERY: u8 = 19;
const TAG_DIR_ANSWER: u8 = 20;

impl WireEncode for HeldState {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            HeldState::Active => 0,
            HeldState::Passive => 1,
            HeldState::FrozenReplica => 2,
            HeldState::NotHeld => 3,
        });
    }
}

impl WireDecode for HeldState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(HeldState::Active),
            1 => Ok(HeldState::Passive),
            2 => Ok(HeldState::FrozenReplica),
            3 => Ok(HeldState::NotHeld),
            tag => Err(CodecError::BadTag {
                what: "HeldState",
                tag,
            }),
        }
    }
}

impl WireEncode for MemberStatus {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            MemberStatus::Alive => 0,
            MemberStatus::Suspect => 1,
            MemberStatus::Dead => 2,
        });
    }
}

impl WireDecode for MemberStatus {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(MemberStatus::Alive),
            1 => Ok(MemberStatus::Suspect),
            2 => Ok(MemberStatus::Dead),
            tag => Err(CodecError::BadTag {
                what: "MemberStatus",
                tag,
            }),
        }
    }
}

impl WireEncode for MemberUpdate {
    fn encode(&self, w: &mut Writer) {
        self.node.encode(w);
        w.put_u64(self.incarnation);
        self.status.encode(w);
    }
}

impl WireDecode for MemberUpdate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MemberUpdate {
            node: NodeId::decode(r)?,
            incarnation: r.get_u64()?,
            status: MemberStatus::decode(r)?,
        })
    }
}

impl WireEncode for DirState {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            DirState::Hit => 0,
            DirState::Miss => 1,
            DirState::Suspect => 2,
        });
    }
}

impl WireDecode for DirState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(DirState::Hit),
            1 => Ok(DirState::Miss),
            2 => Ok(DirState::Suspect),
            tag => Err(CodecError::BadTag {
                what: "DirState",
                tag,
            }),
        }
    }
}

impl WireEncode for DirRegisterKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            DirRegisterKind::Active => 0,
            DirRegisterKind::Checkpoint => 1,
            DirRegisterKind::Drop => 2,
        });
    }
}

impl WireDecode for DirRegisterKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(DirRegisterKind::Active),
            1 => Ok(DirRegisterKind::Checkpoint),
            2 => Ok(DirRegisterKind::Drop),
            tag => Err(CodecError::BadTag {
                what: "DirRegisterKind",
                tag,
            }),
        }
    }
}

impl WireEncode for Message {
    fn encode(&self, w: &mut Writer) {
        match self {
            Message::InvokeRequest {
                inv_id,
                target,
                operation,
                args,
                reply_to,
                hops,
            } => {
                w.put_u8(TAG_INVOKE_REQUEST);
                w.put_u64(*inv_id);
                target.encode(w);
                w.put_str(operation);
                w.put_seq(args);
                reply_to.encode(w);
                w.put_u8(*hops);
            }
            Message::InvokeReply {
                inv_id,
                status,
                results,
            } => {
                w.put_u8(TAG_INVOKE_REPLY);
                w.put_u64(*inv_id);
                status.encode(w);
                w.put_seq(results);
            }
            Message::WhereIs {
                query_id,
                name,
                reply_to,
            } => {
                w.put_u8(TAG_WHERE_IS);
                w.put_u64(*query_id);
                name.encode(w);
                reply_to.encode(w);
            }
            Message::HereIs {
                query_id,
                name,
                state,
            } => {
                w.put_u8(TAG_HERE_IS);
                w.put_u64(*query_id);
                name.encode(w);
                state.encode(w);
            }
            Message::MoveTransfer {
                xfer_id,
                name,
                image,
                reply_to,
            } => {
                w.put_u8(TAG_MOVE_TRANSFER);
                w.put_u64(*xfer_id);
                name.encode(w);
                image.encode(w);
                reply_to.encode(w);
            }
            Message::MoveAck {
                xfer_id,
                accepted,
                reason,
            } => {
                w.put_u8(TAG_MOVE_ACK);
                w.put_u64(*xfer_id);
                w.put_bool(*accepted);
                w.put_str(reason);
            }
            Message::ReplicaRequest {
                req_id,
                name,
                reply_to,
            } => {
                w.put_u8(TAG_REPLICA_REQUEST);
                w.put_u64(*req_id);
                name.encode(w);
                reply_to.encode(w);
            }
            Message::ReplicaPush {
                req_id,
                name,
                image,
            } => {
                w.put_u8(TAG_REPLICA_PUSH);
                w.put_u64(*req_id);
                name.encode(w);
                w.put_option(image);
            }
            Message::CheckpointPut {
                req_id,
                name,
                image,
                reply_to,
            } => {
                w.put_u8(TAG_CHECKPOINT_PUT);
                w.put_u64(*req_id);
                name.encode(w);
                image.encode(w);
                reply_to.encode(w);
            }
            Message::CheckpointAck {
                req_id,
                ok,
                version,
            } => {
                w.put_u8(TAG_CHECKPOINT_ACK);
                w.put_u64(*req_id);
                w.put_bool(*ok);
                w.put_u64(*version);
            }
            Message::CheckpointFetch {
                req_id,
                name,
                reply_to,
            } => {
                w.put_u8(TAG_CHECKPOINT_FETCH);
                w.put_u64(*req_id);
                name.encode(w);
                reply_to.encode(w);
            }
            Message::CheckpointData {
                req_id,
                name,
                image,
            } => {
                w.put_u8(TAG_CHECKPOINT_DATA);
                w.put_u64(*req_id);
                name.encode(w);
                w.put_option(image);
            }
            Message::CheckpointDelete {
                req_id,
                name,
                reply_to,
            } => {
                w.put_u8(TAG_CHECKPOINT_DELETE);
                w.put_u64(*req_id);
                name.encode(w);
                reply_to.encode(w);
            }
            Message::Ping { token } => {
                w.put_u8(TAG_PING);
                w.put_u64(*token);
            }
            Message::Pong { token } => {
                w.put_u8(TAG_PONG);
                w.put_u64(*token);
            }
            Message::GossipPing {
                seq,
                reply_to,
                updates,
            } => {
                w.put_u8(TAG_GOSSIP_PING);
                w.put_u64(*seq);
                reply_to.encode(w);
                w.put_seq(updates);
            }
            Message::GossipAck { seq, updates } => {
                w.put_u8(TAG_GOSSIP_ACK);
                w.put_u64(*seq);
                w.put_seq(updates);
            }
            Message::GossipPingReq {
                seq,
                target,
                reply_to,
                updates,
            } => {
                w.put_u8(TAG_GOSSIP_PING_REQ);
                w.put_u64(*seq);
                target.encode(w);
                reply_to.encode(w);
                w.put_seq(updates);
            }
            Message::DirRegister { name, holder, kind } => {
                w.put_u8(TAG_DIR_REGISTER);
                name.encode(w);
                holder.encode(w);
                kind.encode(w);
            }
            Message::DirQuery {
                query_id,
                name,
                reply_to,
            } => {
                w.put_u8(TAG_DIR_QUERY);
                w.put_u64(*query_id);
                name.encode(w);
                reply_to.encode(w);
            }
            Message::DirAnswer {
                query_id,
                name,
                holder,
                state,
            } => {
                w.put_u8(TAG_DIR_ANSWER);
                w.put_u64(*query_id);
                name.encode(w);
                w.put_option(holder);
                state.encode(w);
            }
        }
    }
}

impl WireDecode for Message {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            TAG_INVOKE_REQUEST => Ok(Message::InvokeRequest {
                inv_id: r.get_u64()?,
                target: Capability::decode(r)?,
                operation: r.get_str()?,
                args: r.get_seq()?,
                reply_to: NodeId::decode(r)?,
                hops: r.get_u8()?,
            }),
            TAG_INVOKE_REPLY => Ok(Message::InvokeReply {
                inv_id: r.get_u64()?,
                status: Status::decode(r)?,
                results: r.get_seq()?,
            }),
            TAG_WHERE_IS => Ok(Message::WhereIs {
                query_id: r.get_u64()?,
                name: ObjName::decode(r)?,
                reply_to: NodeId::decode(r)?,
            }),
            TAG_HERE_IS => Ok(Message::HereIs {
                query_id: r.get_u64()?,
                name: ObjName::decode(r)?,
                state: HeldState::decode(r)?,
            }),
            TAG_MOVE_TRANSFER => Ok(Message::MoveTransfer {
                xfer_id: r.get_u64()?,
                name: ObjName::decode(r)?,
                image: ObjectImage::decode(r)?,
                reply_to: NodeId::decode(r)?,
            }),
            TAG_MOVE_ACK => Ok(Message::MoveAck {
                xfer_id: r.get_u64()?,
                accepted: r.get_bool()?,
                reason: r.get_str()?,
            }),
            TAG_REPLICA_REQUEST => Ok(Message::ReplicaRequest {
                req_id: r.get_u64()?,
                name: ObjName::decode(r)?,
                reply_to: NodeId::decode(r)?,
            }),
            TAG_REPLICA_PUSH => Ok(Message::ReplicaPush {
                req_id: r.get_u64()?,
                name: ObjName::decode(r)?,
                image: r.get_option()?,
            }),
            TAG_CHECKPOINT_PUT => Ok(Message::CheckpointPut {
                req_id: r.get_u64()?,
                name: ObjName::decode(r)?,
                image: ObjectImage::decode(r)?,
                reply_to: NodeId::decode(r)?,
            }),
            TAG_CHECKPOINT_ACK => Ok(Message::CheckpointAck {
                req_id: r.get_u64()?,
                ok: r.get_bool()?,
                version: r.get_u64()?,
            }),
            TAG_CHECKPOINT_FETCH => Ok(Message::CheckpointFetch {
                req_id: r.get_u64()?,
                name: ObjName::decode(r)?,
                reply_to: NodeId::decode(r)?,
            }),
            TAG_CHECKPOINT_DATA => Ok(Message::CheckpointData {
                req_id: r.get_u64()?,
                name: ObjName::decode(r)?,
                image: r.get_option()?,
            }),
            TAG_CHECKPOINT_DELETE => Ok(Message::CheckpointDelete {
                req_id: r.get_u64()?,
                name: ObjName::decode(r)?,
                reply_to: NodeId::decode(r)?,
            }),
            TAG_PING => Ok(Message::Ping {
                token: r.get_u64()?,
            }),
            TAG_PONG => Ok(Message::Pong {
                token: r.get_u64()?,
            }),
            TAG_GOSSIP_PING => Ok(Message::GossipPing {
                seq: r.get_u64()?,
                reply_to: NodeId::decode(r)?,
                updates: r.get_seq()?,
            }),
            TAG_GOSSIP_ACK => Ok(Message::GossipAck {
                seq: r.get_u64()?,
                updates: r.get_seq()?,
            }),
            TAG_GOSSIP_PING_REQ => Ok(Message::GossipPingReq {
                seq: r.get_u64()?,
                target: NodeId::decode(r)?,
                reply_to: NodeId::decode(r)?,
                updates: r.get_seq()?,
            }),
            TAG_DIR_REGISTER => Ok(Message::DirRegister {
                name: ObjName::decode(r)?,
                holder: NodeId::decode(r)?,
                kind: DirRegisterKind::decode(r)?,
            }),
            TAG_DIR_QUERY => Ok(Message::DirQuery {
                query_id: r.get_u64()?,
                name: ObjName::decode(r)?,
                reply_to: NodeId::decode(r)?,
            }),
            TAG_DIR_ANSWER => Ok(Message::DirAnswer {
                query_id: r.get_u64()?,
                name: ObjName::decode(r)?,
                holder: r.get_option()?,
                state: DirState::decode(r)?,
            }),
            tag => Err(CodecError::BadTag {
                what: "Message",
                tag,
            }),
        }
    }
}

impl WireEncode for TraceCtx {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.trace_id);
        w.put_u64(self.parent_span);
        w.put_u64(self.span_id);
    }
}

impl WireDecode for TraceCtx {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(TraceCtx {
            trace_id: r.get_u64()?,
            parent_span: r.get_u64()?,
            span_id: r.get_u64()?,
        })
    }
}

impl WireEncode for Frame {
    fn encode(&self, w: &mut Writer) {
        self.src.encode(w);
        match self.dst {
            Dest::Node(n) => {
                w.put_u8(0);
                n.encode(w);
            }
            Dest::Broadcast => w.put_u8(1),
        }
        self.msg.encode(w);
        // The trace context is a trailing field: frames from senders that
        // predate it simply end here, so `decode` treats "no bytes left"
        // as `None` rather than an error.
        w.put_option(&self.trace);
    }
}

impl WireDecode for Frame {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let src = NodeId::decode(r)?;
        let dst = match r.get_u8()? {
            0 => Dest::Node(NodeId::decode(r)?),
            1 => Dest::Broadcast,
            tag => return Err(CodecError::BadTag { what: "Dest", tag }),
        };
        let msg = Message::decode(r)?;
        let trace = if r.remaining() == 0 {
            None // pre-tracing frame layout
        } else {
            r.get_option()?
        };
        Ok(Frame {
            src,
            dst,
            msg,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_capability::{NameGenerator, Rights};
    use proptest::prelude::*;

    fn sample_name() -> ObjName {
        NameGenerator::with_epoch(NodeId(3), 11).next_name()
    }

    fn sample_messages() -> Vec<Message> {
        let name = sample_name();
        let cap = Capability::mint(name).restrict(Rights::READ | Rights::WRITE);
        vec![
            Message::InvokeRequest {
                inv_id: 1,
                target: cap,
                operation: "put".into(),
                args: vec![Value::Str("this is a new line".into())],
                reply_to: NodeId(0),
                hops: 4,
            },
            Message::InvokeReply {
                inv_id: 1,
                status: Status::Ok,
                results: vec![Value::U64(17)],
            },
            Message::WhereIs {
                query_id: 2,
                name,
                reply_to: NodeId(1),
            },
            Message::HereIs {
                query_id: 2,
                name,
                state: HeldState::FrozenReplica,
            },
            Message::MoveTransfer {
                xfer_id: 3,
                name,
                image: ObjectImage::empty("file"),
                reply_to: NodeId(2),
            },
            Message::MoveAck {
                xfer_id: 3,
                accepted: false,
                reason: "unknown type".into(),
            },
            Message::ReplicaRequest {
                req_id: 4,
                name,
                reply_to: NodeId(3),
            },
            Message::ReplicaPush {
                req_id: 4,
                name,
                image: Some(ObjectImage::empty("dict")),
            },
            Message::CheckpointPut {
                req_id: 5,
                name,
                image: ObjectImage::empty("mailbox"),
                reply_to: NodeId(4),
            },
            Message::CheckpointAck {
                req_id: 5,
                ok: true,
                version: 12,
            },
            Message::CheckpointFetch {
                req_id: 6,
                name,
                reply_to: NodeId(5),
            },
            Message::CheckpointData {
                req_id: 6,
                name,
                image: None,
            },
            Message::CheckpointDelete {
                req_id: 8,
                name,
                reply_to: NodeId(6),
            },
            Message::Ping { token: 7 },
            Message::Pong { token: 7 },
            Message::GossipPing {
                seq: 9,
                reply_to: NodeId(2),
                updates: vec![MemberUpdate {
                    node: NodeId(4),
                    incarnation: 3,
                    status: MemberStatus::Suspect,
                }],
            },
            Message::GossipAck {
                seq: 9,
                updates: vec![
                    MemberUpdate {
                        node: NodeId(4),
                        incarnation: 4,
                        status: MemberStatus::Alive,
                    },
                    MemberUpdate {
                        node: NodeId(1),
                        incarnation: 0,
                        status: MemberStatus::Dead,
                    },
                ],
            },
            Message::GossipPingReq {
                seq: 10,
                target: NodeId(4),
                reply_to: NodeId(0),
                updates: vec![],
            },
            Message::DirRegister {
                name,
                holder: NodeId(5),
                kind: DirRegisterKind::Active,
            },
            Message::DirQuery {
                query_id: 11,
                name,
                reply_to: NodeId(6),
            },
            Message::DirAnswer {
                query_id: 11,
                name,
                holder: Some(NodeId(5)),
                state: DirState::Hit,
            },
        ]
    }

    #[test]
    fn every_message_variant_round_trips() {
        for msg in sample_messages() {
            let frame = Frame::to(NodeId(8), NodeId(9), msg.clone());
            let buf = frame.encode_to_bytes();
            let back = Frame::decode_from_bytes(&buf).unwrap();
            assert_eq!(back, frame, "variant {}", msg.label());
        }
    }

    #[test]
    fn directory_edge_cases_round_trip() {
        let name = sample_name();
        for msg in [
            Message::HereIs {
                query_id: 21,
                name,
                state: HeldState::NotHeld,
            },
            Message::DirAnswer {
                query_id: 22,
                name,
                holder: None,
                state: DirState::Miss,
            },
            Message::DirAnswer {
                query_id: 23,
                name,
                holder: None,
                state: DirState::Suspect,
            },
            Message::DirRegister {
                name,
                holder: NodeId(3),
                kind: DirRegisterKind::Drop,
            },
            Message::DirRegister {
                name,
                holder: NodeId(2),
                kind: DirRegisterKind::Checkpoint,
            },
        ] {
            let frame = Frame::to(NodeId(0), NodeId(1), msg.clone());
            let buf = frame.encode_to_bytes();
            assert_eq!(
                Frame::decode_from_bytes(&buf).unwrap(),
                frame,
                "variant {}",
                msg.label()
            );
        }
    }

    #[test]
    fn broadcast_frames_round_trip() {
        let frame = Frame::broadcast(NodeId(1), Message::Ping { token: 99 });
        let buf = frame.encode_to_bytes();
        assert_eq!(Frame::decode_from_bytes(&buf).unwrap(), frame);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            sample_messages().iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), sample_messages().len());
    }

    /// Encodes a frame in the pre-tracing layout: src, dst, msg, and
    /// nothing after — no presence byte for the trace field.
    fn encode_pre_trace_layout(frame: &Frame) -> Vec<u8> {
        let mut w = crate::codec::Writer::new();
        frame.src.encode(&mut w);
        match frame.dst {
            Dest::Node(n) => {
                w.put_u8(0);
                n.encode(&mut w);
            }
            Dest::Broadcast => w.put_u8(1),
        }
        frame.msg.encode(&mut w);
        w.finish().to_vec()
    }

    #[test]
    fn traced_frames_round_trip() {
        use eden_obs::TraceCtx;
        for msg in sample_messages() {
            let frame = Frame::to(NodeId(8), NodeId(9), msg).with_trace(TraceCtx {
                trace_id: 0x0001_0000_0000_0007,
                parent_span: 0x0001_0000_0000_0003,
                span_id: 0x0001_0000_0000_0009,
            });
            let buf = frame.encode_to_bytes();
            assert_eq!(Frame::decode_from_bytes(&buf).unwrap(), frame);
        }
    }

    proptest! {
        #[test]
        fn frame_decoding_garbage_never_panics(garbage in proptest::collection::vec(0u8.., 0..512)) {
            let _ = Frame::decode_from_bytes(&garbage);
        }

        #[test]
        fn shared_and_copying_frame_decoders_agree(
            inv_id in 0u64..,
            op in "[a-z]{1,12}",
            payload in proptest::collection::vec(0u8.., 0..512),
            garbage in proptest::collection::vec(0u8.., 0..256),
        ) {
            // The transport's receive path decodes zero-copy
            // (`decode_shared` slices the inbound buffer); it must agree
            // byte-for-byte with the copying decoder on valid frames...
            let frame = Frame::to(NodeId(1), NodeId(2), Message::InvokeRequest {
                inv_id,
                target: Capability::mint(sample_name()),
                operation: op,
                args: vec![
                    Value::Blob(bytes::Bytes::from(payload.clone())),
                    Value::List(vec![Value::Blob(bytes::Bytes::from(payload))]),
                ],
                reply_to: NodeId(3),
                hops: 2,
            });
            let buf = frame.encode_to_bytes();
            let copied = Frame::decode_from_bytes(&buf).unwrap();
            let shared = Frame::decode_shared(&buf).unwrap();
            prop_assert_eq!(&copied, &shared);
            prop_assert_eq!(&shared, &frame);
            // ...and on garbage, fail or succeed identically.
            let g = bytes::Bytes::from(garbage);
            prop_assert_eq!(Frame::decode_from_bytes(&g), Frame::decode_shared(&g));
        }

        #[test]
        fn pre_trace_layout_still_decodes(
            inv_id in 0u64..,
            op in "[a-z]{1,12}",
            token in 0u64..,
        ) {
            // Frames encoded by a sender that predates the trace field
            // (no trailing presence byte) must decode to trace: None.
            for msg in [
                Message::InvokeRequest {
                    inv_id,
                    target: Capability::mint(sample_name()),
                    operation: op.clone(),
                    args: vec![Value::U64(inv_id)],
                    reply_to: NodeId(1),
                    hops: 3,
                },
                Message::Ping { token },
            ] {
                let frame = Frame::to(NodeId(2), NodeId(5), msg);
                let old_buf = encode_pre_trace_layout(&frame);
                let back = Frame::decode_from_bytes(&old_buf).unwrap();
                prop_assert_eq!(back.trace, None);
                prop_assert_eq!(&back, &frame);
                // And the re-encoded form round-trips in the new layout.
                let new_buf = back.encode_to_bytes();
                prop_assert_eq!(Frame::decode_from_bytes(&new_buf).unwrap(), frame);
            }
        }

        #[test]
        fn truncated_trace_field_is_rejected_not_panicking(
            token in 0u64..,
            cut in 1usize..25,
        ) {
            use eden_obs::TraceCtx;
            let frame = Frame::to(NodeId(0), NodeId(1), Message::Pong { token })
                .with_trace(TraceCtx { trace_id: 1, parent_span: 2, span_id: 3 });
            let buf = frame.encode_to_bytes();
            // Chop bytes off the trailing trace field (1 presence byte +
            // 24 payload bytes): every truncation must error cleanly.
            let truncated = &buf[..buf.len() - cut];
            prop_assert_eq!(
                Frame::decode_from_bytes(truncated),
                Err(CodecError::UnexpectedEof)
            );
        }

        #[test]
        fn invoke_request_round_trips(
            inv_id in 0u64..,
            op in "[a-z]{1,12}",
            hops in 0u8..,
            payload in proptest::collection::vec(0u8.., 0..256),
        ) {
            let msg = Message::InvokeRequest {
                inv_id,
                target: Capability::mint(sample_name()),
                operation: op,
                args: vec![Value::Blob(bytes::Bytes::from(payload))],
                reply_to: NodeId(1),
                hops,
            };
            let frame = Frame::broadcast(NodeId(0), msg);
            let buf = frame.encode_to_bytes();
            prop_assert_eq!(Frame::decode_from_bytes(&buf).unwrap(), frame);
        }
    }
}
