//! E7 micro-benchmarks: discrete-event simulation speed and the
//! simulated throughput points themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eden_ethersim::{EthernetConfig, EthernetSim, FrameSizes, Workload};

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ethernet_sim_1s");
    for (stations, load) in [(5usize, 0.5), (16, 0.9), (16, 1.5), (64, 1.5)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("s{stations}_l{load}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    let sim = EthernetSim::new(
                        EthernetConfig::dix(),
                        Workload {
                            stations,
                            offered_load: load,
                            frame_sizes: FrameSizes::Fixed(1000),
                        },
                        7,
                    );
                    sim.run(1.0)
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_simulation
}
criterion_main!(benches);
