//! Long-term storage for Eden object state.
//!
//! §4.4: "an object can request that the kernel record its long-term state
//! (representation) on a reliable storage medium through invocation of the
//! kernel checkpoint primitive. … Following a node failure, if an
//! invocation is received, the object will be reincarnated from the state
//! that existed at the time the most recent checkpoint was executed."
//!
//! This crate provides the storage media behind that contract:
//!
//! * [`MemStore`] — a volatile store for tests and benchmarks that do not
//!   exercise durability.
//! * [`DiskStore`] — an append-only, CRC-checked, versioned log with
//!   recovery that truncates torn tails; the reproduction's equivalent of
//!   the file-server node's 300 MB disk (§3).
//! * [`ReplicatedStore`] — a k-way replicated composite implementing the
//!   §4.4 notion of *reliability levels*: "Different reliability levels may
//!   cause different actions when a checkpoint is issued."
//! * [`FaultyStore`] — a fault-injecting wrapper used by the test suite to
//!   exercise recovery paths.
//!
//! All stores are keyed by [`ObjName`] and hold uninterpreted checkpoint
//! bytes (encoded `eden_wire::ObjectImage`s in practice —
//! the store does not care). Versions are per-object, monotone, and
//! assigned by the store at `put` time.

#![forbid(unsafe_code)]

pub mod crc;
pub mod disk;
pub mod faulty;
pub mod mem;
pub mod replicated;

use std::sync::Arc;

use bytes::Bytes;
use eden_capability::ObjName;
use eden_obs::ObsRegistry;

pub use disk::DiskStore;
pub use faulty::{FaultPlan, FaultyStore};
pub use mem::MemStore;
pub use replicated::ReplicatedStore;

/// Errors produced by checkpoint stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O failure, with the underlying error rendered.
    Io(String),
    /// A record failed its integrity check while being read.
    Corrupt {
        /// The object whose record was damaged.
        name: ObjName,
        /// The damaged version.
        version: u64,
    },
    /// An injected fault (see [`FaultyStore`]).
    Injected(&'static str),
    /// Fewer than the required number of replicas acknowledged a write.
    QuorumFailed {
        /// Replicas that acknowledged.
        acked: usize,
        /// Replicas required.
        needed: usize,
    },
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::Corrupt { name, version } => {
                write!(f, "corrupt checkpoint record for {name} v{version}")
            }
            StoreError::Injected(what) => write!(f, "injected fault: {what}"),
            StoreError::QuorumFailed { acked, needed } => {
                write!(f, "only {acked}/{needed} replicas acknowledged")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// A versioned, crash-safe map from object names to checkpoint bytes.
///
/// Implementations must be safe to share between the kernel's virtual
/// processors (`Send + Sync`); `put` must be atomic — after a crash, either
/// the new version is fully readable or it is absent, never torn.
pub trait CheckpointStore: Send + Sync {
    /// Persists a new checkpoint for `name`, returning its version number.
    ///
    /// Versions are monotone per object: each successful `put` returns a
    /// number strictly greater than any previously returned for `name`.
    fn put(&self, name: ObjName, image: &[u8]) -> Result<u64, StoreError>;

    /// Returns the most recent checkpoint, if any.
    fn latest(&self, name: ObjName) -> Result<Option<(u64, Bytes)>, StoreError>;

    /// Returns a specific checkpoint version, if retained.
    fn get(&self, name: ObjName, version: u64) -> Result<Option<Bytes>, StoreError>;

    /// Lists the retained versions of `name`, oldest first.
    fn versions(&self, name: ObjName) -> Result<Vec<u64>, StoreError>;

    /// Removes every checkpoint of `name` (object destruction).
    fn delete(&self, name: ObjName) -> Result<(), StoreError>;

    /// Lists every object with at least one retained checkpoint.
    fn names(&self) -> Result<Vec<ObjName>, StoreError>;

    /// Forces buffered state to the medium.
    fn flush(&self) -> Result<(), StoreError>;

    /// Attaches an observability registry: stores that touch real media
    /// record `store.write` / `store.fsync` duration histograms into it.
    /// The default does nothing (in-memory stores have nothing worth
    /// timing).
    fn attach_obs(&self, obs: Arc<ObsRegistry>) {
        let _ = obs;
    }
}

#[cfg(test)]
pub(crate) mod contract {
    use super::*;
    use eden_capability::{NameGenerator, NodeId};

    /// The contract shared by all store implementations.
    pub(crate) fn exercise_store_contract(store: &dyn CheckpointStore) {
        let g = NameGenerator::with_epoch(NodeId(1), 0xabcd);
        let a = g.next_name();
        let b = g.next_name();

        assert_eq!(store.latest(a).unwrap(), None);
        assert!(store.versions(a).unwrap().is_empty());

        let v1 = store.put(a, b"state-1").unwrap();
        let v2 = store.put(a, b"state-2").unwrap();
        assert!(v2 > v1, "versions must be monotone");

        let (latest_v, latest_bytes) = store.latest(a).unwrap().unwrap();
        assert_eq!(latest_v, v2);
        assert_eq!(&latest_bytes[..], b"state-2");
        assert_eq!(&store.get(a, v1).unwrap().unwrap()[..], b"state-1");
        assert_eq!(store.get(a, 999_999).unwrap(), None);

        store.put(b, b"other").unwrap();
        let mut names = store.names().unwrap();
        names.sort();
        assert_eq!(names, vec![a, b]);

        store.delete(a).unwrap();
        assert_eq!(store.latest(a).unwrap(), None);
        assert_eq!(store.names().unwrap(), vec![b]);
        store.flush().unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_capability::{NameGenerator, NodeId};

    #[test]
    fn mem_store_satisfies_contract() {
        contract::exercise_store_contract(&MemStore::new());
    }

    #[test]
    fn stores_are_object_safe_and_shareable() {
        let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
        let g = NameGenerator::with_epoch(NodeId(2), 1);
        let name = g.next_name();
        let mut handles = Vec::new();
        for i in 0..8u8 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                store.put(name, &[i; 16]).unwrap()
            }));
        }
        let mut versions: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        versions.sort_unstable();
        versions.dedup();
        assert_eq!(
            versions.len(),
            8,
            "concurrent puts must get distinct versions"
        );
    }
}
