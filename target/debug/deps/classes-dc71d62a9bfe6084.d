/root/repo/target/debug/deps/classes-dc71d62a9bfe6084.d: crates/bench/benches/classes.rs Cargo.toml

/root/repo/target/debug/deps/libclasses-dc71d62a9bfe6084.rmeta: crates/bench/benches/classes.rs Cargo.toml

crates/bench/benches/classes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
