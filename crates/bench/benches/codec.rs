//! Substrate micro-benchmarks: the wire codec and the CRC behind the
//! checkpoint store.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eden_capability::{Capability, NameGenerator, NodeId};
use eden_store::crc::crc32;
use eden_wire::{Frame, Message, Value, WireDecode, WireEncode};

fn sample_frame(payload: usize) -> Frame {
    let g = NameGenerator::with_epoch(NodeId(1), 1);
    Frame::to(
        NodeId(0),
        NodeId(1),
        Message::InvokeRequest {
            inv_id: 42,
            target: Capability::mint(g.next_name()),
            operation: "put".into(),
            args: vec![Value::Blob(Bytes::from(vec![0u8; payload]))],
            reply_to: NodeId(0),
            hops: 8,
        },
    )
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    for payload in [64usize, 1024, 16384] {
        let frame = sample_frame(payload);
        let encoded = frame.encode_to_bytes();
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", payload), &frame, |b, f| {
            b.iter(|| f.encode_to_bytes())
        });
        group.bench_with_input(BenchmarkId::new("decode", payload), &encoded, |b, e| {
            b.iter(|| Frame::decode_from_bytes(e).expect("decode"))
        });
    }
    group.finish();
}

fn bench_crc(c: &mut Criterion) {
    let mut group = c.benchmark_group("crc32");
    for size in [1usize << 10, 64 << 10, 1 << 20] {
        let data = vec![0x5Au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| crc32(d))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_codec, bench_crc
}
criterion_main!(benches);
