/root/repo/target/debug/deps/eden_wire-fc278e423651c9e8.d: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/image.rs crates/wire/src/message.rs crates/wire/src/status.rs crates/wire/src/value.rs

/root/repo/target/debug/deps/eden_wire-fc278e423651c9e8: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/image.rs crates/wire/src/message.rs crates/wire/src/status.rs crates/wire/src/value.rs

crates/wire/src/lib.rs:
crates/wire/src/codec.rs:
crates/wire/src/image.rs:
crates/wire/src/message.rs:
crates/wire/src/status.rs:
crates/wire/src/value.rs:
