//! Edge-path tests: remote-checksite destruction, forwarding-budget
//! exhaustion, timeouts racing dispatch, frozen-object corner cases and
//! async-handle polling.

use std::time::{Duration, Instant};

use eden_capability::{NodeId, Rights};
use eden_kernel::{
    Cluster, EdenError, NodeConfig, OpCtx, OpError, OpResult, ReliabilityLevel, TypeManager,
    TypeSpec,
};
use eden_wire::{Status, Value};

struct Omni;

impl TypeManager for Omni {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new("omni")
            .class("slow", 1)
            .class("fast", 8)
            .op("set", "fast", Rights::WRITE)
            .op("get", "fast", Rights::READ)
            .op("sleep_ms", "slow", Rights::EXECUTE)
            .op("checkpoint", "fast", Rights::CHECKPOINT)
            .op("checksite", "fast", Rights::OWNER)
            .op("destroy", "fast", Rights::DESTROY)
            .op("freeze", "fast", Rights::FREEZE)
            .op("migrate", "fast", Rights::MOVE)
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "set" => {
                let v = OpCtx::str_arg(args, 0)?.to_string();
                ctx.mutate_repr(|r| r.put_str("v", &v))?;
                Ok(vec![])
            }
            "get" => Ok(vec![ctx
                .read_repr(|r| r.get_str("v"))
                .map(Value::Str)
                .unwrap_or(Value::Unit)]),
            "sleep_ms" => {
                std::thread::sleep(Duration::from_millis(
                    args.first().and_then(Value::as_u64).unwrap_or(0),
                ));
                Ok(vec![])
            }
            "checkpoint" => Ok(vec![Value::U64(ctx.checkpoint()?)]),
            "checksite" => {
                let node = OpCtx::u64_arg(args, 0)? as u16;
                ctx.set_checksite(NodeId(node), ReliabilityLevel::Local)?;
                Ok(vec![])
            }
            "destroy" => {
                ctx.destroy();
                Ok(vec![])
            }
            "freeze" => Ok(vec![Value::U64(ctx.freeze()?)]),
            "migrate" => {
                ctx.move_to(NodeId(OpCtx::u64_arg(args, 0)? as u16))?;
                Ok(vec![])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

fn cluster(n: usize) -> Cluster {
    Cluster::builder()
        .nodes(n)
        .register(|| Box::new(Omni))
        .build()
}

#[test]
fn destroy_deletes_checkpoints_at_a_remote_checksite() {
    let c = cluster(3);
    let cap = c.node(0).create_object("omni", &[]).unwrap();
    c.node(0)
        .invoke(cap, "checksite", &[Value::U64(1)])
        .unwrap();
    c.node(0)
        .invoke(cap, "set", &[Value::Str("doomed".into())])
        .unwrap();
    c.node(0).invoke(cap, "checkpoint", &[]).unwrap();
    assert!(matches!(c.node(1).store().latest(cap.name()), Ok(Some(_))));

    c.node(0).invoke(cap, "destroy", &[]).unwrap();
    // The CheckpointDelete reaches node 1 asynchronously.
    let deadline = Instant::now() + Duration::from_secs(3);
    loop {
        if matches!(c.node(1).store().latest(cap.name()), Ok(None)) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "remote checkpoints never deleted"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // Neither node resurrects it.
    for node in [0, 2] {
        let err = c
            .node(node)
            .invoke_with_timeout(cap, "get", &[], Duration::from_secs(2))
            .unwrap_err();
        assert!(
            matches!(
                err,
                EdenError::Invoke(Status::Destroyed) | EdenError::Invoke(Status::NoSuchObject)
            ),
            "node {node}: {err:?}"
        );
    }
}

#[test]
fn forwarding_budget_bounds_the_chase() {
    // hop_limit 1: a two-hop forwarding chain cannot be followed by the
    // forwarders alone. The invoke still succeeds via the broadcast
    // fallback (correctness), but no more than one forward happens per
    // request (the budget).
    let config = NodeConfig {
        hop_limit: 1,
        enable_location_cache: false, // Keep hitting the chain.
        remote_try_timeout: Duration::from_millis(300),
        ..Default::default()
    };
    let c = Cluster::builder()
        .nodes(4)
        .node_config(config)
        .register(|| Box::new(Omni))
        .build();
    let cap = c.node(0).create_object("omni", &[]).unwrap();
    for dst in [1u64, 2] {
        c.node(0)
            .invoke(cap, "migrate", &[Value::U64(dst)])
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !c.node(dst as usize).is_local(cap.name()) {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    // Node 3 invokes: birth hint → node 0 forwards (budget 1 → 0) →
    // node 1 cannot forward further; the requester falls back to
    // broadcast and reaches node 2 directly.
    let out = c
        .node(3)
        .invoke_with_timeout(cap, "get", &[], Duration::from_secs(5))
        .unwrap();
    assert_eq!(out, vec![Value::Unit]);
}

#[test]
fn timeout_while_queued_leaves_the_object_consistent() {
    let c = cluster(1);
    let cap = c.node(0).create_object("omni", &[]).unwrap();
    // Saturate the slow class (limit 1), then time out a queued call.
    let blocker = c.node(0).invoke_async(cap, "sleep_ms", &[Value::U64(300)]);
    std::thread::sleep(Duration::from_millis(30));
    let err = c
        .node(0)
        .invoke_with_timeout(cap, "sleep_ms", &[Value::U64(0)], Duration::from_millis(50))
        .unwrap_err();
    assert!(err.is_timeout());
    blocker.wait(Duration::from_secs(5)).unwrap();
    // The timed-out invocation still executes eventually (its reply is
    // dropped); the object keeps serving.
    let out = c.node(0).invoke(cap, "get", &[]).unwrap();
    assert_eq!(out, vec![Value::Unit]);
}

#[test]
fn frozen_objects_reject_checksite_changes_and_moves_keep_frozenness() {
    let c = cluster(2);
    let cap = c.node(0).create_object("omni", &[]).unwrap();
    c.node(0)
        .invoke(cap, "set", &[Value::Str("ice".into())])
        .unwrap();
    c.node(0).invoke(cap, "freeze", &[]).unwrap();

    // Checksite changes on a frozen object are refused.
    let err = c
        .node(0)
        .invoke(cap, "checksite", &[Value::U64(1)])
        .unwrap_err();
    assert!(
        matches!(err, EdenError::Invoke(Status::AppError { .. })),
        "{err:?}"
    );

    // Moving a frozen object keeps it frozen at the destination.
    c.node(0).move_object(cap, NodeId(1)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !c.node(1).is_local(cap.name()) {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }
    let info = c.node(1).object_info(cap.name()).unwrap();
    assert!(info.frozen, "frozenness must survive the move");
    let err = c
        .node(0)
        .invoke(cap, "set", &[Value::Str("thaw?".into())])
        .unwrap_err();
    assert_eq!(err, EdenError::Invoke(Status::Frozen));
}

#[test]
fn double_freeze_is_idempotent() {
    let c = cluster(1);
    let cap = c.node(0).create_object("omni", &[]).unwrap();
    c.node(0).invoke(cap, "freeze", &[]).unwrap();
    c.node(0).invoke(cap, "freeze", &[]).unwrap();
    assert!(c.node(0).object_info(cap.name()).unwrap().frozen);
}

#[test]
fn async_handles_poll_without_blocking() {
    let c = cluster(1);
    let cap = c.node(0).create_object("omni", &[]).unwrap();
    let h = c.node(0).invoke_async(cap, "sleep_ms", &[Value::U64(100)]);
    assert!(h.try_take().is_none(), "must not be ready instantly");
    let start = Instant::now();
    h.wait(Duration::from_secs(5)).unwrap();
    assert!(start.elapsed() >= Duration::from_millis(80));
    // A second wait after consumption behaves like a timeout (one-shot).
    assert!(h.wait(Duration::from_millis(10)).is_err());
}

#[test]
fn self_move_is_a_no_op_and_unknown_destination_errors() {
    let c = cluster(2);
    let cap = c.node(0).create_object("omni", &[]).unwrap();
    // Move to self: fine, nothing happens.
    c.node(0).invoke(cap, "migrate", &[Value::U64(0)]).unwrap();
    assert!(c.node(0).is_local(cap.name()));
    // Move to a node that does not exist: the type surfaces the error.
    let err = c
        .node(0)
        .invoke(cap, "migrate", &[Value::U64(77)])
        .unwrap_err();
    assert!(
        matches!(err, EdenError::Invoke(Status::AppError { .. })),
        "{err:?}"
    );
}

#[test]
fn concurrent_class_queue_drains_in_order_per_class() {
    let c = cluster(1);
    let cap = c.node(0).create_object("omni", &[]).unwrap();
    // Fill the slow class; fast ops keep flowing meanwhile.
    let slow: Vec<_> = (0..3)
        .map(|_| c.node(0).invoke_async(cap, "sleep_ms", &[Value::U64(50)]))
        .collect();
    let start = Instant::now();
    c.node(0)
        .invoke(cap, "set", &[Value::Str("concurrent".into())])
        .unwrap();
    assert!(
        start.elapsed() < Duration::from_millis(100),
        "a fast-class op must not wait behind the slow class"
    );
    for h in slow {
        h.wait(Duration::from_secs(5)).unwrap();
    }
}
