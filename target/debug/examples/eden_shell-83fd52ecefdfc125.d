/root/repo/target/debug/examples/eden_shell-83fd52ecefdfc125.d: examples/eden_shell.rs Cargo.toml

/root/repo/target/debug/examples/libeden_shell-83fd52ecefdfc125.rmeta: examples/eden_shell.rs Cargo.toml

examples/eden_shell.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
