// Fixture: ad-hoc atomic metrics (scanned as crates/core/src/telemetry.rs).
// Three violations: two metric-named atomic fields (one behind an Arc
// wrapper) and a metric-named atomic static.

use std::sync::atomic::AtomicU64;

struct Telemetry {
    invoke_count: AtomicU64,
    bytes_sent: Arc<std::sync::atomic::AtomicU64>,
}

pub static RETRY_TOTAL: AtomicU64 = AtomicU64::new(0);
