//! EFS transactions: two-phase commit with encapsulated concurrency
//! control.
//!
//! §5: EFS "will be transaction-based … concurrency control will be
//! encapsulated to facilitate experimentation with alternate approaches."
//! The coordinator ([`TxnManagerType`]) is itself an Eden object; the
//! discipline that orders conflicting transactions is a
//! [`ConcurrencyControl`] strategy chosen when the manager type is
//! registered. Two disciplines ship:
//!
//! * [`TwoPhaseLocking`] — strict 2PL: shared locks before reads,
//!   exclusive locks before writes, all held to commit/abort. Deadlocks
//!   are resolved by bounded lock retries followed by abort.
//! * [`OptimisticCC`] — no locks during execution; reads record the
//!   version they saw, and commit validates the read- and write-sets
//!   (`prepare` with an expected base version) before applying.
//!
//! Commit is two-phase across the written files: every participant
//! stages (`prepare`), then all apply (`commit`). Staged writes live in
//! participants' *short-term* state, so a crash anywhere before phase
//! two simply aborts — nothing torn is ever checkpointed. (A coordinator
//! crash *between* phase-two applies can commit a prefix; closing that
//! window needs a persistent coordinator log, which the paper leaves —
//! and we leave — as the research base EFS was meant to enable.)

use std::sync::Arc;
use std::time::Duration;

use eden_capability::{Capability, Rights};
use eden_kernel::{OpCtx, OpError, OpResult, TypeManager, TypeSpec};
use eden_wire::Value;

/// How many times a lock acquisition retries before the transaction
/// gives up (deadlock/starvation resolution).
const LOCK_RETRIES: u32 = 60;
/// Pause between lock retries.
const LOCK_RETRY_PAUSE: Duration = Duration::from_millis(3);

/// A concurrency-control discipline for EFS transactions.
pub trait ConcurrencyControl: Send + Sync {
    /// Short name, used in type registration and experiment tables.
    fn name(&self) -> &'static str;

    /// Runs before a transactional read of `file`. May block (locks).
    /// Returns the base version the read must be validated against at
    /// commit, if this discipline validates.
    fn before_read(
        &self,
        ctx: &OpCtx<'_>,
        txid: u64,
        file: Capability,
    ) -> Result<Option<u64>, OpError>;

    /// Runs before a read that intends to write (`read_for_update`).
    /// 2PL takes the exclusive lock immediately — the classic cure for
    /// shared-to-exclusive upgrade deadlocks in read-modify-write
    /// transactions; OCC records the version like a plain read.
    fn before_update(
        &self,
        ctx: &OpCtx<'_>,
        txid: u64,
        file: Capability,
    ) -> Result<Option<u64>, OpError> {
        self.before_read(ctx, txid, file)
    }

    /// Runs before buffering a transactional write of `file`.
    fn before_write(
        &self,
        ctx: &OpCtx<'_>,
        txid: u64,
        file: Capability,
    ) -> Result<Option<u64>, OpError>;

    /// Whether `prepare` carries an expected base version (optimistic
    /// validation) and the read set is checked at commit.
    fn validates_at_commit(&self) -> bool;
}

/// Retries a file `lock` operation until granted or the budget runs out.
fn acquire_lock(
    ctx: &OpCtx<'_>,
    txid: u64,
    file: Capability,
    exclusive: bool,
) -> Result<(), OpError> {
    for attempt in 0..LOCK_RETRIES {
        let out = ctx.invoke(file, "lock", &[Value::U64(txid), Value::Bool(exclusive)])?;
        if out.first().and_then(Value::as_bool) == Some(true) {
            return Ok(());
        }
        // Jitter by txid so two upgrade-deadlocked transactions do not
        // retry in lockstep forever.
        let jitter = Duration::from_millis(txid % 5);
        std::thread::sleep(LOCK_RETRY_PAUSE + jitter * (attempt % 3));
    }
    Err(OpError::app(
        408,
        "lock acquisition timed out (possible deadlock); transaction aborted",
    ))
}

/// Strict two-phase locking.
pub struct TwoPhaseLocking;

impl ConcurrencyControl for TwoPhaseLocking {
    fn name(&self) -> &'static str {
        "2pl"
    }

    fn before_read(
        &self,
        ctx: &OpCtx<'_>,
        txid: u64,
        file: Capability,
    ) -> Result<Option<u64>, OpError> {
        acquire_lock(ctx, txid, file, false)?;
        Ok(None)
    }

    fn before_update(
        &self,
        ctx: &OpCtx<'_>,
        txid: u64,
        file: Capability,
    ) -> Result<Option<u64>, OpError> {
        acquire_lock(ctx, txid, file, true)?;
        Ok(None)
    }

    fn before_write(
        &self,
        ctx: &OpCtx<'_>,
        txid: u64,
        file: Capability,
    ) -> Result<Option<u64>, OpError> {
        acquire_lock(ctx, txid, file, true)?;
        Ok(None)
    }

    fn validates_at_commit(&self) -> bool {
        false
    }
}

/// Optimistic concurrency control with backward validation at commit.
pub struct OptimisticCC;

impl OptimisticCC {
    fn base_version(ctx: &OpCtx<'_>, file: Capability) -> Result<u64, OpError> {
        let out = ctx.invoke(file, "latest_version", &[])?;
        out.first()
            .and_then(Value::as_u64)
            .ok_or_else(|| OpError::app(500, "file returned no version"))
    }
}

impl ConcurrencyControl for OptimisticCC {
    fn name(&self) -> &'static str {
        "occ"
    }

    fn before_read(
        &self,
        ctx: &OpCtx<'_>,
        _txid: u64,
        file: Capability,
    ) -> Result<Option<u64>, OpError> {
        Ok(Some(Self::base_version(ctx, file)?))
    }

    fn before_write(
        &self,
        ctx: &OpCtx<'_>,
        _txid: u64,
        file: Capability,
    ) -> Result<Option<u64>, OpError> {
        Ok(Some(Self::base_version(ctx, file)?))
    }

    fn validates_at_commit(&self) -> bool {
        true
    }
}

/// The transaction-coordinator type manager.
///
/// Operations (`all` class, limit 8 — distinct transactions proceed
/// concurrently; each transaction is driven serially by its client):
///
/// | op | effect |
/// |---|---|
/// | `begin` | new transaction id |
/// | `read [txid, file]` | transactional read (read-your-writes) |
/// | `write [txid, file, blob]` | buffer a write |
/// | `commit [txid]` | two-phase commit; returns `true` on commit, `false` on CC abort |
/// | `abort [txid]` | drop the transaction, release locks |
pub struct TxnManagerType {
    cc: Arc<dyn ConcurrencyControl>,
    type_name: &'static str,
}

impl TxnManagerType {
    /// The 2PL-flavoured manager (`efs.txn.2pl`).
    pub fn two_phase_locking() -> Self {
        TxnManagerType {
            cc: Arc::new(TwoPhaseLocking),
            type_name: "efs.txn.2pl",
        }
    }

    /// The optimistic manager (`efs.txn.occ`).
    pub fn optimistic() -> Self {
        TxnManagerType {
            cc: Arc::new(OptimisticCC),
            type_name: "efs.txn.occ",
        }
    }

    /// The registered type name for a CC discipline.
    pub fn name_for(cc: &str) -> String {
        format!("efs.txn.{cc}")
    }
}

// ----- Per-transaction scratch state helpers -----

fn writes_key(txid: u64) -> String {
    format!("tx:{txid}.writes")
}

fn reads_key(txid: u64) -> String {
    format!("tx:{txid}.reads")
}

fn locks_key(txid: u64) -> String {
    format!("tx:{txid}.locks")
}

/// Buffered writes: `[(file, data, base_version_or_absent)]`.
fn load_writes(ctx: &OpCtx<'_>, txid: u64) -> Vec<(Capability, bytes::Bytes, Option<u64>)> {
    let Some(Value::List(items)) = ctx.scratch_get(&writes_key(txid)) else {
        return Vec::new();
    };
    items
        .iter()
        .filter_map(|item| {
            let entry = item.as_list()?;
            let cap = entry.first()?.as_cap()?;
            let data = entry.get(1)?.as_blob()?.clone();
            let base = entry.get(2).and_then(Value::as_u64);
            Some((cap, data, base))
        })
        .collect()
}

fn store_writes(ctx: &OpCtx<'_>, txid: u64, writes: &[(Capability, bytes::Bytes, Option<u64>)]) {
    let items: Vec<Value> = writes
        .iter()
        .map(|(cap, data, base)| {
            let mut entry = vec![Value::Cap(*cap), Value::Blob(data.clone())];
            if let Some(b) = base {
                entry.push(Value::U64(*b));
            }
            Value::List(entry)
        })
        .collect();
    ctx.scratch_put(&writes_key(txid), Value::List(items));
}

/// Recorded reads: `[(file, version)]`.
fn load_reads(ctx: &OpCtx<'_>, txid: u64) -> Vec<(Capability, u64)> {
    let Some(Value::List(items)) = ctx.scratch_get(&reads_key(txid)) else {
        return Vec::new();
    };
    items
        .iter()
        .filter_map(|item| {
            let entry = item.as_list()?;
            Some((entry.first()?.as_cap()?, entry.get(1)?.as_u64()?))
        })
        .collect()
}

fn store_reads(ctx: &OpCtx<'_>, txid: u64, reads: &[(Capability, u64)]) {
    let items: Vec<Value> = reads
        .iter()
        .map(|(cap, v)| Value::List(vec![Value::Cap(*cap), Value::U64(*v)]))
        .collect();
    ctx.scratch_put(&reads_key(txid), Value::List(items));
}

/// Files holding locks for this transaction.
fn load_locks(ctx: &OpCtx<'_>, txid: u64) -> Vec<Capability> {
    let Some(Value::List(items)) = ctx.scratch_get(&locks_key(txid)) else {
        return Vec::new();
    };
    items.iter().filter_map(Value::as_cap).collect()
}

fn record_lock(ctx: &OpCtx<'_>, txid: u64, file: Capability) {
    let mut locks = load_locks(ctx, txid);
    if !locks.contains(&file) {
        locks.push(file);
        let items: Vec<Value> = locks.into_iter().map(Value::Cap).collect();
        ctx.scratch_put(&locks_key(txid), Value::List(items));
    }
}

fn clear_txn(ctx: &OpCtx<'_>, txid: u64) {
    ctx.scratch_remove(&writes_key(txid));
    ctx.scratch_remove(&reads_key(txid));
    ctx.scratch_remove(&locks_key(txid));
}

fn release_all_locks(ctx: &OpCtx<'_>, txid: u64) {
    for file in load_locks(ctx, txid) {
        let _ = ctx.invoke(file, "unlock", &[Value::U64(txid)]);
    }
}

impl TypeManager for TxnManagerType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(self.type_name)
            .class("all", 8)
            .op("begin", "all", Rights::WRITE)
            .op("read", "all", Rights::WRITE)
            .op("read_for_update", "all", Rights::WRITE)
            .op("write", "all", Rights::WRITE)
            .op("commit", "all", Rights::WRITE)
            .op("abort", "all", Rights::WRITE)
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "begin" => {
                let txid = ctx.mutate_repr(|r| {
                    let next = r.get_u64("next_txid").unwrap_or(1);
                    r.put_u64("next_txid", next + 1);
                    next
                })?;
                Ok(vec![Value::U64(txid)])
            }
            "read" | "read_for_update" => {
                let for_update = op == "read_for_update";
                let txid = OpCtx::u64_arg(args, 0)?;
                let file = OpCtx::cap_arg(args, 1)?;
                // Read-your-writes.
                let writes = load_writes(ctx, txid);
                if let Some((_, data, _)) = writes.iter().find(|(c, _, _)| *c == file) {
                    return Ok(vec![Value::Blob(data.clone())]);
                }
                let hook = if for_update {
                    self.cc.before_update(ctx, txid, file)
                } else {
                    self.cc.before_read(ctx, txid, file)
                };
                let recorded = match hook {
                    Ok(r) => r,
                    Err(e) => {
                        // Lock timeout (deadlock resolution): the whole
                        // transaction aborts so its locks release and the
                        // client can retry from the top.
                        release_all_locks(ctx, txid);
                        clear_txn(ctx, txid);
                        return Err(e);
                    }
                };
                if !self.cc.validates_at_commit() {
                    record_lock(ctx, txid, file);
                }
                let out = match recorded {
                    // Optimistic: read exactly the version we recorded so
                    // the snapshot and the validation agree.
                    Some(version) if version > 0 => {
                        let mut reads = load_reads(ctx, txid);
                        if !reads.iter().any(|(c, _)| *c == file) {
                            reads.push((file, version));
                            store_reads(ctx, txid, &reads);
                        }
                        ctx.invoke(file, "read", &[Value::U64(version)])?
                    }
                    Some(_) => {
                        // Version 0: the file is empty; record and return
                        // an empty read.
                        let mut reads = load_reads(ctx, txid);
                        if !reads.iter().any(|(c, _)| *c == file) {
                            reads.push((file, 0));
                            store_reads(ctx, txid, &reads);
                        }
                        vec![Value::Blob(bytes::Bytes::new())]
                    }
                    None => ctx.invoke(file, "read", &[])?,
                };
                Ok(out)
            }
            "write" => {
                let txid = OpCtx::u64_arg(args, 0)?;
                let file = OpCtx::cap_arg(args, 1)?;
                let data = args
                    .get(2)
                    .and_then(Value::as_blob)
                    .ok_or_else(|| OpError::type_error("write(txid, file, blob)"))?
                    .clone();
                let mut writes = load_writes(ctx, txid);
                if let Some(entry) = writes.iter_mut().find(|(c, _, _)| *c == file) {
                    entry.1 = data; // Overwrite within the transaction.
                } else {
                    let base = match self.cc.before_write(ctx, txid, file) {
                        Ok(b) => b,
                        Err(e) => {
                            release_all_locks(ctx, txid);
                            clear_txn(ctx, txid);
                            return Err(e);
                        }
                    };
                    if !self.cc.validates_at_commit() {
                        record_lock(ctx, txid, file);
                    }
                    writes.push((file, data, base));
                }
                store_writes(ctx, txid, &writes);
                Ok(vec![])
            }
            "commit" => {
                let txid = OpCtx::u64_arg(args, 0)?;
                let writes = load_writes(ctx, txid);
                let validating = self.cc.validates_at_commit();

                // Optimistic read-set validation (reads of files we did
                // not write must still be current).
                if validating {
                    for (file, version) in load_reads(ctx, txid) {
                        if writes.iter().any(|(c, _, _)| *c == file) {
                            continue; // Write validation covers it.
                        }
                        let out = ctx.invoke(file, "latest_version", &[])?;
                        if out.first().and_then(Value::as_u64) != Some(version) {
                            self.do_abort(ctx, txid, &writes)?;
                            return Ok(vec![Value::Bool(false)]);
                        }
                    }
                }

                // Phase one: prepare every participant. A written file
                // validates against the version this transaction *read*
                // (when it read one) — validating against the version
                // sampled at write time would admit lost updates when a
                // competitor commits between our read and our write.
                let reads = load_reads(ctx, txid);
                let mut prepared = Vec::new();
                for (file, data, base) in &writes {
                    let mut prep_args = vec![Value::U64(txid), Value::Blob(data.clone())];
                    if validating {
                        let expected = reads
                            .iter()
                            .find(|(c, _)| c == file)
                            .map(|(_, v)| *v)
                            .or(*base);
                        prep_args.push(Value::U64(expected.unwrap_or(0)));
                    }
                    let out = ctx.invoke(*file, "prepare", &prep_args)?;
                    if out.first().and_then(Value::as_bool) == Some(true) {
                        prepared.push(*file);
                    } else {
                        // Validation failed: abort everything staged.
                        for p in &prepared {
                            let _ = ctx.invoke(*p, "abort", &[Value::U64(txid)]);
                        }
                        self.do_abort(ctx, txid, &writes)?;
                        return Ok(vec![Value::Bool(false)]);
                    }
                }

                // Phase two: apply.
                for (file, _, _) in &writes {
                    ctx.invoke(*file, "commit", &[Value::U64(txid)])?;
                }
                release_all_locks(ctx, txid);
                clear_txn(ctx, txid);
                Ok(vec![Value::Bool(true)])
            }
            "abort" => {
                let txid = OpCtx::u64_arg(args, 0)?;
                let writes = load_writes(ctx, txid);
                for (file, _, _) in &writes {
                    let _ = ctx.invoke(*file, "abort", &[Value::U64(txid)]);
                }
                self.do_abort(ctx, txid, &writes)?;
                Ok(vec![])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

impl TxnManagerType {
    fn do_abort(
        &self,
        ctx: &OpCtx<'_>,
        txid: u64,
        _writes: &[(Capability, bytes::Bytes, Option<u64>)],
    ) -> Result<(), OpError> {
        release_all_locks(ctx, txid);
        clear_txn(ctx, txid);
        Ok(())
    }
}

/// A client-side transaction handle (drives one txid serially).
pub struct Transaction {
    node: eden_kernel::Node,
    manager: Capability,
    txid: u64,
    finished: bool,
}

impl Transaction {
    /// Begins a transaction on `manager`.
    pub fn begin(node: eden_kernel::Node, manager: Capability) -> eden_kernel::Result<Self> {
        let out = node.invoke(manager, "begin", &[])?;
        let txid = out
            .first()
            .and_then(Value::as_u64)
            .ok_or_else(|| eden_kernel::EdenError::BadRequest("manager returned no txid".into()))?;
        Ok(Transaction {
            node,
            manager,
            txid,
            finished: false,
        })
    }

    /// The transaction id.
    pub fn id(&self) -> u64 {
        self.txid
    }

    /// Transactional read of `file`.
    pub fn read(&self, file: Capability) -> eden_kernel::Result<bytes::Bytes> {
        let out = self.node.invoke(
            self.manager,
            "read",
            &[Value::U64(self.txid), Value::Cap(file)],
        )?;
        Ok(out
            .first()
            .and_then(Value::as_blob)
            .cloned()
            .unwrap_or_default())
    }

    /// Transactional read that intends to write back (`SELECT FOR
    /// UPDATE`): under 2PL the exclusive lock is taken now, avoiding
    /// upgrade deadlocks in read-modify-write transactions.
    pub fn read_for_update(&self, file: Capability) -> eden_kernel::Result<bytes::Bytes> {
        let out = self.node.invoke(
            self.manager,
            "read_for_update",
            &[Value::U64(self.txid), Value::Cap(file)],
        )?;
        Ok(out
            .first()
            .and_then(Value::as_blob)
            .cloned()
            .unwrap_or_default())
    }

    /// Transactional write of `file`.
    pub fn write(&self, file: Capability, data: &[u8]) -> eden_kernel::Result<()> {
        self.node.invoke(
            self.manager,
            "write",
            &[
                Value::U64(self.txid),
                Value::Cap(file),
                Value::Blob(bytes::Bytes::copy_from_slice(data)),
            ],
        )?;
        Ok(())
    }

    /// Two-phase commit; `Ok(true)` committed, `Ok(false)` aborted by
    /// concurrency control (retry the whole transaction).
    pub fn commit(mut self) -> eden_kernel::Result<bool> {
        self.finished = true;
        let out = self
            .node
            .invoke(self.manager, "commit", &[Value::U64(self.txid)])?;
        Ok(out.first().and_then(Value::as_bool).unwrap_or(false))
    }

    /// Aborts explicitly.
    pub fn abort(mut self) -> eden_kernel::Result<()> {
        self.finished = true;
        self.node
            .invoke(self.manager, "abort", &[Value::U64(self.txid)])?;
        Ok(())
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self
                .node
                .invoke(self.manager, "abort", &[Value::U64(self.txid)]);
        }
    }
}
