/root/repo/target/debug/deps/eden_apps-9c171025160ec5c5.d: crates/apps/src/lib.rs crates/apps/src/calendar.rs crates/apps/src/counter.rs crates/apps/src/hierarchy.rs crates/apps/src/mail.rs crates/apps/src/policy.rs crates/apps/src/queue.rs

/root/repo/target/debug/deps/eden_apps-9c171025160ec5c5: crates/apps/src/lib.rs crates/apps/src/calendar.rs crates/apps/src/counter.rs crates/apps/src/hierarchy.rs crates/apps/src/mail.rs crates/apps/src/policy.rs crates/apps/src/queue.rs

crates/apps/src/lib.rs:
crates/apps/src/calendar.rs:
crates/apps/src/counter.rs:
crates/apps/src/hierarchy.rs:
crates/apps/src/mail.rs:
crates/apps/src/policy.rs:
crates/apps/src/queue.rs:
