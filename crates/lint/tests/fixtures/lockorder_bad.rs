// Fixture: lock-order violations (scanned as crates/core/src/a.rs with
// a spec ranking a.alpha before a.beta and allowing a.beta -> a.delta).

struct S {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
    gamma: Mutex<u32>,
    delta: Mutex<u32>,
}

impl S {
    fn inverted(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock(); // inversion: the order ranks alpha first
        drop(a);
        drop(b);
    }

    fn unranked(&self) {
        let a = self.alpha.lock();
        let g = self.gamma.lock(); // gamma is not in the sanctioned order
        drop(g);
        drop(a);
    }

    fn reentrant(&self) {
        let a = self.alpha.lock();
        self.help(); // transitively re-acquires alpha: deadlock
        drop(a);
    }

    fn help(&self) {
        let a = self.alpha.lock();
        drop(a);
    }

    fn sanctioned(&self) {
        let b = self.beta.lock();
        let d = self.delta.lock(); // exempted by the spec's [[allow]]
        drop(d);
        drop(b);
    }
}
