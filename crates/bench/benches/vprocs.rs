//! F2 macro-benchmark: the virtual-processor gate (each iteration runs
//! the full 16-invocation fixed-service-time batch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eden_bench::exp_f2_vprocs::held_batch_seconds;

fn bench_vprocs(c: &mut Criterion) {
    let mut group = c.benchmark_group("vproc_batch");
    for vprocs in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(vprocs), &vprocs, |b, &vp| {
            b.iter(|| held_batch_seconds(vp))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_vprocs
}
criterion_main!(benches);
