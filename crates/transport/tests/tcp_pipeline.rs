//! Integration tests for the TCP send pipeline: duplicate-dial
//! regression, slow-peer isolation, and full-queue shedding.
//!
//! Dead/slow peers are simulated with the *backlog trick*: bind a
//! listener, never accept, and pre-fill its accept backlog with held
//! connections. Further connects then hang in SYN-sent until the
//! dialer's timeout — unlike an unroutable address, this works even
//! behind the transparent proxies some CI sandboxes run.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use eden_capability::NodeId;
use eden_transport::{Endpoint, TcpMesh, TcpMeshConfig, TcpTuning, TransportError};
use eden_wire::{Frame, Message};

fn ping(token: u64) -> Message {
    Message::Ping { token }
}

/// A listener whose accept backlog is full: dials to `addr` hang for
/// the dialer's whole connect timeout instead of completing.
struct StuckPeer {
    _listener: TcpListener,
    _held: Vec<TcpStream>,
    addr: SocketAddr,
}

fn stuck_peer() -> StuckPeer {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind stuck listener");
    let addr = listener.local_addr().expect("local addr");
    let mut held = Vec::new();
    for _ in 0..512 {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(50)) {
            Ok(s) => held.push(s),
            Err(_) => break, // Backlog is full: mission accomplished.
        }
    }
    assert!(
        held.len() < 512,
        "could not exhaust the accept backlog; the backlog trick needs \
         connects to start timing out"
    );
    StuckPeer {
        _listener: listener,
        _held: held,
        addr,
    }
}

#[test]
fn concurrent_first_sends_dial_exactly_once() {
    let meshes = TcpMesh::bind_local_cluster(2).expect("cluster");
    let (sender, receiver) = (&meshes[0], &meshes[1]);

    // Eight threads race the first send to a cold peer. The seed's
    // `connection()` dialed outside the map lock, so two racers could
    // both connect and one stream leaked; the pipeline creates the
    // writer (which owns the dial) under the writers lock.
    std::thread::scope(|s| {
        for t in 0..8u64 {
            s.spawn(move || {
                sender
                    .send(Frame::to(NodeId(0), NodeId(1), ping(t)))
                    .expect("send");
            });
        }
    });
    for _ in 0..8 {
        receiver
            .recv_timeout(Duration::from_secs(2))
            .expect("recv")
            .expect("frame before timeout");
    }
    assert_eq!(
        receiver.inbound_connections(),
        1,
        "concurrent first-sends must share one outbound connection"
    );
    assert_eq!(sender.stats().dials, 1);
}

#[test]
fn slow_peer_does_not_block_sends_to_healthy_peers() {
    let meshes = TcpMesh::bind_local_cluster(2).expect("cluster");
    let (a, b) = (&meshes[0], &meshes[1]);
    let stuck = stuck_peer();
    a.add_peer(NodeId(9), stuck.addr);

    // Kick node 9's writer into its (hanging) dial.
    a.send(Frame::to(NodeId(0), NodeId(9), ping(0))).unwrap();
    std::thread::sleep(Duration::from_millis(20));

    // While that dial burns its 500 ms timeout, sends to the healthy
    // peer are plain enqueues: fast and non-blocking.
    const N: u64 = 100;
    let started = Instant::now();
    for i in 0..N {
        a.send(Frame::to(NodeId(0), NodeId(1), ping(i))).unwrap();
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(100),
        "sends to a healthy peer took {elapsed:?} for {N} frames \
         (>1 ms average) while another peer was dialing"
    );
    for _ in 0..N {
        b.recv_timeout(Duration::from_secs(2))
            .expect("recv")
            .expect("frame before timeout");
    }
}

#[test]
fn full_queue_sheds_instead_of_blocking() {
    let stuck = stuck_peer();
    let tuning = TcpTuning {
        queue_cap: 8,
        ..TcpTuning::default()
    };
    let mut config = TcpMeshConfig::new(NodeId(0), "127.0.0.1:0".parse().unwrap());
    config.tuning = tuning;
    config.peers.insert(NodeId(1), stuck.addr);
    let mesh = TcpMesh::bind(config).expect("bind");

    // The peer never answers, so the writer never drains: the first 8
    // frames fill the bounded queue and the rest shed at enqueue time.
    const N: u64 = 100;
    let started = Instant::now();
    for i in 0..N {
        mesh.send(Frame::to(NodeId(0), NodeId(1), ping(i)))
            .expect("best-effort send never errors on a full queue");
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(250),
        "shedding sends must not block; took {elapsed:?}"
    );
    let s = mesh.stats();
    assert_eq!(s.frames_sent, N);
    assert!(
        s.frames_shed >= N - 8,
        "expected ~{} shed frames, saw {}",
        N - 8,
        s.frames_shed
    );
    assert!(s.frames_dropped >= s.frames_shed);
    assert!(s.queue_depth <= 8, "queue depth {} > cap", s.queue_depth);
}

#[test]
fn closed_endpoint_still_errors() {
    let meshes = TcpMesh::bind_local_cluster(2).expect("cluster");
    meshes[0].shutdown();
    assert_eq!(
        meshes[0].send(Frame::to(NodeId(0), NodeId(1), ping(0))),
        Err(TransportError::Closed)
    );
}
