//! Quickstart: a two-node Eden system and one location-independent
//! invocation.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use eden::apps::counter::CounterType;
use eden::capability::Rights;
use eden::kernel::Cluster;
use eden::wire::Value;

fn main() {
    // Two node machines on an in-process network — the smallest Eden.
    let cluster = Cluster::builder()
        .nodes(2)
        .register(|| Box::new(CounterType))
        .build();

    // Create a counter object on node 0. The returned capability is the
    // only handle anyone will ever have on it.
    let counter = cluster
        .node(0)
        .create_object("counter", &[Value::I64(0)])
        .expect("create counter");
    println!("created counter object {} on node 0", counter.name());

    // Invoke from node 1: the kernel locates the object and forwards the
    // invocation — the caller neither knows nor cares where it lives.
    let out = cluster
        .node(1)
        .invoke(counter, "add", &[Value::I64(5)])
        .expect("remote add");
    println!("node 1 invoked add(5)  -> {:?}", out[0]);

    let out = cluster
        .node(0)
        .invoke(counter, "get", &[])
        .expect("local get");
    println!("node 0 invoked get()   -> {:?}", out[0]);

    // Capabilities carry rights: a read-only restriction cannot write.
    let read_only = counter.restrict(Rights::READ);
    let err = cluster
        .node(1)
        .invoke(read_only, "add", &[Value::I64(1)])
        .expect_err("rights must be enforced");
    println!("read-only add rejected -> {err}");

    // Kernel counters show what actually happened on the wire.
    let m0 = cluster.node(0).metrics();
    let m1 = cluster.node(1).metrics();
    println!(
        "node 0 served {} remote invocation(s); node 1 sent {}",
        m0.remote_invocations_served, m1.remote_invocations_sent
    );

    cluster.shutdown();
}
