/root/repo/target/debug/deps/tcp_kernel-b4d005e7e676df4e.d: tests/tcp_kernel.rs Cargo.toml

/root/repo/target/debug/deps/libtcp_kernel-b4d005e7e676df4e.rmeta: tests/tcp_kernel.rs Cargo.toml

tests/tcp_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
