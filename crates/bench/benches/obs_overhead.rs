//! Observability overhead: recording must be cheap enough to leave on.
//!
//! The acceptance bar is < 1 µs per event for every hot-path primitive —
//! histogram samples, counter/gauge bumps, span open+close, and flight
//! recorder entries. At those costs the kernel can trace and measure
//! every invocation unconditionally.

use criterion::{criterion_group, criterion_main, Criterion};
use eden_obs::{now_ns, Histogram, KernelEvent, ObsRegistry, TraceSampling};

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");

    let hist = Histogram::new();
    let mut v = 1u64;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(v >> 40);
        })
    });

    let obs = ObsRegistry::new(0);
    let counter = obs.counter("bench.counter");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    let gauge = obs.gauge("bench.gauge");
    group.bench_function("gauge_inc_dec", |b| {
        b.iter(|| {
            gauge.inc();
            gauge.dec();
        })
    });

    group.bench_function("span_open_close", |b| {
        b.iter(|| obs.root_span("bench").finish())
    });

    // The sampled-out path: what every invocation pays when the
    // sampling policy rejects it (should be a counter bump and nothing
    // else — far below the span_open_close cost).
    let sampled_out = ObsRegistry::new(0);
    sampled_out.set_sampling(TraceSampling::Ratio(0));
    group.bench_function("span_sampled_out", |b| {
        b.iter(|| {
            if let Some(s) = sampled_out.sampled_root_span("bench", "op") {
                s.finish();
            }
        })
    });

    group.bench_function("flight_recorder_record", |b| {
        b.iter(|| {
            obs.recorder()
                .record(KernelEvent::Retransmit { inv_id: 7, dst: 1 })
        })
    });

    group.bench_function("now_ns", |b| b.iter(now_ns));

    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(50)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_obs
}
criterion_main!(benches);
