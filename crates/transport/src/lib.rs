//! Frame transports connecting Eden kernels.
//!
//! The kernel's only assumption about the network is the one Eden's
//! Ethernet provides (§3): message-oriented, best-effort delivery of
//! [`Frame`]s between the node machines of one local network, including
//! broadcast (which the location service uses for its `WhereIs` search).
//! This crate supplies that contract three ways:
//!
//! * [`LoopbackMesh`] — an in-process mesh over crossbeam channels, with
//!   optional per-frame latency models, seeded random loss, and link
//!   partitioning for failure experiments. This is the default harness
//!   fabric: a whole five-node Eden (Figure 1) runs in one process.
//! * [`TcpMesh`] — length-prefixed frames over `std::net` TCP with a
//!   thread per connection, for *multi-process* Eden clusters on one
//!   machine (or a real LAN).
//! * The `eden-ethersim` crate is the third face of the
//!   network: the same Ethernet, modelled offline for the E7 experiments.
//!   Its calibrated latency figures can be fed back into
//!   [`LatencyModel::Ethernet`] so in-process runs feel like the wire.
//!
//! Delivery guarantees: frames may be dropped (loss model, dead peer,
//! partition) and unicast frames to a live peer arrive in FIFO order per
//! sender. The kernel's request/reply and timeout machinery tolerates
//! loss; nothing assumes reliability.

#![forbid(unsafe_code)]

pub mod latency;
pub mod mesh;
pub mod stats;
pub mod tcp;
pub mod writer;

use std::sync::Arc;
use std::time::Duration;

use eden_capability::NodeId;
use eden_obs::ObsRegistry;
use eden_wire::Frame;

pub use latency::LatencyModel;
pub use mesh::{LoopbackMesh, MeshOptions};
pub use stats::TransportStats;
pub use tcp::{TcpMesh, TcpMeshConfig};
pub use writer::TcpTuning;

/// Errors surfaced by transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The endpoint (or the whole mesh) has been shut down.
    Closed,
    /// The destination node is unknown to this transport.
    UnknownPeer(NodeId),
    /// An I/O failure (TCP transport), rendered.
    Io(String),
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::UnknownPeer(n) => write!(f, "unknown peer {n}"),
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// One kernel's attachment to the network.
///
/// Implementations are shared between the kernel's receive loop and its
/// virtual processors, so everything here is `&self` and thread-safe.
pub trait Endpoint: Send + Sync {
    /// The node this endpoint belongs to.
    fn node(&self) -> NodeId;

    /// Sends a frame (unicast or broadcast). Best-effort: a dead or
    /// partitioned destination is not an error, matching Ethernet
    /// semantics; only a closed transport or an unknown unicast peer is.
    fn send(&self, frame: Frame) -> Result<(), TransportError>;

    /// Receives the next frame, blocking until one arrives or the
    /// transport closes.
    fn recv(&self) -> Result<Frame, TransportError>;

    /// Receives with a deadline; `Ok(None)` on timeout.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Frame>, TransportError>;

    /// Receives up to `max` frames in one call: blocks until at least
    /// one frame arrives (or `timeout` passes — then `Ok(empty)`), then
    /// drains whatever more is immediately available, preserving
    /// per-sender FIFO order. The kernel's receive loop uses this to
    /// amortize its channel and dispatch costs over a sender's whole
    /// coalesced batch; transports without internal batching fall back
    /// to handing over one frame.
    fn recv_batch(&self, max: usize, timeout: Duration) -> Result<Vec<Frame>, TransportError> {
        let _ = max;
        Ok(match self.recv_timeout(timeout)? {
            Some(f) => vec![f],
            None => Vec::new(),
        })
    }

    /// The other nodes this endpoint can currently address.
    fn peers(&self) -> Vec<NodeId>;

    /// Counters for frames and bytes in each direction.
    fn stats(&self) -> TransportStats;

    /// Attaches the receiving node's observability registry, letting the
    /// transport record delivery-latency histograms and `net` spans for
    /// traced frames. Transports without that capability may ignore it
    /// (the default does).
    fn attach_obs(&self, obs: Arc<ObsRegistry>) {
        let _ = obs;
    }

    /// One stall-watchdog probe over the send side: for every
    /// destination with a non-empty outbound queue, `(peer, ns since
    /// the queue last moved, frames queued)`. Transports without
    /// per-peer queues (loopback) have nothing to report.
    fn writer_probe(&self) -> Vec<(NodeId, u64, u64)> {
        Vec::new()
    }

    /// Detaches this endpoint; subsequent `recv` returns
    /// [`TransportError::Closed`] once the queue drains.
    fn shutdown(&self);
}
