//! The monitor: cluster-wide telemetry as an ordinary Eden object.
//!
//! The paper's position (§2) is that system facilities should be
//! provided *by objects* wherever possible. The monitor applies that to
//! observability: it is a plain Eden object holding one read-only
//! capability per watched kernel (see
//! [`eden_kernel::node_object_cap`]), and it gathers metrics, traces
//! and flight-recorder events purely through location-independent
//! invocation — `get_metrics`, `get_trace` and `get_flight_log` on
//! each node's reserved telemetry object. It has no private channel
//! into any kernel: scrape it from anywhere, move it, checkpoint it;
//! it keeps working because its state is just capabilities.
//!
//! Operations:
//!
//! | op | class | rights | effect |
//! |---|---|---|---|
//! | `add_node [cap]` | admin (1) | WRITE | watch another node |
//! | `node_count` | scrape (2) | READ | number of watched nodes |
//! | `scrape_metrics` | scrape | READ | per-node + cluster-merged metrics |
//! | `scrape_trace [u64]` | scrape | READ | span records (optionally one trace) |
//! | `scrape_events [u64]` | scrape | READ | merged flight-recorder stream |
//! | `scrape_membership` | scrape | READ | each node's gossip membership view |
//! | `scrape_watchdog` | scrape | READ | each node's stall count + snapshot |
//!
//! Scrape replies put per-node payloads first, any merged view second,
//! and a list of unreachable node ids last, so a partial cluster still
//! yields a useful (if incomplete) answer. The cluster-wide histogram
//! merge is ordering-stable — see
//! [`eden_obs::hist::HistogramSnapshot::merge`].

use eden_capability::{Capability, NodeId, Rights};
use eden_kernel::{
    node_object_cap, Cluster, EdenError, Node, OpCtx, OpError, OpResult, TypeManager, TypeSpec,
};
use eden_obs::export::{self, NodeMetrics};
use eden_obs::{critical_path, CriticalPath, FlightEvent, SpanRecord};
use eden_wire::{obs_codec, Status, Value};

/// The monitor type manager (type name `"monitor"`).
pub struct MonitorType;

impl MonitorType {
    /// The registered type name.
    pub const NAME: &'static str = "monitor";

    /// The capability-list slot for a watched node.
    fn slot_for(node: NodeId) -> String {
        format!("node:{:04}", node.0)
    }
}

impl TypeManager for MonitorType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(MonitorType::NAME)
            .class("admin", 1)
            .class("scrape", 2)
            .op("add_node", "admin", Rights::WRITE)
            .op("node_count", "scrape", Rights::READ)
            .op("scrape_metrics", "scrape", Rights::READ)
            .op("scrape_trace", "scrape", Rights::READ)
            .op("scrape_events", "scrape", Rights::READ)
            .op("scrape_membership", "scrape", Rights::READ)
            .op("scrape_watchdog", "scrape", Rights::READ)
    }

    /// Initial arguments: one `Value::Cap` per node to watch.
    fn initialize(&self, ctx: &OpCtx<'_>, args: &[Value]) -> Result<(), OpError> {
        for (i, arg) in args.iter().enumerate() {
            let cap = OpCtx::cap_arg(args, i)
                .map_err(|_| OpError::type_error(format!("argument {i}: {arg:?} is not a cap")))?;
            ctx.mutate_repr(|r| {
                r.caps_mut()
                    .put(MonitorType::slot_for(cap.name().birth_node()), cap)
            })?;
        }
        Ok(())
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "add_node" => {
                let cap = OpCtx::cap_arg(args, 0)?;
                ctx.mutate_repr(|r| {
                    r.caps_mut()
                        .put(MonitorType::slot_for(cap.name().birth_node()), cap)
                })?;
                Ok(vec![])
            }
            "node_count" => Ok(vec![Value::U64(watched(ctx).len() as u64)]),
            "scrape_metrics" => {
                let mut per_node = Vec::new();
                let mut parts = Vec::new();
                let mut down = Vec::new();
                for (id, cap) in watched(ctx) {
                    match ctx.invoke(cap, "get_metrics", &[]) {
                        Ok(reply) => {
                            let m = decode_first(&reply, obs_codec::metrics_from_value)?;
                            per_node.push(obs_codec::metrics_to_value(&m));
                            parts.push(m);
                        }
                        Err(_) => down.push(Value::U64(u64::from(id.0))),
                    }
                }
                let merged = export::merge_metrics(&parts);
                Ok(vec![
                    Value::List(per_node),
                    obs_codec::metrics_to_value(&merged),
                    Value::List(down),
                ])
            }
            "scrape_trace" => {
                let filter: Vec<Value> = match args.first() {
                    Some(Value::U64(t)) => vec![Value::U64(*t)],
                    _ => vec![],
                };
                let mut spans: Vec<SpanRecord> = Vec::new();
                let mut down = Vec::new();
                for (id, cap) in watched(ctx) {
                    match ctx.invoke(cap, "get_trace", &filter) {
                        Ok(reply) => {
                            spans.extend(decode_first(&reply, obs_codec::spans_from_value)?)
                        }
                        Err(_) => down.push(Value::U64(u64::from(id.0))),
                    }
                }
                // A deterministic total order regardless of which node
                // answered first: by trace, then start time, then span id.
                spans.sort_by_key(|s| (s.trace_id, s.start_ns, s.span_id));
                Ok(vec![obs_codec::spans_to_value(&spans), Value::List(down)])
            }
            "scrape_events" => {
                let limit: Vec<Value> = match args.first() {
                    Some(Value::U64(n)) => vec![Value::U64(*n)],
                    _ => vec![],
                };
                let mut events: Vec<(u16, FlightEvent)> = Vec::new();
                let mut down = Vec::new();
                for (id, cap) in watched(ctx) {
                    match ctx.invoke(cap, "get_flight_log", &limit) {
                        Ok(reply) => {
                            events.extend(decode_first(&reply, obs_codec::events_from_value)?)
                        }
                        Err(_) => down.push(Value::U64(u64::from(id.0))),
                    }
                }
                // The process-global flight-recorder sequence number is
                // the total order across every node's stream.
                events.sort_by_key(|(_, e)| e.seq);
                let merged: Vec<Value> = events
                    .iter()
                    .map(|(node, e)| obs_codec::event_to_value(*node, e))
                    .collect();
                Ok(vec![Value::List(merged), Value::List(down)])
            }
            "scrape_membership" => {
                let mut per_node = Vec::new();
                let mut down = Vec::new();
                for (id, cap) in watched(ctx) {
                    match ctx.invoke(cap, "get_membership", &[]) {
                        Ok(reply) => {
                            let rows = match reply.into_iter().next() {
                                Some(rows @ Value::List(_)) => rows,
                                _ => return Err(OpError::app(1, "malformed membership payload")),
                            };
                            let mut view = std::collections::BTreeMap::new();
                            view.insert("observer".to_string(), Value::U64(u64::from(id.0)));
                            view.insert("members".to_string(), rows);
                            per_node.push(Value::Map(view));
                        }
                        Err(_) => down.push(Value::U64(u64::from(id.0))),
                    }
                }
                Ok(vec![Value::List(per_node), Value::List(down)])
            }
            "scrape_watchdog" => {
                let mut per_node = Vec::new();
                let mut down = Vec::new();
                for (id, cap) in watched(ctx) {
                    match ctx.invoke(cap, "get_watchdog", &[]) {
                        Ok(reply) => {
                            let state = match reply.into_iter().next() {
                                Some(state @ Value::Map(_)) => state,
                                _ => return Err(OpError::app(1, "malformed watchdog payload")),
                            };
                            let mut row = std::collections::BTreeMap::new();
                            row.insert("node".to_string(), Value::U64(u64::from(id.0)));
                            row.insert("state".to_string(), state);
                            per_node.push(Value::Map(row));
                        }
                        Err(_) => down.push(Value::U64(u64::from(id.0))),
                    }
                }
                Ok(vec![Value::List(per_node), Value::List(down)])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// The watched nodes, in node-id order (capability slots sort that way).
fn watched(ctx: &OpCtx<'_>) -> Vec<(NodeId, Capability)> {
    ctx.read_repr(|r| {
        r.caps()
            .iter()
            .filter(|(slot, _)| slot.starts_with("node:"))
            .map(|(_, cap)| (cap.name().birth_node(), cap))
            .collect()
    })
}

/// Decodes the first reply value with `decode`, or an app error naming
/// the malformed payload.
fn decode_first<T>(reply: &[Value], decode: impl Fn(&Value) -> Option<T>) -> Result<T, OpError> {
    reply
        .first()
        .and_then(decode)
        .ok_or_else(|| OpError::app(1, "malformed telemetry payload"))
}

/// A cluster metrics scrape: each reachable node's view, the merged
/// cluster view, and the nodes that did not answer.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// One entry per node that answered.
    pub per_node: Vec<NodeMetrics>,
    /// The bucket-wise merged cluster view (labelled `cluster`).
    pub merged: NodeMetrics,
    /// Node ids that could not be scraped.
    pub down: Vec<u16>,
}

/// One node's belief about one cluster member, as gossip sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberRow {
    /// The member this row describes.
    pub node: u16,
    /// The believed status label: `alive`, `suspect` or `dead`.
    pub status: String,
    /// The member's incarnation number at that belief.
    pub incarnation: u64,
}

/// A cluster membership scrape: every reachable node's gossip view
/// (keyed by the observing node) and the nodes that did not answer.
/// Views can disagree — that disagreement is exactly what the scrape
/// is for (watching a suspicion propagate or a refutation land).
#[derive(Debug, Clone)]
pub struct ClusterMembership {
    /// `(observer, that observer's view)` per node that answered.
    pub per_node: Vec<(u16, Vec<MemberRow>)>,
    /// Node ids that could not be scraped.
    pub down: Vec<u16>,
}

/// One node's watchdog state as the monitor sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogRow {
    /// The reporting node.
    pub node: u16,
    /// Cumulative stall findings since boot (`watchdog.stalls`).
    pub stalls: u64,
    /// The most recent diagnostic snapshot; empty if never stalled.
    pub snapshot: String,
}

/// A cluster watchdog scrape: every reachable node's stall state and
/// the nodes that did not answer.
#[derive(Debug, Clone)]
pub struct ClusterWatchdog {
    /// One row per node that answered, in node-id order.
    pub per_node: Vec<WatchdogRow>,
    /// Node ids that could not be scraped.
    pub down: Vec<u16>,
}

/// Client facade over a monitor object: creation, scraping, and the
/// three export formats.
pub struct MonitorClient {
    node: Node,
    monitor: Capability,
}

impl MonitorClient {
    /// Creates a monitor object on `node` watching `nodes`, handing it
    /// one read-only telemetry capability per node.
    pub fn create(node: &Node, nodes: &[NodeId]) -> eden_kernel::Result<MonitorClient> {
        let args: Vec<Value> = nodes
            .iter()
            .map(|&n| Value::Cap(node_object_cap(n)))
            .collect();
        let monitor = node.create_object(MonitorType::NAME, &args)?;
        Ok(MonitorClient {
            node: node.clone(),
            monitor,
        })
    }

    /// A monitor on the cluster's first node watching every node.
    pub fn for_cluster(cluster: &Cluster) -> eden_kernel::Result<MonitorClient> {
        let ids: Vec<NodeId> = cluster.nodes().iter().map(Node::node_id).collect();
        MonitorClient::create(cluster.node(0), &ids)
    }

    /// Wraps an existing monitor capability (e.g. received from another
    /// holder) for use from `node`.
    pub fn attach(node: &Node, monitor: Capability) -> MonitorClient {
        MonitorClient {
            node: node.clone(),
            monitor,
        }
    }

    /// The monitor object's capability.
    pub fn capability(&self) -> Capability {
        self.monitor
    }

    /// Adds a node to the watch set.
    pub fn add_node(&self, node: NodeId) -> eden_kernel::Result<()> {
        self.node.invoke(
            self.monitor,
            "add_node",
            &[Value::Cap(node_object_cap(node))],
        )?;
        Ok(())
    }

    /// Scrapes metrics from every watched node.
    pub fn scrape_metrics(&self) -> eden_kernel::Result<ClusterMetrics> {
        let reply = self.node.invoke(self.monitor, "scrape_metrics", &[])?;
        let per_node = match reply.first() {
            Some(Value::List(items)) => items
                .iter()
                .map(obs_codec::metrics_from_value)
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| malformed("per-node metrics"))?,
            _ => return Err(malformed("per-node metrics")),
        };
        let merged = reply
            .get(1)
            .and_then(obs_codec::metrics_from_value)
            .ok_or_else(|| malformed("merged metrics"))?;
        let down = decode_down(reply.get(2))?;
        Ok(ClusterMetrics {
            per_node,
            merged,
            down,
        })
    }

    /// Prometheus text exposition of a fresh scrape: every per-node
    /// series plus the cluster-merged series.
    pub fn prometheus(&self) -> eden_kernel::Result<String> {
        let scrape = self.scrape_metrics()?;
        let mut parts = scrape.per_node;
        parts.push(scrape.merged);
        Ok(export::prometheus_text(&parts))
    }

    /// Scrapes span records — all of them, or one trace by id.
    pub fn scrape_spans(&self, trace_id: Option<u64>) -> eden_kernel::Result<Vec<SpanRecord>> {
        let args: Vec<Value> = trace_id.map(Value::U64).into_iter().collect();
        let reply = self.node.invoke(self.monitor, "scrape_trace", &args)?;
        reply
            .first()
            .and_then(obs_codec::spans_from_value)
            .ok_or_else(|| malformed("spans"))
    }

    /// Chrome-trace (Perfetto-loadable) JSON of a fresh span scrape.
    pub fn chrome_trace(&self, trace_id: Option<u64>) -> eden_kernel::Result<String> {
        Ok(export::chrome_trace_json(&self.scrape_spans(trace_id)?))
    }

    /// Stitches one trace's spans — scraped from every watched node —
    /// into its cross-node critical-path breakdown (local queue wait
    /// vs. transport queue vs. wire vs. remote queue vs. execute).
    /// `None` when no node holds a root span for `trace_id`.
    pub fn critical_path(&self, trace_id: u64) -> eden_kernel::Result<Option<CriticalPath>> {
        let spans = self.scrape_spans(Some(trace_id))?;
        Ok(critical_path(&spans, trace_id))
    }

    /// Scrapes every watched node's stall-watchdog state.
    pub fn scrape_watchdog(&self) -> eden_kernel::Result<ClusterWatchdog> {
        let reply = self.node.invoke(self.monitor, "scrape_watchdog", &[])?;
        let per_node = match reply.first() {
            Some(Value::List(rows)) => rows
                .iter()
                .map(decode_watchdog_row)
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| malformed("watchdog rows"))?,
            _ => return Err(malformed("watchdog rows")),
        };
        let down = decode_down(reply.get(1))?;
        Ok(ClusterWatchdog { per_node, down })
    }

    /// Scrapes the merged flight-recorder stream, totally ordered by
    /// the process-global sequence number.
    pub fn scrape_events(&self) -> eden_kernel::Result<Vec<(u16, FlightEvent)>> {
        let reply = self.node.invoke(self.monitor, "scrape_events", &[])?;
        match reply.first() {
            Some(list @ Value::List(_)) => {
                obs_codec::events_from_value(list).ok_or_else(|| malformed("events"))
            }
            _ => Err(malformed("events")),
        }
    }

    /// Scrapes every watched node's gossip membership view.
    pub fn scrape_membership(&self) -> eden_kernel::Result<ClusterMembership> {
        let reply = self.node.invoke(self.monitor, "scrape_membership", &[])?;
        let per_node = match reply.first() {
            Some(Value::List(views)) => views
                .iter()
                .map(decode_membership_view)
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| malformed("membership views"))?,
            _ => return Err(malformed("membership views")),
        };
        let down = decode_down(reply.get(1))?;
        Ok(ClusterMembership { per_node, down })
    }

    /// JSONL export of a fresh event scrape.
    pub fn events_jsonl(&self) -> eden_kernel::Result<String> {
        let events = self.scrape_events()?;
        Ok(events
            .iter()
            .map(|(node, e)| export::event_jsonl_line(*node, e) + "\n")
            .collect())
    }
}

fn malformed(what: &str) -> EdenError {
    EdenError::Invoke(Status::AppError {
        code: 1,
        message: format!("malformed monitor reply: {what}"),
    })
}

/// Decodes one `{observer, members}` view map from a membership scrape.
fn decode_membership_view(v: &Value) -> Option<(u16, Vec<MemberRow>)> {
    let view = v.as_map()?;
    let observer = view.get("observer")?.as_u64()? as u16;
    let members = view
        .get("members")?
        .as_list()?
        .iter()
        .map(|row| {
            let row = row.as_map()?;
            Some(MemberRow {
                node: row.get("node")?.as_u64()? as u16,
                status: row.get("status")?.as_str()?.to_string(),
                incarnation: row.get("incarnation")?.as_u64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some((observer, members))
}

/// Decodes one `{node, state: {stalls, snapshot}}` watchdog row.
fn decode_watchdog_row(v: &Value) -> Option<WatchdogRow> {
    let row = v.as_map()?;
    let state = row.get("state")?.as_map()?;
    Some(WatchdogRow {
        node: row.get("node")?.as_u64()? as u16,
        stalls: state.get("stalls")?.as_u64()?,
        snapshot: state.get("snapshot")?.as_str()?.to_string(),
    })
}

fn decode_down(v: Option<&Value>) -> eden_kernel::Result<Vec<u16>> {
    match v {
        Some(Value::List(items)) => items
            .iter()
            .map(|v| v.as_u64().map(|n| n as u16))
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| malformed("down list")),
        _ => Err(malformed("down list")),
    }
}
