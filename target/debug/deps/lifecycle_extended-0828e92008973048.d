/root/repo/target/debug/deps/lifecycle_extended-0828e92008973048.d: crates/core/tests/lifecycle_extended.rs

/root/repo/target/debug/deps/lifecycle_extended-0828e92008973048: crates/core/tests/lifecycle_extended.rs

crates/core/tests/lifecycle_extended.rs:
