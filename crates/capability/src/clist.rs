//! Capability lists — the capability segment of an object's representation.
//!
//! §4.1 describes an object's representation as "the data and capability
//! segments that form the object's long-term state". Data segments hold
//! uninterpreted bytes; the capability segment holds [`Capability`] values
//! under symbolic slot names, and is the only representation component from
//! which authority can be exercised. Keeping capabilities in a dedicated,
//! typed segment mirrors the iAPX 432's tagged separation of data and
//! access descriptors, and lets the checkpoint machinery preserve (and the
//! wire codec validate) capabilities explicitly.

use std::collections::BTreeMap;

use crate::{Capability, Rights};

/// An ordered, named collection of capabilities.
///
/// Slot names are small strings chosen by the type manager (e.g. `"log"`,
/// `"next"`, `"member:alice"`). Iteration order is the slot-name order,
/// which keeps checkpoint bytes deterministic.
///
/// # Examples
///
/// ```
/// use eden_capability::{Capability, CList, NameGenerator, NodeId, Rights};
///
/// let mut names = NameGenerator::new(NodeId(0));
/// let mut cl = CList::new();
/// cl.put("peer", Capability::mint(names.next_name()));
/// assert!(cl.get("peer").is_some());
/// assert_eq!(cl.len(), 1);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct CList {
    slots: BTreeMap<String, Capability>,
}

impl CList {
    /// Creates an empty capability list.
    pub fn new() -> Self {
        CList::default()
    }

    /// Stores `cap` under `slot`, returning the previous occupant if any.
    pub fn put(&mut self, slot: impl Into<String>, cap: Capability) -> Option<Capability> {
        self.slots.insert(slot.into(), cap)
    }

    /// Looks up the capability stored under `slot`.
    pub fn get(&self, slot: &str) -> Option<Capability> {
        self.slots.get(slot).copied()
    }

    /// Removes and returns the capability stored under `slot`.
    pub fn remove(&mut self, slot: &str) -> Option<Capability> {
        self.slots.remove(slot)
    }

    /// Tests whether `slot` is occupied.
    pub fn contains(&self, slot: &str) -> bool {
        self.slots.contains_key(slot)
    }

    /// The number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Tests whether the list holds no capabilities.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates over `(slot, capability)` pairs in slot-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Capability)> {
        self.slots.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over slot names in order.
    pub fn slots(&self) -> impl Iterator<Item = &str> {
        self.slots.keys().map(String::as_str)
    }

    /// Replaces the capability in `slot` with a restricted copy.
    ///
    /// Returns the restricted capability, or `None` if the slot is empty.
    /// Restriction in place is the idiomatic way for a type manager to
    /// attenuate authority before handing a capability out of the object.
    pub fn restrict_in_place(&mut self, slot: &str, keep: Rights) -> Option<Capability> {
        let cap = self.slots.get_mut(slot)?;
        *cap = cap.restrict(keep);
        Some(*cap)
    }

    /// Removes every slot whose name starts with `prefix`, returning how
    /// many were removed. Useful for types that index dynamic collections
    /// by prefixed slot names (`"member:..."`).
    pub fn remove_prefix(&mut self, prefix: &str) -> usize {
        let doomed: Vec<String> = self
            .slots
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &doomed {
            self.slots.remove(k);
        }
        doomed.len()
    }
}

impl core::fmt::Debug for CList {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_map().entries(self.slots.iter()).finish()
    }
}

impl FromIterator<(String, Capability)> for CList {
    fn from_iter<T: IntoIterator<Item = (String, Capability)>>(iter: T) -> Self {
        CList {
            slots: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NameGenerator, NodeId};
    use proptest::prelude::*;

    fn gen() -> NameGenerator {
        NameGenerator::with_epoch(NodeId(5), 99)
    }

    #[test]
    fn put_get_remove_round_trip() {
        let g = gen();
        let mut cl = CList::new();
        let cap = Capability::mint(g.next_name());
        assert!(cl.put("a", cap).is_none());
        assert_eq!(cl.get("a"), Some(cap));
        assert_eq!(cl.remove("a"), Some(cap));
        assert!(cl.get("a").is_none());
        assert!(cl.is_empty());
    }

    #[test]
    fn put_returns_displaced_capability() {
        let g = gen();
        let mut cl = CList::new();
        let first = Capability::mint(g.next_name());
        let second = Capability::mint(g.next_name());
        cl.put("x", first);
        assert_eq!(cl.put("x", second), Some(first));
        assert_eq!(cl.get("x"), Some(second));
    }

    #[test]
    fn restrict_in_place_attenuates() {
        let g = gen();
        let mut cl = CList::new();
        cl.put("x", Capability::mint(g.next_name()));
        let got = cl.restrict_in_place("x", Rights::READ).unwrap();
        assert_eq!(got.rights(), Rights::READ);
        assert_eq!(cl.get("x").unwrap().rights(), Rights::READ);
        assert!(cl.restrict_in_place("missing", Rights::READ).is_none());
    }

    #[test]
    fn iteration_is_slot_ordered() {
        let g = gen();
        let mut cl = CList::new();
        for slot in ["zeta", "alpha", "mid"] {
            cl.put(slot, Capability::mint(g.next_name()));
        }
        let order: Vec<&str> = cl.slots().collect();
        assert_eq!(order, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn remove_prefix_removes_exactly_matching() {
        let g = gen();
        let mut cl = CList::new();
        for slot in ["member:a", "member:b", "membrane", "other"] {
            cl.put(slot, Capability::mint(g.next_name()));
        }
        assert_eq!(cl.remove_prefix("member:"), 2);
        assert!(cl.contains("membrane"));
        assert!(cl.contains("other"));
        assert_eq!(cl.len(), 2);
    }

    proptest! {
        #[test]
        fn len_tracks_distinct_slots(slots in proptest::collection::vec("[a-z]{1,6}", 0..64)) {
            let g = gen();
            let mut cl = CList::new();
            let mut distinct = std::collections::HashSet::new();
            for s in &slots {
                cl.put(s.clone(), Capability::mint(g.next_name()));
                distinct.insert(s.clone());
            }
            prop_assert_eq!(cl.len(), distinct.len());
        }

        #[test]
        fn from_iter_round_trips(slots in proptest::collection::btree_map("[a-z]{1,6}", 0u32.., 0..32)) {
            let g = gen();
            let pairs: Vec<(String, Capability)> = slots
                .keys()
                .map(|k| (k.clone(), Capability::mint(g.next_name())))
                .collect();
            let cl: CList = pairs.clone().into_iter().collect();
            for (k, c) in pairs {
                prop_assert_eq!(cl.get(&k), Some(c));
            }
        }
    }
}
