/root/repo/target/debug/deps/codec-ec1ad88f72ca1f26.d: crates/bench/benches/codec.rs Cargo.toml

/root/repo/target/debug/deps/libcodec-ec1ad88f72ca1f26.rmeta: crates/bench/benches/codec.rs Cargo.toml

crates/bench/benches/codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
