// Fixture: transport threads must be named eden-mesh-* / eden-tcp-*.

fn named_tcp_writer() {
    let _ = std::thread::Builder::new()
        .name(format!("eden-tcp-write-{}-{}", 0, 1))
        .spawn(move || {});
}

fn named_mesh_pump() {
    let _ = std::thread::Builder::new()
        .name("eden-mesh-delay".into())
        .spawn(move || {});
}

fn named_reader_pool_thread() {
    // The fixed inbound reader pool: eden-tcp-rdr-<node>-<i>.
    let _ = std::thread::Builder::new()
        .name(format!("eden-tcp-rdr-{}-{}", 0, 3))
        .spawn(move || {});
}

fn anonymous_spawn_is_flagged() {
    let _ = std::thread::spawn(|| {});
}

fn unnamed_builder_is_flagged() {
    let _ = std::thread::Builder::new()
        .stack_size(1 << 20)
        .spawn(move || {});
}
