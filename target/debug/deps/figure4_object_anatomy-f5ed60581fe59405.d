/root/repo/target/debug/deps/figure4_object_anatomy-f5ed60581fe59405.d: tests/figure4_object_anatomy.rs

/root/repo/target/debug/deps/figure4_object_anatomy-f5ed60581fe59405: tests/figure4_object_anatomy.rs

tests/figure4_object_anatomy.rs:
