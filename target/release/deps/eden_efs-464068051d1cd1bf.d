/root/repo/target/release/deps/eden_efs-464068051d1cd1bf.d: crates/efs/src/lib.rs crates/efs/src/dir.rs crates/efs/src/efs.rs crates/efs/src/file.rs crates/efs/src/records.rs crates/efs/src/txn.rs

/root/repo/target/release/deps/libeden_efs-464068051d1cd1bf.rlib: crates/efs/src/lib.rs crates/efs/src/dir.rs crates/efs/src/efs.rs crates/efs/src/file.rs crates/efs/src/records.rs crates/efs/src/txn.rs

/root/repo/target/release/deps/libeden_efs-464068051d1cd1bf.rmeta: crates/efs/src/lib.rs crates/efs/src/dir.rs crates/efs/src/efs.rs crates/efs/src/file.rs crates/efs/src/records.rs crates/efs/src/txn.rs

crates/efs/src/lib.rs:
crates/efs/src/dir.rs:
crates/efs/src/efs.rs:
crates/efs/src/file.rs:
crates/efs/src/records.rs:
crates/efs/src/txn.rs:
