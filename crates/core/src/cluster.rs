//! The cluster harness: a whole Eden system in one process.
//!
//! Figure 1 of the paper shows node machines and a file-server node on
//! one Ethernet. [`Cluster`] builds exactly that — N kernels over a
//! [`LoopbackMesh`] (optionally traffic-shaped to feel like the wire) —
//! and gives tests and benchmarks handles to every node plus failure
//! controls (kill, partition, heal).

use std::path::PathBuf;
use std::sync::Arc;

use eden_store::{CheckpointStore, DiskStore, MemStore};
use eden_transport::{LoopbackMesh, MeshOptions};
use parking_lot::Mutex;

use crate::node::{Node, NodeConfig};
use crate::types::{TypeManager, TypeRegistry};

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of node machines.
    pub nodes: usize,
    /// Per-node kernel configuration.
    pub node_config: NodeConfig,
    /// Network shaping.
    pub mesh_options: MeshOptions,
    /// When set, each node gets a [`DiskStore`] log under this directory;
    /// otherwise checkpoints live in per-node [`MemStore`]s.
    pub disk_dir: Option<PathBuf>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            node_config: NodeConfig::default(),
            mesh_options: MeshOptions::default(),
            disk_dir: None,
        }
    }
}

type TypeFactory = Box<dyn Fn() -> Box<dyn TypeManager> + Send + Sync>;

/// Builds a [`Cluster`].
pub struct ClusterBuilder {
    config: ClusterConfig,
    factories: Vec<TypeFactory>,
}

impl ClusterBuilder {
    /// Number of node machines (ids `0..n`).
    #[must_use]
    pub fn nodes(mut self, n: usize) -> Self {
        self.config.nodes = n;
        self
    }

    /// Per-node kernel configuration.
    #[must_use]
    pub fn node_config(mut self, config: NodeConfig) -> Self {
        self.config.node_config = config;
        self
    }

    /// Network traffic shaping (latency, loss, seed).
    #[must_use]
    pub fn mesh(mut self, options: MeshOptions) -> Self {
        self.config.mesh_options = options;
        self
    }

    /// Store checkpoints on disk under `dir` (one log per node).
    #[must_use]
    pub fn disk_stores(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.disk_dir = Some(dir.into());
        self
    }

    /// Registers a type on every node; the factory runs once per node,
    /// mirroring the paper's per-node sharing of type code.
    #[must_use]
    pub fn register<F>(mut self, factory: F) -> Self
    where
        F: Fn() -> Box<dyn TypeManager> + Send + Sync + 'static,
    {
        self.factories.push(Box::new(factory));
        self
    }

    /// Boots the cluster.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (zero nodes, bad type specs, or an
    /// unwritable disk directory) — construction errors in a test
    /// harness.
    pub fn build(self) -> Cluster {
        assert!(self.config.nodes >= 1, "a cluster needs at least one node");
        let mesh = Arc::new(LoopbackMesh::with_options(
            self.config.nodes,
            self.config.mesh_options,
        ));
        let mut nodes = Vec::with_capacity(self.config.nodes);
        for i in 0..self.config.nodes {
            let registry = Arc::new(TypeRegistry::new());
            for factory in &self.factories {
                registry
                    .register(Arc::from(factory()))
                    .expect("type registration failed");
            }
            let store: Arc<dyn CheckpointStore> = match &self.config.disk_dir {
                Some(dir) => Arc::new(
                    DiskStore::open(
                        dir.join(format!("node-{i}.log")),
                        eden_store::disk::SyncPolicy::Never,
                    )
                    .expect("open disk store"),
                ),
                None => Arc::new(MemStore::new()),
            };
            let endpoint = mesh.endpoint(i);
            nodes.push(Node::new(
                self.config.node_config.clone(),
                endpoint,
                store,
                registry,
            ));
        }
        Cluster {
            nodes,
            mesh,
            down: Mutex::new(vec![false; self.config.nodes]),
        }
    }
}

/// A running in-process Eden system.
pub struct Cluster {
    nodes: Vec<Node>,
    mesh: Arc<LoopbackMesh>,
    down: Mutex<Vec<bool>>,
}

impl Cluster {
    /// Starts a builder.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder {
            config: ClusterConfig::default(),
            factories: Vec::new(),
        }
    }

    /// The kernel of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// All kernels.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes (including killed ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes (never true post-build).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The underlying mesh, for partitions and traffic inspection.
    pub fn mesh(&self) -> &LoopbackMesh {
        &self.mesh
    }

    /// Simulates a node-machine failure: the kernel stops and every
    /// frame to it vanishes. Active objects on it are lost (§4.4: "Eden
    /// makes no attempt to restore any state that existed in memory at
    /// the time of a crash"); checkpointed ones reincarnate elsewhere on
    /// their next invocation.
    pub fn kill(&self, i: usize) {
        // Claim the flag in its own scope: `shutdown()` joins the node's
        // threads, and holding `down` across that join would stall every
        // concurrent `is_down` probe for the whole teardown.
        {
            let mut down = self.down.lock();
            if down[i] {
                return;
            }
            down[i] = true;
        }
        self.mesh.kill(eden_capability::NodeId(i as u16));
        self.nodes[i].shutdown();
    }

    /// Whether node `i` has been killed.
    pub fn is_down(&self, i: usize) -> bool {
        self.down.lock()[i]
    }

    /// Stops every kernel and the mesh.
    pub fn shutdown(&self) {
        for node in &self.nodes {
            node.shutdown();
        }
        self.mesh.shutdown();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
