/root/repo/target/debug/deps/classes-0ecd01b1745d4412.d: crates/bench/benches/classes.rs

/root/repo/target/debug/deps/classes-0ecd01b1745d4412: crates/bench/benches/classes.rs

crates/bench/benches/classes.rs:
