/root/repo/target/debug/examples/multiprocess_net-a6c215a526d27996.d: examples/multiprocess_net.rs

/root/repo/target/debug/examples/multiprocess_net-a6c215a526d27996: examples/multiprocess_net.rs

examples/multiprocess_net.rs:
