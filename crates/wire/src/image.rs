//! Serialized object representations.
//!
//! An [`ObjectImage`] is the portable form of an object's long-term state:
//! "the data and capability segments that form the object's long-term
//! state" (§4.1), plus the type name needed to rebind the image to its
//! type manager's code on the destination node. Images travel in three
//! situations: checkpointing to a checksite (§4.4), object mobility
//! (§4.3 `move`), and replica distribution for frozen objects (§4.3).
//!
//! Short-term state is deliberately *not* representable: "the short-term
//! state … is never written to long-term storage" (§4.1), and mobility and
//! reincarnation both reconstruct it from scratch.

use bytes::Bytes;

use crate::codec::{CodecError, Reader, WireDecode, WireEncode, Writer};
use eden_capability::Capability;

/// The portable long-term state of one object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectImage {
    /// The name of the type whose manager interprets this representation.
    pub type_name: String,
    /// Named data segments, in deterministic (sorted) order.
    pub data: Vec<(String, Bytes)>,
    /// Named capability slots, in deterministic (sorted) order.
    pub caps: Vec<(String, Capability)>,
    /// Whether the representation is frozen (immutable, cacheable).
    pub frozen: bool,
    /// Monotone representation version, advanced on every checkpoint.
    pub version: u64,
}

impl ObjectImage {
    /// An empty, unfrozen image of the given type at version 0.
    pub fn empty(type_name: impl Into<String>) -> Self {
        ObjectImage {
            type_name: type_name.into(),
            data: Vec::new(),
            caps: Vec::new(),
            frozen: false,
            version: 0,
        }
    }

    /// Total payload bytes across all data segments.
    pub fn data_size(&self) -> usize {
        self.data.iter().map(|(k, v)| k.len() + v.len()).sum()
    }
}

impl WireEncode for ObjectImage {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.type_name);
        w.put_u32(self.data.len() as u32);
        for (k, v) in &self.data {
            w.put_str(k);
            w.put_bytes(v);
        }
        w.put_u32(self.caps.len() as u32);
        for (k, c) in &self.caps {
            w.put_str(k);
            c.encode(w);
        }
        w.put_bool(self.frozen);
        w.put_u64(self.version);
    }
}

impl WireDecode for ObjectImage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let type_name = r.get_str()?;
        let n = r.get_u32()? as usize;
        let mut data = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let k = r.get_str()?;
            let v = r.get_bytes()?;
            data.push((k, v));
        }
        let n = r.get_u32()? as usize;
        let mut caps = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let k = r.get_str()?;
            let c = Capability::decode(r)?;
            caps.push((k, c));
        }
        let frozen = r.get_bool()?;
        let version = r.get_u64()?;
        Ok(ObjectImage {
            type_name,
            data,
            caps,
            frozen,
            version,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_capability::{NameGenerator, NodeId};
    use proptest::prelude::*;

    #[test]
    fn empty_image_has_no_payload() {
        let img = ObjectImage::empty("file");
        assert_eq!(img.data_size(), 0);
        assert_eq!(img.version, 0);
        assert!(!img.frozen);
    }

    #[test]
    fn image_round_trips() {
        let g = NameGenerator::with_epoch(NodeId(2), 3);
        let img = ObjectImage {
            type_name: "mailbox".into(),
            data: vec![
                ("body".into(), Bytes::from_static(b"hello")),
                ("count".into(), Bytes::from_static(&[0, 0, 0, 4])),
            ],
            caps: vec![("owner".into(), Capability::mint(g.next_name()))],
            frozen: true,
            version: 9,
        };
        let buf = img.encode_to_bytes();
        assert_eq!(ObjectImage::decode_from_bytes(&buf).unwrap(), img);
    }

    proptest! {
        #[test]
        fn arbitrary_images_round_trip(
            type_name in "[a-z]{1,10}",
            data in proptest::collection::vec(("[a-z]{1,8}", proptest::collection::vec(0u8.., 0..128)), 0..8),
            frozen in proptest::bool::ANY,
            version in 0u64..,
        ) {
            let img = ObjectImage {
                type_name,
                data: data.into_iter().map(|(k, v)| (k, Bytes::from(v))).collect(),
                caps: Vec::new(),
                frozen,
                version,
            };
            let buf = img.encode_to_bytes();
            prop_assert_eq!(ObjectImage::decode_from_bytes(&buf).unwrap(), img);
        }

        #[test]
        fn decoding_garbage_never_panics(garbage in proptest::collection::vec(0u8.., 0..512)) {
            let _ = ObjectImage::decode_from_bytes(&garbage);
        }
    }
}
