// Fixture: suppression comments (scanned as crates/core/src/node.rs).
// One violation per rule, each covered by an eden-lint allow comment —
// same-line and line-above forms both count.

fn caretaker() {
    // eden-lint: allow(pool-discipline)
    std::thread::spawn(|| {});
}

impl Node {
    // eden-lint: allow(capability-discipline) — covers the fn line below
    pub fn replicate(&self, cap: Capability) -> Result<()> {
        self.inner.endpoint.send(cap.into())
    }
}

fn retryable(status: &Status) -> bool {
    match status {
        Status::Timeout => true,
        _ => false, // eden-lint: allow(wire-exhaustiveness)
    }
}

fn peek(state: &Mutex<u64>) -> u64 {
    *state.lock().unwrap() // eden-lint: allow(panic-hygiene)
}

struct Telemetry {
    // eden-lint: allow(metric-discipline)
    frames_sent: AtomicU64,
}
