//! In-tree shim for the `rand` crate (0.9-style API).
//!
//! Provides the subset the workspace uses: the [`Rng`] / [`SeedableRng`]
//! traits with `random`, `random_range` and `random_bool`, the
//! [`rngs::SmallRng`] generator (xoshiro256++), and [`rng()`] for an
//! entropy-seeded generator. Statistical quality is adequate for
//! simulation and tests; this is not a cryptographic generator.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a generator ("standard"
/// distribution: full range for integers, `[0, 1)` for floats).
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {
        $(impl StandardUniform for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardUniform for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end - self.start) as u128;
                    self.start + (u128::sample(rng) % span) as $ty
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi - lo) as u128 + 1;
                    lo + (u128::sample(rng) % span) as $ty
                }
            }
        )*
    };
}

impl_sample_range_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (u128::sample(rng) % span) as i128) as $ty
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (u128::sample(rng) % span) as i128) as $ty
                }
            }
        )*
    };
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "empty range");
                    self.start + <$ty>::sample(rng) * (self.end - self.start)
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    lo + <$ty>::sample(rng) * (hi - lo)
                }
            }
        )*
    };
}

impl_sample_range_float!(f32, f64);

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Returns a fresh entropy-seeded generator (the 0.9 `rand::rng()`).
pub fn rng() -> rngs::SmallRng {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    use std::time::{SystemTime, UNIX_EPOCH};

    // RandomState carries per-process OS entropy; fold in time and a
    // per-call counter so successive calls diverge.
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let mut h = RandomState::new().build_hasher();
    h.write_u64(
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0),
    );
    h.write_u64(COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
    SeedableRng::seed_from_u64(h.finish())
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_rngs_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let g = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&g));
        }
    }

    #[test]
    fn entropy_rngs_differ() {
        let mut a = super::rng();
        let mut b = super::rng();
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }
}
