//! Distributed invocation tracing end-to-end.
//!
//! One cross-node invocation must yield a single causally linked span
//! tree spanning both kernels: the client's `invoke` root and
//! `client-send`, the server's `dispatch` and `execute` (joined via the
//! trace context carried on the wire), plus transport `net` spans and
//! the client-side `reply` mark.

use std::collections::HashSet;

use eden::apps::counter::CounterType;
use eden::kernel::{Cluster, NodeConfig};
use eden::obs::{render_trace, SpanRecord, TraceSampling};
use eden::wire::Value;

fn two_node_cluster() -> Cluster {
    Cluster::builder()
        .nodes(2)
        .register(|| Box::new(CounterType))
        .build()
}

/// All spans from every node of the cluster, merged.
fn all_spans(c: &Cluster) -> Vec<SpanRecord> {
    c.nodes()
        .iter()
        .flat_map(|n| n.obs().traces().spans())
        .collect()
}

#[test]
fn cross_node_invocation_yields_one_causally_linked_trace() {
    let c = two_node_cluster();
    let cap = c.node(0).create_object("counter", &[]).unwrap();
    c.node(1).invoke(cap, "add", &[Value::I64(5)]).unwrap();

    // The client's root span identifies the trace.
    let root = c
        .node(1)
        .obs()
        .traces()
        .spans()
        .into_iter()
        .find(|s| s.name == "invoke" && s.parent_span == 0)
        .expect("client must record a root `invoke` span");

    let spans: Vec<SpanRecord> = all_spans(&c)
        .into_iter()
        .filter(|s| s.trace_id == root.trace_id)
        .collect();
    assert!(
        spans.len() >= 4,
        "a remote invocation must produce at least 4 spans, got {}: {:?}",
        spans.len(),
        spans.iter().map(|s| s.name).collect::<Vec<_>>()
    );

    // Causal linkage: every span is the root or hangs off another span
    // of the same trace.
    let ids: HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    for s in &spans {
        assert!(
            s.parent_span == 0 || ids.contains(&s.parent_span),
            "span {:?} has a dangling parent",
            s
        );
    }

    // The expected layers all contributed.
    let names: HashSet<&str> = spans.iter().map(|s| s.name).collect();
    for expected in ["invoke", "client-send", "dispatch", "execute"] {
        assert!(names.contains(expected), "missing span {expected:?}");
    }

    // And the tree genuinely crosses nodes.
    let nodes: HashSet<u16> = spans.iter().map(|s| s.node).collect();
    assert!(
        nodes.contains(&0) && nodes.contains(&1),
        "spans must come from both kernels, got {nodes:?}"
    );

    // The renderer draws one tree rooted at `invoke`.
    let tree = render_trace(&spans, root.trace_id);
    assert!(tree.contains("invoke"), "render:\n{tree}");
    assert!(tree.contains("execute"), "render:\n{tree}");
    c.shutdown();
}

#[test]
fn local_invocations_trace_without_crossing_the_wire() {
    let c = two_node_cluster();
    let cap = c.node(0).create_object("counter", &[]).unwrap();
    c.node(0).invoke(cap, "add", &[Value::I64(1)]).unwrap();

    let spans = c.node(0).obs().traces().spans();
    let root = spans
        .iter()
        .find(|s| s.name == "invoke" && s.parent_span == 0)
        .expect("root span");
    let mine: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.trace_id == root.trace_id)
        .collect();
    let names: HashSet<&str> = mine.iter().map(|s| s.name).collect();
    assert!(names.contains("dispatch") && names.contains("execute"));
    // Everything happened on node 0.
    assert!(mine.iter().all(|s| s.node == 0));
    c.shutdown();
}

#[test]
fn separate_invocations_get_separate_traces() {
    let c = two_node_cluster();
    let cap = c.node(0).create_object("counter", &[]).unwrap();
    c.node(1).invoke(cap, "add", &[Value::I64(1)]).unwrap();
    c.node(1).invoke(cap, "add", &[Value::I64(2)]).unwrap();

    let roots: Vec<SpanRecord> = c
        .node(1)
        .obs()
        .traces()
        .spans()
        .into_iter()
        .filter(|s| s.name == "invoke" && s.parent_span == 0)
        .collect();
    assert_eq!(roots.len(), 2);
    assert_ne!(roots[0].trace_id, roots[1].trace_id);
    c.shutdown();
}

/// A cluster whose every node runs the given trace-sampling policy.
fn sampled_cluster(policy: TraceSampling) -> Cluster {
    Cluster::builder()
        .nodes(2)
        .node_config(NodeConfig {
            trace_sampling: policy,
            ..NodeConfig::default()
        })
        .register(|| Box::new(CounterType))
        .build()
}

#[test]
fn sampled_out_invocations_open_no_spans_anywhere() {
    let c = sampled_cluster(TraceSampling::Ratio(0));
    let cap = c.node(0).create_object("counter", &[]).unwrap();
    for i in 0..4 {
        let out = c.node(1).invoke(cap, "add", &[Value::I64(1)]).unwrap();
        assert_eq!(out, vec![Value::I64(i + 1)], "invocations still work");
    }
    // No root means no trace context on any frame: neither kernel nor
    // the transport opened a single span.
    assert!(all_spans(&c).is_empty(), "got {:?}", all_spans(&c));
    c.shutdown();
}

#[test]
fn ratio_sampling_traces_a_deterministic_subset() {
    let c = sampled_cluster(TraceSampling::Ratio(4));
    let cap = c.node(0).create_object("counter", &[]).unwrap();
    for _ in 0..40 {
        c.node(1).invoke(cap, "add", &[Value::I64(1)]).unwrap();
    }
    let roots: Vec<SpanRecord> = c
        .node(1)
        .obs()
        .traces()
        .spans()
        .into_iter()
        .filter(|s| s.name == "invoke" && s.parent_span == 0)
        .collect();
    assert_eq!(roots.len(), 10, "1-in-4 of 40 invocations");
    // Sampled invocations still produce complete cross-node trees.
    let dispatches = c
        .node(0)
        .obs()
        .traces()
        .spans()
        .into_iter()
        .filter(|s| s.name == "dispatch")
        .count();
    assert_eq!(dispatches, 10);
    c.shutdown();
}

#[test]
fn per_operation_sampling_selects_by_operation_name() {
    let c = sampled_cluster(TraceSampling::PerOperation {
        ops: [("get".to_string(), 1)].into_iter().collect(),
        default: 0,
    });
    let cap = c.node(0).create_object("counter", &[]).unwrap();
    for _ in 0..5 {
        c.node(1).invoke(cap, "add", &[Value::I64(1)]).unwrap();
        c.node(1).invoke(cap, "get", &[]).unwrap();
    }
    let roots: Vec<SpanRecord> = c
        .node(1)
        .obs()
        .traces()
        .spans()
        .into_iter()
        .filter(|s| s.name == "invoke" && s.parent_span == 0)
        .collect();
    assert_eq!(roots.len(), 5, "only the `get`s are traced");
    c.shutdown();
}
