/root/repo/target/debug/deps/eden_obs-d9a60eddac1a1ff3.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/metric.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libeden_obs-d9a60eddac1a1ff3.rmeta: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/export.rs crates/obs/src/hist.rs crates/obs/src/metric.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/export.rs:
crates/obs/src/hist.rs:
crates/obs/src/metric.rs:
crates/obs/src/recorder.rs:
crates/obs/src/registry.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
