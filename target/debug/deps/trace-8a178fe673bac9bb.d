/root/repo/target/debug/deps/trace-8a178fe673bac9bb.d: tests/trace.rs

/root/repo/target/debug/deps/trace-8a178fe673bac9bb: tests/trace.rs

tests/trace.rs:
