//! E1 — local vs. remote invocation latency (the cost of location
//! transparency).
//!
//! Four configurations — same node, cross-node over the zero-latency
//! mesh, cross-node over a 10 Mb/s-LAN-shaped mesh, and cross-kernel
//! over real TCP sockets — each at four payload sizes. Expected shape:
//! local ≪ remote; remote cost grows with payload (serialization and,
//! on the LAN model, wire time); TCP sits between the zero-latency mesh
//! and the LAN model.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use eden_capability::Capability;
use eden_kernel::{Node, NodeConfig, TypeRegistry};
use eden_obs::{Histogram, HistogramSnapshot};
use eden_store::MemStore;
use eden_transport::{LatencyModel, MeshOptions, TcpMesh};
use eden_wire::Value;

use crate::fmt_us;
use crate::table::Table;
use crate::types::{bench_cluster, with_bench_types, EchoType};

const PAYLOADS: [usize; 4] = [0, 64, 1024, 65536];

/// Times `iters` echo invocations individually into a log-linear
/// histogram, so the table can report the latency *distribution* rather
/// than a mean that hides tail behavior.
fn echo_latency(
    invoker: &Node,
    cap: Capability,
    payload: usize,
    iters: usize,
) -> HistogramSnapshot {
    let blob = Value::Blob(Bytes::from(vec![0u8; payload]));
    let args = [blob];
    // Warm the location cache and code paths.
    for _ in 0..3 {
        invoker
            .invoke_with_timeout(cap, "echo", &args, Duration::from_secs(10))
            .expect("echo");
    }
    let hist = Histogram::new();
    for _ in 0..iters {
        let start = Instant::now();
        invoker
            .invoke_with_timeout(cap, "echo", &args, Duration::from_secs(10))
            .expect("echo");
        hist.record_duration(start.elapsed());
    }
    hist.snapshot()
}

/// Formats a latency distribution as `p50 / p95 / p99`.
fn fmt_pcts(s: &HistogramSnapshot) -> String {
    format!(
        "{} / {} / {}",
        fmt_us(s.percentile(50.0) as f64 / 1e3),
        fmt_us(s.percentile(95.0) as f64 / 1e3),
        fmt_us(s.percentile(99.0) as f64 / 1e3),
    )
}

fn iters_for(payload: usize, lan: bool) -> usize {
    match (payload, lan) {
        (65536, true) => 5,
        (65536, false) => 30,
        (_, true) => 40,
        _ => 200,
    }
}

/// Runs E1 and returns the table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E1 — invocation latency: local vs remote (p50 / p95 / p99 µs)",
        &[
            "payload",
            "local",
            "mesh (0-lat)",
            "mesh (10Mb/s LAN)",
            "tcp loopback",
        ],
    );

    // Local + zero-latency mesh share one cluster.
    let cluster = bench_cluster(2);
    let cap = cluster
        .node(0)
        .create_object(EchoType::NAME, &[])
        .expect("create echo");

    // LAN-shaped cluster.
    let lan = with_bench_types(eden_apps::with_apps(
        eden_kernel::Cluster::builder().nodes(2).mesh(MeshOptions {
            latency: LatencyModel::lan_10mbps(),
            loss_probability: 0.0,
            seed: 1,
        }),
    ))
    .build();
    let lan_cap = lan
        .node(0)
        .create_object(EchoType::NAME, &[])
        .expect("create echo");

    // TCP pair.
    let meshes = TcpMesh::bind_local_cluster(2).expect("tcp cluster");
    let tcp_nodes: Vec<Node> = meshes
        .into_iter()
        .map(|mesh| {
            let registry = Arc::new(TypeRegistry::new());
            registry.register(Arc::new(EchoType)).unwrap();
            Node::new(
                NodeConfig::default(),
                Arc::new(mesh),
                Arc::new(MemStore::new()),
                registry,
            )
        })
        .collect();
    let tcp_cap = tcp_nodes[0]
        .create_object(EchoType::NAME, &[])
        .expect("create echo");

    for payload in PAYLOADS {
        let local = echo_latency(cluster.node(0), cap, payload, iters_for(payload, false));
        let mesh = echo_latency(cluster.node(1), cap, payload, iters_for(payload, false));
        let lan_hist = echo_latency(lan.node(1), lan_cap, payload, iters_for(payload, true));
        let tcp = echo_latency(&tcp_nodes[1], tcp_cap, payload, iters_for(payload, false));
        t.row(vec![
            format!("{payload} B"),
            fmt_pcts(&local),
            fmt_pcts(&mesh),
            fmt_pcts(&lan_hist),
            fmt_pcts(&tcp),
        ]);
    }
    t.note("cells are p50 / p95 / p99 per invocation; expected shape: local ≪ remote; LAN cost dominated by serialization time for large payloads");

    // Telemetry artifacts: a Prometheus scrape of both mesh kernels
    // (per-node plus cluster-merged series) and a Chrome trace of the
    // echo invocations, exported through a monitor object so the data
    // travels the same invocation path it measures.
    if let Ok(monitor) = eden_apps::MonitorClient::for_cluster(&cluster) {
        if let Ok(prom) = monitor.prometheus() {
            let _ = std::fs::write(crate::artifact_path("e1.prom"), prom);
        }
        if let Ok(json) = monitor.chrome_trace(None) {
            let _ = std::fs::write(crate::artifact_path("e1.trace.json"), json);
        }
        t.note("artifacts: target/artifacts/e1.prom, target/artifacts/e1.trace.json");
    }

    for node in &tcp_nodes {
        node.shutdown();
    }
    cluster.shutdown();
    lan.shutdown();
    t
}
