/root/repo/target/debug/deps/eden_store-c6694f86d8dd71ec.d: crates/store/src/lib.rs crates/store/src/crc.rs crates/store/src/disk.rs crates/store/src/faulty.rs crates/store/src/mem.rs crates/store/src/replicated.rs Cargo.toml

/root/repo/target/debug/deps/libeden_store-c6694f86d8dd71ec.rmeta: crates/store/src/lib.rs crates/store/src/crc.rs crates/store/src/disk.rs crates/store/src/faulty.rs crates/store/src/mem.rs crates/store/src/replicated.rs Cargo.toml

crates/store/src/lib.rs:
crates/store/src/crc.rs:
crates/store/src/disk.rs:
crates/store/src/faulty.rs:
crates/store/src/mem.rs:
crates/store/src/replicated.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
