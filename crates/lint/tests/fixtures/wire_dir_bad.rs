// Fixture: L3 wire-exhaustiveness violations over the directory wire
// enums (scanned as crates/directory/src/shard.rs): wildcard arms in
// matches over DirState and DirRegisterKind variants.

fn is_hit(state: DirState) -> bool {
    match state {
        DirState::Hit => true,
        _ => false,
    }
}

fn registers_holder(kind: DirRegisterKind) -> bool {
    match kind {
        DirRegisterKind::Active | DirRegisterKind::Checkpoint => true,
        _ => false,
    }
}
