//! E16 — multiplexed receive path + client invocation pipelining.
//!
//! Two kernel-side changes meet here (DESIGN.md §30): inbound TCP is
//! drained by a small fixed pool of reader threads multiplexing every
//! connection (thread count flat as peers scale), and the receive loop
//! hands whole frame batches to the virtual-processor pool in one
//! enqueue. On top of that, `PipelinedClient` keeps a window of
//! invocations in flight per connection instead of one.
//!
//! The measurement: one server kernel over real loopback TCP, N client
//! kernels (N = one connection each), every client invoking its own
//! trivial object on the server.
//!
//! * **baseline** — each connection runs one-RTT-per-call (`call_sync`):
//!   request, block for the reply, repeat.
//! * **pipelined** — each connection keeps a window of
//!   [`WINDOW`] calls outstanding, harvesting oldest-first while it
//!   issues.
//!
//! Acceptance: pipelined throughput ≥3x the baseline at 64 connections,
//! and the server's reader-thread count stays at the configured pool
//! size at every scale.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eden_capability::{Capability, NodeId, Rights};
use eden_kernel::{
    Node, NodeConfig, OpCtx, OpError, OpResult, TypeManager, TypeRegistry, TypeSpec,
};
use eden_obs::TraceSampling;
use eden_store::MemStore;
use eden_transport::{Endpoint, TcpMesh, TcpTuning};
use eden_wire::{Status, Value};

use crate::artifact_path;
use crate::table::Table;

/// Connection counts measured (one client kernel per connection).
const SCALES: [usize; 3] = [4, 16, 64];
/// In-flight window per connection on the pipelined runs.
const WINDOW: usize = 32;
/// The server's reader-pool size — the number that must stay flat.
const READER_POOL: usize = 4;
/// One-RTT-per-call invocations per connection.
const BASELINE_CALLS: usize = 200;
/// Pipelined invocations per connection.
const PIPELINED_CALLS: usize = 1000;
/// Per-call reply budget. Generous on purpose: at 64 connections the
/// harness runs 65 in-process kernels, and on a small machine a reply
/// can be scheduler-starved for seconds without anything being wrong.
/// Loopback TCP never loses the frame, so the run disables the
/// retransmission machinery (pure added load here) and lets every call
/// complete; the all-Ok asserts below then catch any frame actually
/// lost in the receive path.
const CALL_BUDGET: Duration = Duration::from_secs(120);

/// The cheapest possible serving object: the run measures the receive
/// path and dispatch machinery, not operation work.
struct Echo;

impl TypeManager for Echo {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new("e16.echo")
            .class("all", 64)
            .op("echo", "all", Rights::EXECUTE)
    }

    fn dispatch(&self, _ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "echo" => Ok(args.to_vec()),
            other => Err(OpError::no_such_op(other)),
        }
    }
}

fn server_config() -> NodeConfig {
    NodeConfig {
        virtual_processors: 4,
        vproc_workers: 8,
        // Headroom over the largest burst (64 conns x 32 window): the
        // run measures throughput, not the Overloaded shed path.
        vproc_queue_cap: 8192,
        trace_sampling: TraceSampling::Ratio(0),
        enable_retransmission: false,
        default_invoke_timeout: CALL_BUDGET,
        ..NodeConfig::default()
    }
}

fn client_config() -> NodeConfig {
    NodeConfig {
        virtual_processors: 1,
        vproc_workers: 1,
        trace_sampling: TraceSampling::Ratio(0),
        enable_retransmission: false,
        default_invoke_timeout: CALL_BUDGET,
        ..NodeConfig::default()
    }
}

struct TcpCluster {
    server: Node,
    server_mesh: Arc<TcpMesh>,
    clients: Vec<Node>,
}

impl TcpCluster {
    fn build(n_clients: usize) -> TcpCluster {
        let tuning = TcpTuning {
            reader_threads: READER_POOL,
            queue_cap: 1 << 15,
            ..TcpTuning::default()
        };
        let meshes: Vec<Arc<TcpMesh>> = TcpMesh::bind_local_cluster_with(1 + n_clients, tuning)
            .expect("bind loopback cluster")
            .into_iter()
            .map(Arc::new)
            .collect();
        let mut meshes = meshes.into_iter();
        let server_mesh = meshes.next().expect("server endpoint");
        let registry = Arc::new(TypeRegistry::new());
        registry.register(Arc::new(Echo)).expect("register echo");
        let server = Node::new(
            server_config(),
            server_mesh.clone(),
            Arc::new(MemStore::new()),
            registry,
        );
        let clients = meshes
            .map(|m| {
                Node::new(
                    client_config(),
                    m,
                    Arc::new(MemStore::new()),
                    Arc::new(TypeRegistry::new()),
                )
            })
            .collect();
        TcpCluster {
            server,
            server_mesh,
            clients,
        }
    }

    fn shutdown(self) {
        for c in &self.clients {
            c.shutdown();
        }
        self.server.shutdown();
    }
}

/// One-RTT-per-call driver: issue, block, repeat. Returns Ok count.
fn drive_baseline(client: &Node, cap: Capability) -> u64 {
    let pc = client.pipelined_client_to(cap, NodeId(0));
    (0..BASELINE_CALLS)
        .filter(|_| pc.call_sync("echo", &[Value::U64(1)]).0 == Status::Ok)
        .count() as u64
}

/// Windowed driver: keep [`WINDOW`] calls outstanding, harvest the
/// oldest as each new one is issued. Returns Ok count.
fn drive_pipelined(client: &Node, cap: Capability) -> u64 {
    let pc = client.pipelined_client_to(cap, NodeId(0));
    let mut window = VecDeque::with_capacity(WINDOW);
    let mut ok = 0u64;
    for _ in 0..PIPELINED_CALLS {
        if window.len() >= WINDOW {
            let oldest: eden_kernel::PendingCall<'_> = window.pop_front().expect("non-empty");
            if oldest.wait(CALL_BUDGET).0 == Status::Ok {
                ok += 1;
            }
        }
        if let Ok(pending) = pc.call("echo", &[Value::U64(1)]) {
            window.push_back(pending);
        }
    }
    while let Some(pending) = window.pop_front() {
        if pending.wait(CALL_BUDGET).0 == Status::Ok {
            ok += 1;
        }
    }
    ok
}

/// Runs one mode across every connection in parallel; returns
/// (invocations/sec, completed-Ok count).
fn measure(cluster: &TcpCluster, caps: &[Capability], pipelined: bool) -> (f64, u64) {
    let start = Instant::now();
    let ok: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = cluster
            .clients
            .iter()
            .zip(caps)
            .map(|(client, &cap)| {
                s.spawn(move || {
                    if pipelined {
                        drive_pipelined(client, cap)
                    } else {
                        drive_baseline(client, cap)
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("driver")).sum()
    });
    (ok as f64 / start.elapsed().as_secs_f64(), ok)
}

/// One row of results at a fixed connection count.
pub struct ScalePoint {
    /// Connections (= client kernels).
    pub connections: usize,
    /// One-RTT-per-call invocations/sec across all connections.
    pub baseline_ips: f64,
    /// Windowed-pipelining invocations/sec across all connections.
    pub pipelined_ips: f64,
    /// Server reader threads observed after the runs.
    pub reader_threads: usize,
}

/// Runs both modes at one connection count.
fn run_scale(connections: usize) -> ScalePoint {
    let cluster = TcpCluster::build(connections);
    let caps: Vec<Capability> = (0..connections)
        .map(|_| {
            cluster
                .server
                .create_object("e16.echo", &[])
                .expect("create echo object")
        })
        .collect();
    let (baseline_ips, base_ok) = measure(&cluster, &caps, false);
    let (pipelined_ips, pipe_ok) = measure(&cluster, &caps, true);
    // Loopback TCP plus the generous budget: every call must complete.
    // A shortfall here means a frame was lost in the receive path.
    assert_eq!(
        base_ok as usize,
        connections * BASELINE_CALLS,
        "baseline calls all Ok"
    );
    assert_eq!(
        pipe_ok as usize,
        connections * PIPELINED_CALLS,
        "pipelined calls all Ok"
    );
    let reader_threads = cluster.server_mesh.reader_thread_count();
    cluster.shutdown();
    ScalePoint {
        connections,
        baseline_ips,
        pipelined_ips,
        reader_threads,
    }
}

/// Renders the machine-readable artifact alongside the printed table.
fn write_artifact(points: &[ScalePoint]) {
    let mut scales = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            scales.push_str(",\n");
        }
        scales.push_str(&format!(
            "    {{\"connections\": {}, \"baseline_inv_per_sec\": {:.0}, \
             \"pipelined_inv_per_sec\": {:.0}, \"speedup\": {:.2}, \
             \"server_reader_threads\": {}}}",
            p.connections,
            p.baseline_ips,
            p.pipelined_ips,
            p.pipelined_ips / p.baseline_ips,
            p.reader_threads,
        ));
    }
    let last = points.last().expect("at least one scale");
    let json = format!(
        "{{\n  \"experiment\": \"e16\",\n  \"window\": {WINDOW},\n  \
         \"reader_pool\": {READER_POOL},\n  \"baseline_calls_per_conn\": {BASELINE_CALLS},\n  \
         \"pipelined_calls_per_conn\": {PIPELINED_CALLS},\n  \"scales\": [\n{scales}\n  ],\n  \
         \"speedup_at_{}\": {:.2}\n}}\n",
        last.connections,
        last.pipelined_ips / last.baseline_ips,
    );
    let path = artifact_path("BENCH_E16.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Runs E16 and returns the table.
pub fn run() -> Table {
    // Warm-up: listener setup, lazy statics, the allocator.
    let _ = run_scale(2);

    let points: Vec<ScalePoint> = SCALES.iter().map(|&n| run_scale(n)).collect();

    let mut t = Table::new(
        format!(
            "E16 — pipelined invocations over loopback TCP: window {WINDOW} \
             vs one-RTT-per-call, reader pool of {READER_POOL}"
        ),
        &[
            "connections",
            "baseline inv/s",
            "pipelined inv/s",
            "speedup",
            "server reader threads",
        ],
    );
    for p in &points {
        t.row(vec![
            format!("{}", p.connections),
            format!("{:.0}", p.baseline_ips),
            format!("{:.0}", p.pipelined_ips),
            format!("{:.2}x", p.pipelined_ips / p.baseline_ips),
            format!("{}", p.reader_threads),
        ]);
    }
    let last = points.last().expect("non-empty");
    t.note(format!(
        "acceptance: >=3x at {} connections (measured {:.2}x); reader \
         threads flat at the pool size across every scale",
        last.connections,
        last.pipelined_ips / last.baseline_ips
    ));
    t.note(
        "expected shape: the baseline pays a full RTT per invocation; the \
         window overlaps them, so throughput tracks the server's dispatch \
         capacity and grows with connection count until the pool saturates",
    );
    write_artifact(&points);
    t
}
