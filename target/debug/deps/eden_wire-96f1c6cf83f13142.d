/root/repo/target/debug/deps/eden_wire-96f1c6cf83f13142.d: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/image.rs crates/wire/src/message.rs crates/wire/src/obs_codec.rs crates/wire/src/status.rs crates/wire/src/value.rs

/root/repo/target/debug/deps/libeden_wire-96f1c6cf83f13142.rlib: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/image.rs crates/wire/src/message.rs crates/wire/src/obs_codec.rs crates/wire/src/status.rs crates/wire/src/value.rs

/root/repo/target/debug/deps/libeden_wire-96f1c6cf83f13142.rmeta: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/image.rs crates/wire/src/message.rs crates/wire/src/obs_codec.rs crates/wire/src/status.rs crates/wire/src/value.rs

crates/wire/src/lib.rs:
crates/wire/src/codec.rs:
crates/wire/src/image.rs:
crates/wire/src/message.rs:
crates/wire/src/obs_codec.rs:
crates/wire/src/status.rs:
crates/wire/src/value.rs:
