//! [`Value`] encodings for observability payloads.
//!
//! The kernel's node object serves `get_metrics` / `get_trace` /
//! `get_flight_log` through *ordinary invocation*: scrape results must
//! therefore travel as invocation return parameters — [`Value`]s — not
//! as new frame fields. This module is that boundary: metrics
//! snapshots, span records and flight-recorder events to and from the
//! parameter algebra.
//!
//! Histogram buckets are encoded sparsely (`(index, count)` pairs):
//! the bucket array is ~1000 entries but a live histogram occupies a
//! handful, so a scrape reply stays small.

use std::collections::BTreeMap;

use eden_obs::export::NodeMetrics;
use eden_obs::hist::{bucket_count, HistogramSnapshot};
use eden_obs::trace::{intern_name, stage};
use eden_obs::{FlightEvent, InboundDropReason, KernelEvent, ObsRegistry, SpanRecord};

use crate::Value;

fn u128_to_value(v: u128) -> Value {
    Value::Str(format!("{v:#x}"))
}

fn u128_from_value(v: &Value) -> Option<u128> {
    u128::from_str_radix(v.as_str()?.strip_prefix("0x")?, 16).ok()
}

/// Encodes a histogram snapshot as a map with sparse buckets.
pub fn hist_to_value(s: &HistogramSnapshot) -> Value {
    let buckets: Vec<Value> = s
        .buckets()
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(i, &n)| Value::List(vec![Value::U64(i as u64), Value::U64(n)]))
        .collect();
    let mut m = BTreeMap::new();
    m.insert("count".to_string(), Value::U64(s.count));
    m.insert("sum".to_string(), Value::U64(s.sum));
    m.insert("min".to_string(), Value::U64(s.min));
    m.insert("max".to_string(), Value::U64(s.max));
    m.insert("buckets".to_string(), Value::List(buckets));
    Value::Map(m)
}

/// Decodes a histogram snapshot (inverse of [`hist_to_value`]).
pub fn hist_from_value(v: &Value) -> Option<HistogramSnapshot> {
    let m = v.as_map()?;
    let mut buckets = vec![0u64; bucket_count()];
    for entry in m.get("buckets")?.as_list()? {
        let pair = entry.as_list()?;
        let idx = pair.first()?.as_u64()? as usize;
        let n = pair.get(1)?.as_u64()?;
        if idx < buckets.len() {
            buckets[idx] = n;
        }
    }
    Some(HistogramSnapshot::from_parts(
        buckets,
        m.get("count")?.as_u64()?,
        m.get("sum")?.as_u64()?,
        m.get("min")?.as_u64()?,
        m.get("max")?.as_u64()?,
    ))
}

/// Encodes a full [`NodeMetrics`] (the `get_metrics` reply payload).
pub fn metrics_to_value(m: &NodeMetrics) -> Value {
    let counters: BTreeMap<String, Value> = m
        .counters
        .iter()
        .map(|(k, &v)| (k.clone(), Value::U64(v)))
        .collect();
    let gauges: BTreeMap<String, Value> = m
        .gauges
        .iter()
        .map(|(k, &v)| (k.clone(), Value::I64(v)))
        .collect();
    let histograms: BTreeMap<String, Value> = m
        .histograms
        .iter()
        .map(|(k, h)| (k.clone(), hist_to_value(h)))
        .collect();
    let mut out = BTreeMap::new();
    out.insert("node".to_string(), Value::Str(m.node.clone()));
    out.insert("counters".to_string(), Value::Map(counters));
    out.insert("gauges".to_string(), Value::Map(gauges));
    out.insert("histograms".to_string(), Value::Map(histograms));
    Value::Map(out)
}

/// Snapshots a live registry straight into the `get_metrics` reply
/// payload (what the kernel's node object calls).
pub fn registry_metrics_to_value(reg: &ObsRegistry) -> Value {
    metrics_to_value(&NodeMetrics::from_registry(reg))
}

/// Decodes a `get_metrics` reply (inverse of [`metrics_to_value`]).
pub fn metrics_from_value(v: &Value) -> Option<NodeMetrics> {
    let m = v.as_map()?;
    let mut counters = BTreeMap::new();
    for (k, v) in m.get("counters")?.as_map()? {
        counters.insert(k.clone(), v.as_u64()?);
    }
    let mut gauges = BTreeMap::new();
    for (k, v) in m.get("gauges")?.as_map()? {
        gauges.insert(k.clone(), v.as_i64()?);
    }
    let mut histograms = BTreeMap::new();
    for (k, v) in m.get("histograms")?.as_map()? {
        histograms.insert(k.clone(), hist_from_value(v)?);
    }
    Some(NodeMetrics {
        node: m.get("node")?.as_str()?.to_string(),
        counters,
        gauges,
        histograms,
    })
}

/// Encodes one span record. The `stage` key is omitted for untagged
/// spans, so pre-stage decoders (and small payloads) are unaffected.
pub fn span_to_value(s: &SpanRecord) -> Value {
    let mut m = BTreeMap::new();
    m.insert("trace".to_string(), Value::U64(s.trace_id));
    m.insert("span".to_string(), Value::U64(s.span_id));
    m.insert("parent".to_string(), Value::U64(s.parent_span));
    m.insert("node".to_string(), Value::U64(s.node as u64));
    m.insert("name".to_string(), Value::Str(s.name.to_string()));
    if !s.stage.is_empty() {
        m.insert("stage".to_string(), Value::Str(s.stage.to_string()));
    }
    m.insert("start".to_string(), Value::U64(s.start_ns));
    m.insert("end".to_string(), Value::U64(s.end_ns));
    Value::Map(m)
}

/// Decodes one span record. Decoded names are interned (the record's
/// name field is `&'static str`); the span-name vocabulary is small and
/// fixed, so the intern table stays bounded. A missing `stage` key
/// (pre-stage encoders) decodes as untagged.
pub fn span_from_value(v: &Value) -> Option<SpanRecord> {
    let m = v.as_map()?;
    Some(SpanRecord {
        trace_id: m.get("trace")?.as_u64()?,
        span_id: m.get("span")?.as_u64()?,
        parent_span: m.get("parent")?.as_u64()?,
        node: m.get("node")?.as_u64()? as u16,
        name: intern_name(m.get("name")?.as_str()?),
        stage: match m.get("stage") {
            Some(v) => stage::intern(v.as_str()?),
            None => stage::NONE,
        },
        start_ns: m.get("start")?.as_u64()?,
        end_ns: m.get("end")?.as_u64()?,
    })
}

/// Encodes a span list (the `get_trace` reply payload).
pub fn spans_to_value(spans: &[SpanRecord]) -> Value {
    Value::List(spans.iter().map(span_to_value).collect())
}

/// Decodes a span list (inverse of [`spans_to_value`]).
pub fn spans_from_value(v: &Value) -> Option<Vec<SpanRecord>> {
    v.as_list()?.iter().map(span_from_value).collect()
}

/// Encodes one flight-recorder event tagged with its recording node.
pub fn event_to_value(node: u16, e: &FlightEvent) -> Value {
    let mut m = BTreeMap::new();
    m.insert("seq".to_string(), Value::U64(e.seq));
    m.insert("at".to_string(), Value::U64(e.at_ns));
    m.insert("node".to_string(), Value::U64(node as u64));
    let mut field = |k: &str, v: Value| {
        m.insert(k.to_string(), v);
    };
    match &e.event {
        KernelEvent::Crash { obj } => {
            field("kind", Value::Str("crash".into()));
            field("obj", u128_to_value(*obj));
        }
        KernelEvent::Reincarnation { obj, version } => {
            field("kind", Value::Str("reincarnation".into()));
            field("obj", u128_to_value(*obj));
            field("version", Value::U64(*version));
        }
        KernelEvent::CheckpointWrite { obj, version } => {
            field("kind", Value::Str("checkpoint".into()));
            field("obj", u128_to_value(*obj));
            field("version", Value::U64(*version));
        }
        KernelEvent::MoveOut { obj, dst } => {
            field("kind", Value::Str("move_out".into()));
            field("obj", u128_to_value(*obj));
            field("dst", Value::U64(*dst as u64));
        }
        KernelEvent::MoveIn { obj, src } => {
            field("kind", Value::Str("move_in".into()));
            field("obj", u128_to_value(*obj));
            field("src", Value::U64(*src as u64));
        }
        KernelEvent::Forward { obj, dst } => {
            field("kind", Value::Str("forward".into()));
            field("obj", u128_to_value(*obj));
            field("dst", Value::U64(*dst as u64));
        }
        KernelEvent::Retransmit { inv_id, dst } => {
            field("kind", Value::Str("retransmit".into()));
            field("inv_id", Value::U64(*inv_id));
            field("dst", Value::U64(*dst as u64));
        }
        KernelEvent::RemoteTimeout { dst } => {
            field("kind", Value::Str("remote_timeout".into()));
            field("dst", Value::U64(*dst as u64));
        }
        KernelEvent::WhereIsBroadcast { obj } => {
            field("kind", Value::Str("where_is".into()));
            field("obj", u128_to_value(*obj));
        }
        KernelEvent::DirectoryQuery { obj, home } => {
            field("kind", Value::Str("dir_query".into()));
            field("obj", u128_to_value(*obj));
            field("home", Value::U64(*home as u64));
        }
        KernelEvent::DirectoryRegister { obj, home } => {
            field("kind", Value::Str("dir_register".into()));
            field("obj", u128_to_value(*obj));
            field("home", Value::U64(*home as u64));
        }
        KernelEvent::MemberSuspect { node } => {
            field("kind", Value::Str("member_suspect".into()));
            field("member", Value::U64(*node as u64));
        }
        KernelEvent::MemberDead { node } => {
            field("kind", Value::Str("member_dead".into()));
            field("member", Value::U64(*node as u64));
        }
        KernelEvent::MemberAlive { node } => {
            field("kind", Value::Str("member_alive".into()));
            field("member", Value::U64(*node as u64));
        }
        KernelEvent::VprocStall {
            worker,
            age_ms,
            queued,
        } => {
            field("kind", Value::Str("vproc_stall".into()));
            field("worker", Value::U64(*worker as u64));
            field("age_ms", Value::U64(*age_ms));
            field("queued", Value::U64(*queued));
        }
        KernelEvent::WriterStall {
            dst,
            age_ms,
            queued,
        } => {
            field("kind", Value::Str("writer_stall".into()));
            field("dst", Value::U64(*dst as u64));
            field("age_ms", Value::U64(*age_ms));
            field("queued", Value::U64(*queued));
        }
        KernelEvent::SlowInvocation {
            inv_id,
            age_ms,
            trace,
        } => {
            field("kind", Value::Str("slow_invocation".into()));
            field("inv_id", Value::U64(*inv_id));
            field("age_ms", Value::U64(*age_ms));
            field("trace", Value::U64(*trace));
        }
        KernelEvent::InboundDropped { peer, reason } => {
            field("kind", Value::Str("inbound_dropped".into()));
            field("peer", Value::Str(peer.to_string()));
            field("reason", Value::Str(reason.as_str().into()));
        }
        KernelEvent::NodeShutdown => field("kind", Value::Str("shutdown".into())),
    }
    Value::Map(m)
}

/// Decodes one event (inverse of [`event_to_value`]).
pub fn event_from_value(v: &Value) -> Option<(u16, FlightEvent)> {
    let m = v.as_map()?;
    let obj = || u128_from_value(m.get("obj")?);
    let version = || m.get("version")?.as_u64();
    let dst = || Some(m.get("dst")?.as_u64()? as u16);
    let event = match m.get("kind")?.as_str()? {
        "crash" => KernelEvent::Crash { obj: obj()? },
        "reincarnation" => KernelEvent::Reincarnation {
            obj: obj()?,
            version: version()?,
        },
        "checkpoint" => KernelEvent::CheckpointWrite {
            obj: obj()?,
            version: version()?,
        },
        "move_out" => KernelEvent::MoveOut {
            obj: obj()?,
            dst: dst()?,
        },
        "move_in" => KernelEvent::MoveIn {
            obj: obj()?,
            src: m.get("src")?.as_u64()? as u16,
        },
        "forward" => KernelEvent::Forward {
            obj: obj()?,
            dst: dst()?,
        },
        "retransmit" => KernelEvent::Retransmit {
            inv_id: m.get("inv_id")?.as_u64()?,
            dst: dst()?,
        },
        "remote_timeout" => KernelEvent::RemoteTimeout { dst: dst()? },
        "where_is" => KernelEvent::WhereIsBroadcast { obj: obj()? },
        "dir_query" => KernelEvent::DirectoryQuery {
            obj: obj()?,
            home: m.get("home")?.as_u64()? as u16,
        },
        "dir_register" => KernelEvent::DirectoryRegister {
            obj: obj()?,
            home: m.get("home")?.as_u64()? as u16,
        },
        "member_suspect" => KernelEvent::MemberSuspect {
            node: m.get("member")?.as_u64()? as u16,
        },
        "member_dead" => KernelEvent::MemberDead {
            node: m.get("member")?.as_u64()? as u16,
        },
        "member_alive" => KernelEvent::MemberAlive {
            node: m.get("member")?.as_u64()? as u16,
        },
        "vproc_stall" => KernelEvent::VprocStall {
            worker: m.get("worker")?.as_u64()? as u16,
            age_ms: m.get("age_ms")?.as_u64()?,
            queued: m.get("queued")?.as_u64()?,
        },
        "writer_stall" => KernelEvent::WriterStall {
            dst: dst()?,
            age_ms: m.get("age_ms")?.as_u64()?,
            queued: m.get("queued")?.as_u64()?,
        },
        "slow_invocation" => KernelEvent::SlowInvocation {
            inv_id: m.get("inv_id")?.as_u64()?,
            age_ms: m.get("age_ms")?.as_u64()?,
            trace: m.get("trace")?.as_u64()?,
        },
        "inbound_dropped" => KernelEvent::InboundDropped {
            peer: m.get("peer")?.as_str()?.parse().ok()?,
            reason: InboundDropReason::parse(m.get("reason")?.as_str()?)?,
        },
        "shutdown" => KernelEvent::NodeShutdown,
        _ => return None,
    };
    Some((
        m.get("node")?.as_u64()? as u16,
        FlightEvent {
            seq: m.get("seq")?.as_u64()?,
            at_ns: m.get("at")?.as_u64()?,
            event,
        },
    ))
}

/// Encodes one node's event stream (the `get_flight_log` reply payload):
/// a list of node-tagged events, concatenation-friendly across nodes.
pub fn events_to_value(node: u16, events: &[FlightEvent]) -> Value {
    Value::List(events.iter().map(|e| event_to_value(node, e)).collect())
}

/// Decodes a (possibly multi-node, merged) event list.
pub fn events_from_value(v: &Value) -> Option<Vec<(u16, FlightEvent)>> {
    v.as_list()?.iter().map(event_from_value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_obs::Histogram;

    #[test]
    fn histogram_snapshot_round_trips_sparsely() {
        let h = Histogram::new();
        for v in [1u64, 1, 17, 40_000, u64::MAX / 3] {
            h.record(v);
        }
        let snap = h.snapshot();
        let v = hist_to_value(&snap);
        // Sparse: far fewer encoded buckets than the dense array.
        let n_encoded = v.as_map().unwrap()["buckets"].as_list().unwrap().len();
        assert!(n_encoded <= 5, "expected sparse encoding, got {n_encoded}");
        assert_eq!(hist_from_value(&v).unwrap(), snap);
    }

    #[test]
    fn node_metrics_round_trip() {
        let reg = ObsRegistry::new(4);
        reg.counter("kernel.remote_sent").inc();
        reg.gauge("coord.queue_depth").add(-3);
        reg.histogram("invoke.local").record(123_456);
        let m = NodeMetrics::from_registry(&reg);
        let decoded = metrics_from_value(&registry_metrics_to_value(&reg)).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.node, "4");
        assert_eq!(decoded.gauges["coord.queue_depth"], -3);
    }

    #[test]
    fn spans_round_trip_with_interned_names() {
        let reg = ObsRegistry::new(2);
        let root = reg.root_span("invoke");
        let child = reg.child_span("client-send", root.ctx());
        let staged = reg.child_span_staged("vproc-wait", stage::VPROC_QUEUE, root.ctx());
        staged.finish();
        child.finish();
        root.finish();
        let spans = reg.traces().spans();
        let decoded = spans_from_value(&spans_to_value(&spans)).unwrap();
        assert_eq!(decoded, spans);
        // The staged span must survive with its stage intact (interned
        // back to the canonical constant, not just an equal string).
        let got = decoded.iter().find(|s| s.name == "vproc-wait").unwrap();
        assert_eq!(got.stage, stage::VPROC_QUEUE);
    }

    #[test]
    fn events_round_trip_every_kind() {
        let kinds = [
            KernelEvent::Crash { obj: u128::MAX - 5 },
            KernelEvent::Reincarnation { obj: 1, version: 2 },
            KernelEvent::CheckpointWrite { obj: 1, version: 3 },
            KernelEvent::MoveOut { obj: 2, dst: 7 },
            KernelEvent::MoveIn { obj: 2, src: 6 },
            KernelEvent::Forward { obj: 3, dst: 8 },
            KernelEvent::Retransmit { inv_id: 99, dst: 0 },
            KernelEvent::RemoteTimeout { dst: 1 },
            KernelEvent::WhereIsBroadcast { obj: 4 },
            KernelEvent::DirectoryQuery { obj: 5, home: 2 },
            KernelEvent::DirectoryRegister { obj: 5, home: 3 },
            KernelEvent::MemberSuspect { node: 4 },
            KernelEvent::MemberDead { node: 4 },
            KernelEvent::MemberAlive { node: 4 },
            KernelEvent::VprocStall {
                worker: u16::MAX,
                age_ms: 1500,
                queued: 12,
            },
            KernelEvent::WriterStall {
                dst: 4,
                age_ms: 333,
                queued: 64,
            },
            KernelEvent::SlowInvocation {
                inv_id: 99,
                age_ms: 2000,
                trace: 0x0001_0000_0000_0001,
            },
            KernelEvent::InboundDropped {
                peer: "127.0.0.1:4096".parse().expect("literal addr"),
                reason: InboundDropReason::Codec,
            },
            KernelEvent::NodeShutdown,
        ];
        let events: Vec<FlightEvent> = kinds
            .into_iter()
            .enumerate()
            .map(|(i, event)| FlightEvent {
                seq: i as u64,
                at_ns: i as u64 * 10,
                event,
            })
            .collect();
        let decoded = events_from_value(&events_to_value(9, &events)).unwrap();
        assert_eq!(decoded.len(), events.len());
        for ((node, e), orig) in decoded.iter().zip(&events) {
            assert_eq!(*node, 9);
            assert_eq!(e, orig);
        }
    }
}
