//! `eden-lint`: Eden-specific invariants clippy cannot express.
//!
//! The Eden argument (paper §2, §4.1–4.2) rests on discipline the Rust
//! type system does not enforce for us: every kernel entry point must
//! verify capability rights before acting, all kernel work must flow
//! through the bounded virtual-processor pool rather than ad-hoc
//! threads, and wire-tag dispatch must fail loudly when a new tag
//! appears. Following Lampson's advice to make such invariants
//! *checkable* rather than conventional, this crate parses the whole
//! workspace (a purpose-built lexer — the build image has no network
//! access for `syn`) and enforces eight rules.
//!
//! Rules 1–5 are per-file token rules; rules 6–8 are *graph* rules
//! built on a per-function model of the workspace (lock-guard
//! acquisitions with hold spans, an approximate intra-crate call
//! graph, blocking-call sites, and the wire-schema inventory — see
//! [`model`] for the soundness caveats):
//!
//! * **L1 `pool-discipline`** — no `thread::spawn` /
//!   `thread::Builder::…spawn` in `eden-core` outside `vproc.rs` and
//!   the allowlisted `eden-recv` receive loop and `eden-watchdog`
//!   stall watchdog in `node.rs`. Everything else must go through
//!   `VirtualProcessorPool`.
//! * **L2 `capability-discipline`** — every *public* kernel entry point
//!   in `node.rs` / `object.rs` that accepts a `Capability` must either
//!   call a rights check (`permits` / `check_rights` / `require_rights`)
//!   or forward the capability into another checked call *before* any
//!   store, transport, or dispatch effect on that path.
//! * **L3 `wire-exhaustiveness`** — `match` statements whose arms match
//!   wire `Status` variants or `TAG_*` constants (in `eden-wire` and
//!   `eden-core`) must not use a `_ =>` wildcard arm, so a new tag (like
//!   PR 3's `Overloaded`, tag 11) breaks at lint time instead of being
//!   silently swallowed at runtime. A *named* binding arm (`tag =>`,
//!   `other =>`) stays legal — decoders need one for the error path.
//! * **L4 `panic-hygiene`** — no `.unwrap()` / `.expect(…)` directly on
//!   lock acquisitions or channel ends (`lock`, `read`, `write`, `recv`,
//!   `send`, `join`, …) in non-test kernel code.
//! * **L5 `metric-discipline`** — telemetry flows through the obs
//!   registry: no ad-hoc metric-named atomic counters in `eden-core` or
//!   `eden-transport` (sanctioned cell: the transport's `stats.rs`).
//! * **L6 `lock-order`** — the "lock A held while acquiring lock B"
//!   graph across eden-kernel/eden-transport/eden-directory must agree
//!   with the total order in `lint-lock-order.toml`: no reentrant
//!   edges, no inversions, no unranked locks in nested acquisitions.
//! * **L7 `blocking-discipline`** — blocking operations reachable from
//!   a pool `submit(…)` closure must be wrapped in the pool's
//!   `blocking(…)` spare-injection guard.
//! * **L8 `wire-schema-drift`** — `TAG_*` constants, enum variant
//!   lists, `WireEncode`/`WireDecode` impls and the obs_codec
//!   `*_to_value`/`*_from_value` pairs must agree: no duplicate tags,
//!   no encode-only or decode-only tags/variants, no codec arms for
//!   retired variants.
//!
//! Findings can be suppressed with a `// eden-lint: allow(<rule>)`
//! comment on the offending line or on the line directly above it;
//! suppressed findings are still counted and reported. The graph rules
//! (6–8) only honor suppressions that carry a written rationale after
//! the closing paren — `// eden-lint: allow(lock-order): <why>`.
//!
//! Test code is exempt everywhere: files under `tests/`, `benches/`,
//! `examples/` or `fixtures/` directories, and `#[cfg(test)] mod`
//! bodies inside library files.

#![forbid(unsafe_code)]

mod lexer;
mod model;
mod rules;

use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::path::Path;

/// The eight invariants eden-lint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// L1: kernel work flows through the virtual-processor pool.
    PoolDiscipline,
    /// L2: rights are checked before a capability-bearing entry point
    /// reaches the store, the transport, or dispatch.
    CapabilityDiscipline,
    /// L3: no `_ =>` wildcards in matches over wire `Status`/tag enums.
    WireExhaustiveness,
    /// L4: no `unwrap`/`expect` on locks or channel ends in kernel code.
    PanicHygiene,
    /// L5: metrics go through the obs registry, not ad-hoc atomics.
    MetricDiscipline,
    /// L6: nested lock acquisitions follow the sanctioned total order.
    LockOrder,
    /// L7: no blocking calls on pool workers outside `blocking(…)`.
    BlockingDiscipline,
    /// L8: tags, enum variants and Value codecs agree.
    WireSchemaDrift,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 8] = [
        Rule::PoolDiscipline,
        Rule::CapabilityDiscipline,
        Rule::WireExhaustiveness,
        Rule::PanicHygiene,
        Rule::MetricDiscipline,
        Rule::LockOrder,
        Rule::BlockingDiscipline,
        Rule::WireSchemaDrift,
    ];

    /// The stable kebab-case name used in reports and suppressions.
    pub fn name(self) -> &'static str {
        match self {
            Rule::PoolDiscipline => "pool-discipline",
            Rule::CapabilityDiscipline => "capability-discipline",
            Rule::WireExhaustiveness => "wire-exhaustiveness",
            Rule::PanicHygiene => "panic-hygiene",
            Rule::MetricDiscipline => "metric-discipline",
            Rule::LockOrder => "lock-order",
            Rule::BlockingDiscipline => "blocking-discipline",
            Rule::WireSchemaDrift => "wire-schema-drift",
        }
    }

    /// Parses a rule name as used in `allow(<rule>)`.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// Whether this is a workspace graph rule (6–8), whose suppressions
    /// must carry a written rationale.
    pub fn is_graph_rule(self) -> bool {
        matches!(
            self,
            Rule::LockOrder | Rule::BlockingDiscipline | Rule::WireSchemaDrift
        )
    }

    /// The rule's rationale and escape-hatch syntax, for `--explain`
    /// and the JSON report.
    pub fn explanation(self) -> &'static str {
        match self {
            Rule::PoolDiscipline => {
                "Kernel work must flow through VirtualProcessorPool::submit so the node's \
                 concurrency stays bounded and observable; direct thread::spawn in eden-core \
                 is limited to the pool itself, the eden-recv loop and the eden-watchdog \
                 thread, and eden-transport threads must carry an eden-mesh-*/eden-tcp-* \
                 name for attribution. Escape: `// eden-lint: allow(pool-discipline)` on or \
                 above the spawn line."
            }
            Rule::CapabilityDiscipline => {
                "Every public kernel entry point taking a Capability must verify rights \
                 (permits/check_rights/require_rights) or delegate the capability into a \
                 checked call before touching the store, the transport, or dispatch — the \
                 paper's protection model (§4.1) has no other enforcement point. Escape: \
                 `// eden-lint: allow(capability-discipline)` on the `pub fn` line."
            }
            Rule::WireExhaustiveness => {
                "Matches over wire Status/TAG_*/directory enums must enumerate variants; a \
                 `_ =>` wildcard silently swallows new wire tags at runtime instead of \
                 failing at lint time. Bind a name (`tag =>`) for the error path. Escape: \
                 `// eden-lint: allow(wire-exhaustiveness)` on the wildcard arm."
            }
            Rule::PanicHygiene => {
                "`.unwrap()`/`.expect(…)` on lock acquisitions or channel ends turns a \
                 poisoned lock or closed channel into a node-wide panic; propagate the \
                 error or recover (e.g. `unwrap_or_else(|e| e.into_inner())`). Escape: \
                 `// eden-lint: allow(panic-hygiene)` on the call line."
            }
            Rule::MetricDiscipline => {
                "Counters, gauges and histograms go through the obs registry so they \
                 export, merge and scrape uniformly; metric-named atomics in kernel or \
                 transport code are a parallel, invisible metrics system (sanctioned \
                 exception: transport/src/stats.rs). Escape: \
                 `// eden-lint: allow(metric-discipline)` on the field line."
            }
            Rule::LockOrder => {
                "Nested lock acquisitions across eden-kernel/eden-transport/eden-directory \
                 must follow the total order in lint-lock-order.toml; an inversion is a \
                 latent deadlock the paper's §2 'nesting can never deadlock the node' claim \
                 forbids. The graph (including edges reached through same-crate calls) is \
                 emitted to target/artifacts/lock-order.dot. Escapes: an `[[allow]]` entry \
                 in lint-lock-order.toml with a reason, or \
                 `// eden-lint: allow(lock-order): <rationale>` — the rationale is required."
            }
            Rule::BlockingDiscipline => {
                "A virtual processor that blocks (recv_timeout, wait, sleep, fsync, \
                 connect/dial, join) starves the run queue; any such call inside a \
                 submit(…) closure, or in a function reachable from one, must be wrapped \
                 in VirtualProcessorPool::blocking(…) so the pool injects a spare worker. \
                 Escape: `// eden-lint: allow(blocking-discipline): <rationale>` — the \
                 rationale is required."
            }
            Rule::WireSchemaDrift => {
                "The wire schema lives in three places — TAG_* constants, enum variant \
                 lists, and WireEncode/WireDecode impls plus the obs_codec *_to_value/\
                 *_from_value pairs — and they drift independently: duplicate tag values, \
                 encode-only or decode-only tags and variants, and codec arms for retired \
                 variants are all flagged. Escape: \
                 `// eden-lint: allow(wire-schema-drift): <rationale>` — the rationale is \
                 required."
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which invariant was violated.
    pub rule: Rule,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// Whether an `eden-lint: allow(...)` comment covers this line.
    pub suppressed: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}{}",
            self.file,
            self.line,
            self.rule,
            self.message,
            if self.suppressed { " (suppressed)" } else { "" }
        )
    }
}

/// The outcome of scanning a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, suppressed or not, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by a suppression comment.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// `(unsuppressed, suppressed)` counts per rule, for the summary.
    pub fn counts(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut counts: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        for rule in Rule::ALL {
            counts.insert(rule.name(), (0, 0));
        }
        for f in &self.findings {
            let entry = counts.entry(f.rule.name()).or_default();
            if f.suppressed {
                entry.1 += 1;
            } else {
                entry.0 += 1;
            }
        }
        counts
    }

    /// Serializes the report as a stable machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"suppressed\": {}, \"message\": \"{}\"}}{}\n",
                f.rule,
                json_escape(&f.file),
                f.line,
                f.suppressed,
                json_escape(&f.message),
                if i + 1 == self.findings.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"counts\": {\n");
        let counts = self.counts();
        let last = counts.len();
        for (i, (rule, (open, suppressed))) in counts.iter().enumerate() {
            out.push_str(&format!(
                "    \"{rule}\": {{\"unsuppressed\": {open}, \"suppressed\": {suppressed}}}{}\n",
                if i + 1 == last { "" } else { "," }
            ));
        }
        out.push_str("  },\n  \"rules\": {\n");
        let last = Rule::ALL.len();
        for (i, rule) in Rule::ALL.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": \"{}\"{}\n",
                rule.name(),
                json_escape(rule.explanation()),
                if i + 1 == last { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "  }},\n  \"files_scanned\": {},\n  \"ok\": {}\n}}\n",
            self.files_scanned,
            self.unsuppressed().count() == 0
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ================= Lock-order spec =================

/// One sanctioned exception edge from `lint-lock-order.toml`.
#[derive(Debug, Clone)]
pub struct AllowedEdge {
    pub from: String,
    pub to: String,
    pub reason: String,
}

/// The sanctioned lock total order plus explicit exception edges,
/// parsed from `lint-lock-order.toml` at the workspace root.
#[derive(Debug, Clone, Default)]
pub struct LockOrderSpec {
    /// Lock ids (`<file-stem>.<field>`) from outermost to innermost.
    pub order: Vec<String>,
    pub allows: Vec<AllowedEdge>,
}

impl LockOrderSpec {
    /// Hand-rolled parser for the subset of TOML the spec uses: one
    /// `order = [ "…", … ]` string array (inline or multi-line) and
    /// `[[allow]]` tables with `from`/`to`/`reason` string keys.
    pub fn parse(text: &str) -> LockOrderSpec {
        let mut spec = LockOrderSpec::default();
        let mut in_order = false;
        let mut in_allow = false;
        let strip = |line: &str| {
            // Comments start at a `#` outside quotes; the spec's values
            // never contain `#`, so a simple split suffices.
            line.split('#').next().unwrap_or("").trim().to_string()
        };
        for raw in text.lines() {
            let line = strip(raw);
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                in_allow = true;
                in_order = false;
                spec.allows.push(AllowedEdge {
                    from: String::new(),
                    to: String::new(),
                    reason: String::new(),
                });
                continue;
            }
            if line.starts_with('[') {
                in_allow = false;
                in_order = false;
                continue;
            }
            if let Some(rest) = line.strip_prefix("order") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    in_allow = false;
                    let rest = rest.trim();
                    spec.order.extend(parse_strings(rest));
                    in_order = !rest.ends_with(']');
                    continue;
                }
            }
            if in_order {
                spec.order.extend(parse_strings(&line));
                if line.contains(']') {
                    in_order = false;
                }
                continue;
            }
            if in_allow {
                if let Some((key, value)) = line.split_once('=') {
                    let value = value.trim().trim_matches('"').to_string();
                    let entry = spec.allows.last_mut().expect("pushed on [[allow]]");
                    match key.trim() {
                        "from" => entry.from = value,
                        "to" => entry.to = value,
                        "reason" => entry.reason = value,
                        _ => {}
                    }
                }
            }
        }
        spec
    }

    /// The rank of a lock id in the sanctioned order.
    pub fn index(&self, id: &str) -> Option<usize> {
        self.order.iter().position(|o| o == id)
    }

    /// Whether `from → to` is an explicitly sanctioned exception.
    pub fn allows(&self, from: &str, to: &str) -> bool {
        self.allows.iter().any(|a| a.from == from && a.to == to)
    }
}

/// The quoted strings on one (partial) TOML array line.
fn parse_strings(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('"') {
        let Some(len) = rest[start + 1..].find('"') else {
            break;
        };
        out.push(rest[start + 1..start + 1 + len].to_string());
        rest = &rest[start + 1 + len + 1..];
    }
    out
}

// ================= Scanning =================

fn skip_path(rel_path: &str) -> bool {
    rel_path.split('/').any(|part| {
        matches!(
            part,
            "tests" | "benches" | "examples" | "fixtures" | "target"
        )
    })
}

/// Scans one file's source with the per-file rules (1–5), applying
/// every rule whose path scope matches `rel_path` (workspace-relative,
/// forward slashes). The graph rules need the whole file set — use
/// [`scan_files`] or [`scan_workspace`] for those.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    if skip_path(rel_path) {
        return Vec::new();
    }
    let model = lexer::SourceModel::new(source);
    let mut findings = Vec::new();
    rules::pool::check(rel_path, &model, &mut findings);
    rules::capability::check(rel_path, &model, &mut findings);
    rules::wire_exhaustive::check(rel_path, &model, &mut findings);
    rules::panic::check(rel_path, &model, &mut findings);
    rules::metric::check(rel_path, &model, &mut findings);

    let suppressions = lexer::collect_suppressions(&model);
    for f in &mut findings {
        if let Some(lines) = suppressions.get(&f.rule) {
            f.suppressed = lines.contains_key(&f.line);
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// A full analysis: the report plus the lock graph rendered as DOT.
pub struct Analysis {
    pub report: Report,
    /// The lock-acquisition graph, Graphviz DOT. Its header carries an
    /// `// acyclic-modulo-allowed: <bool>` line CI asserts on.
    pub lock_dot: String,
}

/// Scans a file set (`(rel_path, source)` pairs) with all eight rules.
pub fn scan_files(files: &[(String, String)], spec: &LockOrderSpec) -> Report {
    analyze_files(files, spec).report
}

/// Scans a file set with all eight rules and renders the lock graph.
pub fn analyze_files(files: &[(String, String)], spec: &LockOrderSpec) -> Analysis {
    let mut report = Report::default();
    let in_scope: Vec<(String, String)> = files
        .iter()
        .filter(|(rel, _)| !skip_path(rel))
        .cloned()
        .collect();
    for (rel, source) in files {
        report.files_scanned += 1;
        report.findings.extend(scan_source(rel, source));
    }

    let ws = model::Workspace::build(&in_scope);
    let mut graph_findings = Vec::new();
    let edges = rules::lock_order::check(&ws, spec, &mut graph_findings);
    rules::blocking::check(&ws, &mut graph_findings);
    rules::wire_drift::check(&ws, &mut graph_findings);

    // Graph-rule suppressions only count with a written rationale; a
    // bare allow(...) is reported as such so the author adds one.
    for f in &mut graph_findings {
        let Some(file) = ws.files.iter().find(|w| w.rel_path == f.file) else {
            continue;
        };
        let suppressions = lexer::collect_suppressions(&file.model);
        if let Some(cover) = suppressions.get(&f.rule).and_then(|m| m.get(&f.line)) {
            if cover.with_rationale {
                f.suppressed = true;
            } else {
                f.message.push_str(
                    " [an allow(...) comment covers this line but carries no rationale; \
                     graph-rule suppressions require one]",
                );
            }
        }
    }

    // Lock edges exempt for the DOT acyclicity verdict: the spec's
    // [[allow]] entries plus edges whose finding is suppressed inline.
    let mut exempt: HashSet<(String, String)> = HashSet::new();
    for e in &edges {
        let covered = graph_findings.iter().any(|f| {
            f.rule == Rule::LockOrder && f.suppressed && f.file == e.file && f.line == e.line
        });
        if covered {
            exempt.insert((e.from.clone(), e.to.clone()));
        }
    }
    let lock_dot = rules::lock_order::to_dot(&edges, spec, &exempt);

    report.findings.extend(graph_findings);
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Analysis { report, lock_dot }
}

// ================= Workspace walking =================

/// The lock-order spec file at the workspace root.
pub const LOCK_ORDER_FILE: &str = "lint-lock-order.toml";

/// Reads `lint-lock-order.toml` from `root` (empty spec if absent).
pub fn load_spec(root: &Path) -> LockOrderSpec {
    std::fs::read_to_string(root.join(LOCK_ORDER_FILE))
        .map(|text| LockOrderSpec::parse(&text))
        .unwrap_or_default()
}

/// Scans every in-scope `.rs` file under `root` (the workspace root).
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    Ok(analyze_workspace(root)?.report)
}

/// Scans the workspace and renders the lock graph.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let mut paths = Vec::new();
    for top in ["crates", "src"] {
        collect_rs_files(&root.join(top), &mut paths)?;
    }
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((rel, std::fs::read_to_string(&path)?));
    }
    Ok(analyze_files(&files, &load_spec(root)))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if path.is_dir() {
            if matches!(
                name.as_str(),
                "target" | ".git" | "tests" | "benches" | "examples" | "fixtures"
            ) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_on_own_line_covers_next_code_line() {
        let src = "// eden-lint: allow(panic-hygiene)\nlet g = m.lock().unwrap();\n";
        let findings = scan_source("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].suppressed);
    }

    #[test]
    fn json_report_is_well_formed() {
        let mut report = Report::default();
        report.findings.push(Finding {
            rule: Rule::PanicHygiene,
            file: "a \"quoted\".rs".into(),
            line: 3,
            message: "msg".into(),
            suppressed: false,
        });
        let json = report.to_json();
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("\"rules\""));
        assert!(json.contains("\"lock-order\""));
    }

    #[test]
    fn every_rule_round_trips_its_name_and_explains_itself() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
            assert!(rule.explanation().len() > 40);
        }
    }

    #[test]
    fn lock_order_spec_parses_order_and_allows() {
        let text = "# comment\norder = [\n  \"node.objects\", # outer\n  \"object.coord\",\n]\n\n[[allow]]\nfrom = \"a.x\"\nto = \"b.y\"\nreason = \"registration is a leaf\"\n";
        let spec = LockOrderSpec::parse(text);
        assert_eq!(spec.order, vec!["node.objects", "object.coord"]);
        assert_eq!(spec.index("object.coord"), Some(1));
        assert!(spec.allows("a.x", "b.y"));
        assert!(!spec.allows("b.y", "a.x"));
        assert_eq!(spec.allows[0].reason, "registration is a leaf");
    }

    #[test]
    fn graph_rule_suppression_requires_rationale() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                   fn f(&self) {\n\
                       let g = self.a.lock();\n\
                       self.b.lock(); // eden-lint: allow(lock-order)\n\
                   }\n\
                   fn h(&self) {\n\
                       let g = self.a.lock();\n\
                       self.b.lock(); // eden-lint: allow(lock-order): b is a leaf lock\n\
                   }\n\
                   }\n";
        // f's bare allow leaves the finding unsuppressed; h's rationale
        // suppresses the (deduped) edge — so scan twice with order
        // swapped files to see each. Here the single file dedups the
        // a→b edge to its first site (line 5, no rationale).
        let report = scan_files(
            &[("crates/core/src/x.rs".to_string(), src.to_string())],
            &LockOrderSpec::default(),
        );
        let lock: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::LockOrder)
            .collect();
        assert_eq!(lock.len(), 1);
        assert!(!lock[0].suppressed);
        assert!(lock[0].message.contains("no rationale"));
    }
}
