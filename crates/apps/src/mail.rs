//! A distributed mail system.
//!
//! The structure the paper's software stack implies (Figure 3): user
//! mailboxes are Eden objects, the user registry is an EFS directory,
//! and clients on any node interact purely through capabilities. A
//! mailbox can follow its user between node machines with the kernel
//! `move` primitive — mail keeps arriving mid-move because invocations
//! queue and forward.

use std::collections::BTreeMap;

use eden_capability::{Capability, NodeId, Rights};
use eden_kernel::{Node, OpCtx, OpError, OpResult, TypeManager, TypeSpec};
use eden_wire::Value;

/// A user's mailbox.
///
/// Operations:
///
/// | op | class | rights | effect |
/// |---|---|---|---|
/// | `deliver [map{from,subject,body}]` | deliver (4) | user-right DELIVER | append a message |
/// | `list` | reads (4) | READ | headers `(id, from, subject)` |
/// | `fetch [u64]` | reads | READ | the whole message |
/// | `delete [u64]` | admin (1) | WRITE | remove a message |
/// | `count` | reads | READ | stored messages |
/// | `relocate [u64 node]` | admin | MOVE | follow the user to a node |
///
/// `deliver` requires only the type-defined [`MailboxType::DELIVER`]
/// right, so a user can hand out "may send to me" capabilities that
/// cannot read the mailbox — the §2 protection story in action.
pub struct MailboxType;

impl MailboxType {
    /// The registered type name.
    pub const NAME: &'static str = "mailbox";

    /// The type-defined right allowing delivery.
    pub const DELIVER: Rights = Rights::user(0);
}

impl TypeManager for MailboxType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(MailboxType::NAME)
            .class("deliver", 4)
            .class("reads", 4)
            .class("admin", 1)
            .op("deliver", "deliver", MailboxType::DELIVER)
            .op("list", "reads", Rights::READ)
            .op("fetch", "reads", Rights::READ)
            .op("count", "reads", Rights::READ)
            .op("delete", "admin", Rights::WRITE)
            .op("relocate", "admin", Rights::MOVE)
    }

    fn initialize(&self, ctx: &OpCtx<'_>, _args: &[Value]) -> Result<(), OpError> {
        ctx.mutate_repr(|r| r.put_u64("next_id", 1))?;
        ctx.checkpoint()?;
        Ok(())
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "deliver" => {
                let msg = args
                    .first()
                    .and_then(Value::as_map)
                    .ok_or_else(|| OpError::type_error("deliver(map{from,subject,body})"))?
                    .clone();
                let id = ctx.mutate_repr(|r| {
                    let id = r.get_u64("next_id").unwrap_or(1);
                    r.put_u64("next_id", id + 1);
                    r.put_value(format!("msg:{id:08}"), &Value::Map(msg));
                    id
                })?;
                ctx.checkpoint()?;
                Ok(vec![Value::U64(id)])
            }
            "list" => {
                let headers: Vec<Value> = ctx.read_repr(|r| {
                    r.segments_with_prefix("msg:")
                        .filter_map(|seg| {
                            let id: u64 = seg[4..].parse().ok()?;
                            let msg = r.get_value(seg)?;
                            let m = msg.as_map()?;
                            let mut header = BTreeMap::new();
                            header.insert("id".to_string(), Value::U64(id));
                            for key in ["from", "subject"] {
                                if let Some(v) = m.get(key) {
                                    header.insert(key.to_string(), v.clone());
                                }
                            }
                            Some(Value::Map(header))
                        })
                        .collect()
                });
                Ok(vec![Value::List(headers)])
            }
            "fetch" => {
                let id = OpCtx::u64_arg(args, 0)?;
                let msg = ctx.read_repr(|r| r.get_value(&format!("msg:{id:08}")));
                msg.map(|m| vec![m])
                    .ok_or_else(|| OpError::app(404, format!("no message {id}")))
            }
            "count" => {
                Ok(vec![Value::U64(ctx.read_repr(|r| {
                    r.segments_with_prefix("msg:").count() as u64
                }))])
            }
            "delete" => {
                let id = OpCtx::u64_arg(args, 0)?;
                let removed = ctx.mutate_repr(|r| r.remove(&format!("msg:{id:08}")).is_some())?;
                if !removed {
                    return Err(OpError::app(404, format!("no message {id}")));
                }
                ctx.checkpoint()?;
                Ok(vec![])
            }
            "relocate" => {
                let dst = OpCtx::u64_arg(args, 0)? as u16;
                ctx.move_to(NodeId(dst))?;
                Ok(vec![])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// A mail client: registry operations plus send/read sugar.
///
/// The registry is any EFS directory; user `alice`'s mailbox capability
/// is bound at `mail/alice` restricted appropriately by the caller.
#[derive(Clone)]
pub struct MailClient {
    node: Node,
    registry: Capability,
}

impl MailClient {
    /// Opens a client over a registry directory capability.
    pub fn new(node: Node, registry: Capability) -> Self {
        MailClient { node, registry }
    }

    /// Creates a mailbox for `user` on this client's node and registers
    /// it. Returns the full-rights capability (keep it private; the
    /// registry holds a deliver-only restriction).
    pub fn register_user(&self, user: &str) -> eden_kernel::Result<Capability> {
        let mailbox = self.node.create_object(MailboxType::NAME, &[])?;
        // The public registry entry can deliver but not read.
        let deliver_only = mailbox.restrict(MailboxType::DELIVER);
        self.node.invoke(
            self.registry,
            "bind",
            &[Value::Str(user.to_string()), Value::Cap(deliver_only)],
        )?;
        Ok(mailbox)
    }

    /// Sends a message to `to`.
    pub fn send(
        &self,
        from: &str,
        to: &str,
        subject: &str,
        body: &str,
    ) -> eden_kernel::Result<u64> {
        let out = self
            .node
            .invoke(self.registry, "lookup", &[Value::Str(to.to_string())])?;
        let mailbox = out
            .first()
            .and_then(Value::as_cap)
            .ok_or_else(|| eden_kernel::EdenError::BadRequest(format!("no user '{to}'")))?;
        let mut msg = BTreeMap::new();
        msg.insert("from".to_string(), Value::Str(from.to_string()));
        msg.insert("subject".to_string(), Value::Str(subject.to_string()));
        msg.insert("body".to_string(), Value::Str(body.to_string()));
        let out = self.node.invoke(mailbox, "deliver", &[Value::Map(msg)])?;
        Ok(out.first().and_then(Value::as_u64).unwrap_or(0))
    }

    /// Reads the headers in a mailbox (requires a READ-capable
    /// capability — the owner's, not the registry's).
    pub fn headers(&self, mailbox: Capability) -> eden_kernel::Result<Vec<(u64, String, String)>> {
        let out = self.node.invoke(mailbox, "list", &[])?;
        Ok(out
            .first()
            .and_then(Value::as_list)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|item| {
                        let m = item.as_map()?;
                        Some((
                            m.get("id")?.as_u64()?,
                            m.get("from")?.as_str()?.to_string(),
                            m.get("subject")?.as_str()?.to_string(),
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default())
    }

    /// Fetches one message body.
    pub fn body(&self, mailbox: Capability, id: u64) -> eden_kernel::Result<String> {
        let out = self.node.invoke(mailbox, "fetch", &[Value::U64(id)])?;
        Ok(out
            .first()
            .and_then(Value::as_map)
            .and_then(|m| m.get("body"))
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string())
    }
}
