/root/repo/target/debug/examples/multiprocess_net-20c80bc03141f370.d: examples/multiprocess_net.rs Cargo.toml

/root/repo/target/debug/examples/libmultiprocess_net-20c80bc03141f370.rmeta: examples/multiprocess_net.rs Cargo.toml

examples/multiprocess_net.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
