/root/repo/target/debug/deps/eden_kernel-22f7aa4c85a29c5c.d: crates/core/src/lib.rs crates/core/src/behavior.rs crates/core/src/cluster.rs crates/core/src/ctx.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/node.rs crates/core/src/object.rs crates/core/src/policy.rs crates/core/src/repr.rs crates/core/src/sync.rs crates/core/src/types.rs crates/core/src/waiter.rs Cargo.toml

/root/repo/target/debug/deps/libeden_kernel-22f7aa4c85a29c5c.rmeta: crates/core/src/lib.rs crates/core/src/behavior.rs crates/core/src/cluster.rs crates/core/src/ctx.rs crates/core/src/error.rs crates/core/src/metrics.rs crates/core/src/node.rs crates/core/src/object.rs crates/core/src/policy.rs crates/core/src/repr.rs crates/core/src/sync.rs crates/core/src/types.rs crates/core/src/waiter.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/behavior.rs:
crates/core/src/cluster.rs:
crates/core/src/ctx.rs:
crates/core/src/error.rs:
crates/core/src/metrics.rs:
crates/core/src/node.rs:
crates/core/src/object.rs:
crates/core/src/policy.rs:
crates/core/src/repr.rs:
crates/core/src/sync.rs:
crates/core/src/types.rs:
crates/core/src/waiter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
