//! The experiment harness behind EXPERIMENTS.md.
//!
//! Each submodule implements one experiment from DESIGN.md §5 and
//! returns a [`Table`]; the `repro` binary prints them, and the Criterion
//! benches in `benches/` reuse the same workload builders for
//! statistically careful micro-measurements.
//!
//! Everything here runs on the public API only — the harness is
//! downstream code, not a kernel back door.

#![forbid(unsafe_code)]

pub mod table;
pub mod types;

pub mod exp_e10_failover;
pub mod exp_e11_ablation;
pub mod exp_e12_fanout;
pub mod exp_e13_transport;
pub mod exp_e14_directory;
pub mod exp_e16_pipeline;
pub mod exp_e1_latency;
pub mod exp_e2_classes;
pub mod exp_e3_checkpoint;
pub mod exp_e4_frozen;
pub mod exp_e5_mobility;
pub mod exp_e6_location;
pub mod exp_e7_ethernet;
pub mod exp_e8_efs_cc;
pub mod exp_e9_replication;
pub mod exp_f1_topology;
pub mod exp_f2_vprocs;

pub use table::Table;

/// Seconds-precision wall-clock helper: runs `f` and returns (result,
/// elapsed seconds).
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = std::time::Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Path for an experiment artifact, creating `target/artifacts/` on
/// first use. Artifacts are machine-readable exports riding along with
/// the printed tables — Prometheus scrapes, Chrome traces — referenced
/// from EXPERIMENTS.md.
pub fn artifact_path(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("target").join("artifacts");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

/// Formats a duration in adaptive units for table cells.
pub fn fmt_us(us: f64) -> String {
    if us >= 10_000.0 {
        format!("{:.2} ms", us / 1000.0)
    } else {
        format!("{us:.1} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something() {
        let ((), secs) = timed(|| std::thread::sleep(std::time::Duration::from_millis(20)));
        assert!(secs >= 0.02);
    }

    #[test]
    fn fmt_us_switches_units() {
        assert!(fmt_us(100.0).contains("µs"));
        assert!(fmt_us(50_000.0).contains("ms"));
    }
}
