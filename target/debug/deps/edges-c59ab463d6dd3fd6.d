/root/repo/target/debug/deps/edges-c59ab463d6dd3fd6.d: crates/core/tests/edges.rs Cargo.toml

/root/repo/target/debug/deps/libedges-c59ab463d6dd3fd6.rmeta: crates/core/tests/edges.rs Cargo.toml

crates/core/tests/edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
