/root/repo/target/release/examples/eden_shell-a2e42baef6385dde.d: examples/eden_shell.rs

/root/repo/target/release/examples/eden_shell-a2e42baef6385dde: examples/eden_shell.rs

examples/eden_shell.rs:
